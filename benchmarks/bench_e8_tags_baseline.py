"""E8 — dictionaries vs run-time tags (§3).

    "the use of tags ... can complicate data representation ...
    [passing type information] is only necessary when overloaded
    functions are actually involved.  This is potentially more
    efficient than uniformly tagging every data object regardless how
    it will be used."

Workload: structural equality over a list of n integers, which is the
paper's (and SML/NJ's) canonical tagged operation.  Series:

* tags: one dispatch per element, plus a tag allocation for every
  object ever built;
* dictionaries: constant dictionary traffic for the whole traversal.

Plus the impossibility result: ``read`` under tags raises (also
covered by the unit tests; asserted here so the experiment is
self-contained).
"""

import pytest

from benchmarks.conftest import compiled, record
from repro import TagDispatchError
from repro.baselines.tags import TagRuntime

N = 300


def tag_workload():
    rt = TagRuntime()
    xs = rt.inject(list(range(N)))
    ys = rt.inject(list(range(N)))
    rt.stats.reset()

    def go():
        assert rt.call("Eq", "==", xs, ys).payload is True

    return rt, go


DICT_SRC = f"""
eqAt :: Eq a => a -> a -> Bool
eqAt x y = x == y
main = eqAt (enumFromTo 1 {N}) (enumFromTo 1 {N})
"""


def test_e8_tag_dispatch(benchmark):
    rt, go = tag_workload()
    benchmark(go)
    record("E8 tags vs dictionaries", "tag dispatch",
           dispatches_per_run=rt.stats.dispatches // max(1, rt.stats.calls // (N + 1)))


def test_e8_dictionaries(benchmark):
    program = compiled(DICT_SRC)
    assert program.run("main") is True
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E8 tags vs dictionaries", "dictionary passing",
           dict_selections=s.dict_selections,
           dict_constructions=s.dict_constructions)


def test_e8_shape():
    rt, go = tag_workload()
    go()
    tag_dispatches = rt.stats.dispatches
    program = compiled(DICT_SRC)
    program.run("main")
    s = program.last_stats
    # Tags: a dispatch per element.  Dictionaries: constant overhead.
    assert tag_dispatches >= N
    assert s.dict_selections <= 6
    assert s.dict_constructions <= 3
    record("E8 tags vs dictionaries", f"per-equality cost at n={N}",
           tag_dispatches=tag_dispatches,
           dict_selections=s.dict_selections)

    # Uniform tagging allocates a tag per constructed object:
    rt2 = TagRuntime()
    rt2.stats.reset()
    rt2.inject(list(range(N)))
    assert rt2.stats.tag_allocations == N + 1
    record("E8 tags vs dictionaries", f"tag allocations for one list",
           allocations=rt2.stats.tag_allocations)


def test_e8_read_impossible_under_tags():
    rt = TagRuntime()
    with pytest.raises(TagDispatchError):
        rt.read(rt.inject("42"))
    # and trivially possible with dictionaries:
    assert compiled('main = (read "42" :: Int)').run("main") == 42
