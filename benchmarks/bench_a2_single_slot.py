"""Ablation A2 — the bare-dictionary optimisation (§4).

    "Since this class has only one method a tuple is not needed" —
    the paper's d-Eq-List discussion: a class with a single slot can
    use the method itself as its dictionary, skipping both the tuple
    allocation and the selection.

Workload: a single-method class driven through a type variable, with
the optimisation on and off.  Series: dictionary constructions (tuple
allocations) and selections.
"""


from benchmarks.conftest import compiled, record

SRC = """
class Measure a where
  size :: a -> Int

data Leaf = Leaf
instance Measure Leaf where
  size x = 1

instance Measure a => Measure [a] where
  size []     = 0
  size (x:xs) = size x + size xs

total :: Measure a => [a] -> Int
total xs = size xs

main = total (replicate 120 [Leaf, Leaf])
"""


def run(single_slot: bool):
    program = compiled(SRC, single_slot_opt=single_slot,
                       hoist_dictionaries=False, inner_entry_points=False)
    assert program.run("main") == 240
    return program


def test_a2_bare_dictionaries(benchmark):
    program = run(True)
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("A2 single-slot dictionaries", "bare (tuple elided)",
           dicts=s.dict_constructions, selections=s.dict_selections)


def test_a2_tuple_dictionaries(benchmark):
    program = run(False)
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("A2 single-slot dictionaries", "1-tuple dictionaries",
           dicts=s.dict_constructions, selections=s.dict_selections)


def test_a2_shape():
    bare = run(True)
    bare.run("main")
    tup = run(False)
    tup.run("main")
    # With bare dictionaries the method IS the dictionary: no tuple
    # construction, no selection.
    assert bare.last_stats.dict_selections == 0
    assert tup.last_stats.dict_selections > 0
    assert bare.last_stats.dict_constructions \
        <= tup.last_stats.dict_constructions
    record("A2 single-slot dictionaries", "selection counts",
           bare=bare.last_stats.dict_selections,
           tuple=tup.last_stats.dict_selections)
