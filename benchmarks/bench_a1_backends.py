"""Ablation A1 — interpreted vs compiled backend.

The paper measured compiled native code; our experiments use an
instrumented interpreter.  This ablation checks that the choice of
backend does not change the *shape* of the headline results: the
compiled (core → Python) backend must agree on values and on
dictionary operation counts, while being faster in wall-clock terms —
i.e. the counts really are backend-independent quantities.
"""


from benchmarks.conftest import compiled, record

SRC = """
pipeline :: Ord a => [a] -> [a]
pipeline = sort . nub

main = (length (pipeline (map (\\i -> mod (i * 7) 40) (enumFromTo 1 120))),
        sum (map (\\x -> x * x) (enumFromTo 1 200)))
"""


def test_a1_interpreter(benchmark):
    program = compiled(SRC)
    expected = program.run("main")
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("A1 backends", "interpreter",
           dicts=s.dict_constructions, selections=s.dict_selections)
    assert expected[1] == sum(x * x for x in range(1, 201))


def test_a1_compiled(benchmark):
    program = compiled(SRC)
    py = program.to_python()
    expected = py.run("main")

    def go():
        py.counters.reset()
        return py.run("main")

    benchmark(go)
    record("A1 backends", "compiled to Python",
           dicts=py.counters.dict_constructions,
           selections=py.counters.dict_selections)
    assert expected[1] == sum(x * x for x in range(1, 201))


def test_a1_shape():
    import time
    program = compiled(SRC)
    t0 = time.perf_counter()
    interp_result = program.run("main")
    t1 = time.perf_counter()
    py = program.to_python()
    t2 = time.perf_counter()
    compiled_result = py.run("main")
    t3 = time.perf_counter()
    assert interp_result == compiled_result
    # dictionary traffic identical across backends
    assert py.counters.dict_constructions \
        == program.last_stats.dict_constructions
    assert py.counters.dict_selections \
        == program.last_stats.dict_selections
    # compiled is at least not slower (usually several times faster)
    assert (t3 - t2) < (t1 - t0) * 1.5
    record("A1 backends", "wall-clock interp/compiled",
           ratio=round((t1 - t0) / max(t3 - t2, 1e-9), 1))
