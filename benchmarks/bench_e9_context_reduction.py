"""E9 — the cost of context reduction inside unification (§5, §9).

    "A minor increase in the cost of unification and the placement and
    resolution of placeholders make up the majority of the extra
    processing required for type classes."

Workload: unify ``Eq a => a`` against the d-fold nested list type
``[[...[Int]...]]``.  Context reduction must walk the instance chain
once per nesting level, so the step count is exactly linear in d — a
predictable, minor cost, which is the claim.
"""

import pytest

from benchmarks.conftest import record
from repro.core.classes import ClassEnv, ClassInfo, InstanceInfo
from repro.core.types import T_INT, TyVar, list_type
from repro.core.unify import Unifier


def env() -> ClassEnv:
    e = ClassEnv()
    e.add_class(ClassInfo("Eq", []))
    e.add_instance(InstanceInfo("Int", "Eq", "dI", []))
    e.add_instance(InstanceInfo("[]", "Eq", "dL", [["Eq"]]))
    return e


def nested(depth: int):
    ty = T_INT
    for _ in range(depth):
        ty = list_type(ty)
    return ty


DEPTHS = [5, 20, 80]


@pytest.mark.parametrize("depth", DEPTHS)
def test_e9_reduction_scaling(benchmark, depth):
    class_env = env()

    def go():
        unifier = Unifier(class_env)
        var = TyVar()
        var.context.add("Eq")
        unifier.unify(var, nested(depth))
        return unifier

    unifier = benchmark(go)
    record("E9 context reduction", f"depth={depth}",
           reductions=unifier.context_reduction_count,
           unifications=unifier.unify_count)


def test_e9_shape():
    counts = []
    for depth in DEPTHS:
        unifier = Unifier(env())
        var = TyVar()
        var.context.add("Eq")
        unifier.unify(var, nested(depth))
        counts.append(unifier.context_reduction_count)
    # Exactly linear: one reduction per nesting level plus one for Int.
    for depth, count in zip(DEPTHS, counts):
        assert count == depth + 1
    record("E9 context reduction", "series",
           **{f"d{d}": c for d, c in zip(DEPTHS, counts)})


def test_e9_unconstrained_unification_pays_nothing(benchmark):
    """The flip side: unification without contexts does zero context
    reduction — the cost is only paid where overloading exists."""
    class_env = env()

    def go():
        unifier = Unifier(class_env)
        var = TyVar()
        unifier.unify(var, nested(60))
        return unifier

    unifier = benchmark(go)
    assert unifier.context_reduction_count == 0
    record("E9 context reduction", "no context, depth=60",
           reductions=unifier.context_reduction_count)
