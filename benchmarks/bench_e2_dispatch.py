"""E2 — "the cost of instance function dispatch is actually quite
small since this requires only a reference to a tuple element followed
by a function call" (§9).

Workload: sum a list of n integers three ways —

* **direct**: a monomorphic loop calling the primitive adder;
* **dispatch**: an overloaded loop whose ``+`` is selected from a
  dictionary at a type variable (the dispatch the claim is about);
* **specialised**: the overloaded loop after §9's cloning.

The claim holds if the dispatch penalty is a small constant factor per
element (one dictionary selection amortised over the loop body) and
specialisation recovers the direct cost.
"""


from benchmarks.conftest import compiled, record

N = 400

DIRECT = f"""
loop :: Int -> [Int] -> Int
loop acc [] = acc
loop acc (x:xs) = loop (primAddInt acc x) xs
main = loop 0 (enumFromTo 1 {N})
"""

DISPATCH = f"""
loop :: Num a => a -> [a] -> a
loop acc [] = acc
loop acc (x:xs) = loop (acc + x) xs
main = loop 0 (enumFromTo 1 {N})
"""


def run(source, **options):
    program = compiled(source, **options)
    result = program.run("main")
    assert result == N * (N + 1) // 2
    return program


def test_e2_direct_call(benchmark):
    program = run(DIRECT)
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E2 method dispatch", "direct primitive call",
           selections=s.dict_selections, steps=s.steps, calls=s.fun_calls)


def test_e2_dictionary_dispatch(benchmark):
    program = run(DISPATCH, specialize=False)
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E2 method dispatch", "via dictionary selection",
           selections=s.dict_selections, steps=s.steps, calls=s.fun_calls)


def test_e2_specialized(benchmark):
    program = run(DISPATCH, specialize=True)
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E2 method dispatch", "specialised clone (§9)",
           selections=s.dict_selections, steps=s.steps, calls=s.fun_calls)


def test_e2_shape():
    direct = run(DIRECT)
    direct_steps = direct.last_stats.steps
    dispatch = run(DISPATCH, specialize=False)
    dispatch_steps = dispatch.last_stats.steps
    # dispatch costs something...
    assert dispatch_steps >= direct_steps
    # ...but it is small: well under 2x for this loop (the paper:
    # "for all but the simplest method functions this should be
    # negligible"; an integer add IS the simplest, so some overhead
    # shows, bounded by a small constant).
    assert dispatch_steps < 2 * direct_steps
    # the selections are amortised: constant, not per element, thanks
    # to the hoisting + entry-point translation
    assert dispatch.last_stats.dict_selections <= 4
    record("E2 method dispatch", "steps ratio dispatch/direct",
           ratio=round(dispatch_steps / direct_steps, 3))
