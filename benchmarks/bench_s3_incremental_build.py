"""S3 — incremental and parallel module builds.

PR 4 added separate compilation: modules compile against their
imports' *interfaces*, and the artifact cache keys each module on
(source, options, prelude, closure-interface fingerprints).  This
benchmark builds a synthetic N-module DAG and measures the properties
that key design buys:

* **cold build** — every module compiles (serial and thread-pool
  parallel; on a single-CPU/GIL interpreter the parallel build cannot
  beat serial wall-clock, so the speedup is *recorded*, not asserted —
  the asserted property is that both produce the same program);
* **warm rebuild** — nothing changed, every module is a cache hit;
* **body edit** — a change that leaves a module's exported surface
  alone keeps its interface fingerprint, so *only that module*
  recompiles: rebuild cost is O(1), the cut-off at work;
* **surface edit** — a new export moves the fingerprint, so the module
  plus its transitive dependents recompile: O(dependents), never O(N).

Run under pytest for the shape assertions, or as a script to
(re)write ``BENCH_s3.json`` at the repository root::

    PYTHONPATH=src:. python benchmarks/bench_s3_incremental_build.py
    PYTHONPATH=src:. python benchmarks/bench_s3_incremental_build.py --smoke
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Tuple

from benchmarks.conftest import record
from repro.modules import ModuleBuilder
from repro.modules.resolve import scan_inline_modules
from repro.options import CompilerOptions

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: modules in the synthetic DAG (overridable; --smoke shrinks it)
N_MODULES = int(os.environ.get("BENCH_S3_MODULES", "24"))
ROUNDS = int(os.environ.get("BENCH_S3_ROUNDS", "3"))
PARALLEL_JOBS = int(os.environ.get("BENCH_S3_JOBS", "4"))


def make_tree(n: int, body_edit: int = -1,
              surface_edit: int = -1) -> List[Tuple[str, str]]:
    """An n-module DAG: ``M0`` is a base; ``Mi`` imports ``M(i-1)`` and
    ``M(i//2)``, giving long chains *and* wide fan-in.  *body_edit*
    appends a no-op to that module's function (surface unchanged);
    *surface_edit* adds a new exported binding (fingerprint moves)."""
    sources: List[Tuple[str, str]] = []
    for i in range(n):
        name = f"M{i}"
        if i == 0:
            body = "f0 :: Int -> Int\nf0 x = x + 1\n"
        else:
            deps = sorted({i - 1, i // 2})
            imports = "".join(f"import M{d}\n" for d in deps)
            calls = " + ".join(f"f{d} x" for d in deps)
            body = (f"{imports}"
                    f"f{i} :: Int -> Int\n"
                    f"f{i} x = {calls} + {i}\n")
        if i == body_edit:
            body = body.replace(f"+ {i}\n", f"+ {i} + 0\n") \
                if i else body.replace("x + 1", "x + 1 + 0")
        if i == surface_edit:
            body += f"extra{i} :: Int\nextra{i} = {i}\n"
        sources.append((name, f"module {name} where\n{body}"))
    sources.append(("Main", f"module Main where\nimport M{n - 1}\n"
                            f"main = f{n - 1} 1\n"))
    return sources


def _build(builder: ModuleBuilder, sources, jobs: int):
    graph = scan_inline_modules(sources)
    t0 = time.perf_counter()
    result = builder.build(graph, jobs=jobs)
    return result, time.perf_counter() - t0


def measure(n_modules: int = N_MODULES,
            rounds: int = ROUNDS) -> Dict[str, object]:
    options = CompilerOptions()  # memory-only cache: measure compiles
    sources = make_tree(n_modules)
    n_total = n_modules + 1  # + Main

    cold_serial = cold_parallel = float("inf")
    serial_value = parallel_value = None
    for _ in range(rounds):
        result, seconds = _build(ModuleBuilder(options), sources, jobs=1)
        cold_serial = min(cold_serial, seconds)
        serial_value = result.program.run("main")
        result, seconds = _build(ModuleBuilder(options), sources,
                                 jobs=PARALLEL_JOBS)
        cold_parallel = min(cold_parallel, seconds)
        parallel_value = result.program.run("main")
    assert serial_value == parallel_value  # same program either way

    builder = ModuleBuilder(options)
    _build(builder, sources, jobs=1)  # warm the cache

    warm_result, warm_seconds = _build(builder, sources, jobs=1)

    leaf = n_modules // 2
    body_result, body_seconds = _build(
        builder, make_tree(n_modules, body_edit=leaf), jobs=1)

    builder2 = ModuleBuilder(options)
    _build(builder2, make_tree(n_modules), jobs=1)
    surf_sources = make_tree(n_modules, surface_edit=leaf)
    surf_graph = scan_inline_modules(surf_sources)
    n_dependents = len(surf_graph.dependents_closure(f"M{leaf}"))
    t0 = time.perf_counter()
    surf_result = builder2.build(surf_graph, jobs=1)
    surf_seconds = time.perf_counter() - t0

    return {
        "n_modules": n_total,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "parallel_jobs": PARALLEL_JOBS,
        "cold_serial_s": round(cold_serial, 6),
        "cold_parallel_s": round(cold_parallel, 6),
        "parallel_speedup": round(cold_serial / cold_parallel, 4),
        "warm_s": round(warm_seconds, 6),
        "warm_recompiled": warm_result.n_compiled,
        "warm_cached": warm_result.n_cached,
        "body_edit_s": round(body_seconds, 6),
        "body_edit_recompiled": body_result.n_compiled,
        "surface_edit_s": round(surf_seconds, 6),
        "surface_edit_recompiled": surf_result.n_compiled,
        "surface_edit_dependents": n_dependents,
    }


def check_shape(m: Dict[str, object]) -> List[str]:
    """The claims BENCH_s3.json certifies (shared by pytest and the
    script)."""
    failures = []
    n = m["n_modules"]
    if m["warm_recompiled"] != 0:
        failures.append(f"warm rebuild recompiled {m['warm_recompiled']}")
    if m["body_edit_recompiled"] != 1:
        failures.append(f"body edit recompiled {m['body_edit_recompiled']}, "
                        f"expected exactly 1 (cut-off)")
    expected = 1 + m["surface_edit_dependents"]
    if m["surface_edit_recompiled"] != expected:
        failures.append(f"surface edit recompiled "
                        f"{m['surface_edit_recompiled']}, expected "
                        f"{expected} (module + dependents)")
    if m["surface_edit_recompiled"] >= n:
        failures.append("surface edit recompiled the whole tree")
    return failures


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_incremental_build_is_o_dependents():
    metrics = measure(n_modules=min(N_MODULES, 12), rounds=1)
    record("S3 incremental module builds", "edit-rebuild scaling", **{
        k: v for k, v in metrics.items() if isinstance(v, (int, float))})
    failures = check_shape(metrics)
    assert not failures, (failures, metrics)


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s3.json
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    metrics = measure(n_modules=8 if smoke else N_MODULES,
                      rounds=1 if smoke else ROUNDS)
    failures = check_shape(metrics)
    payload = {
        "benchmark": "s3_incremental_build",
        "smoke": smoke,
        "build": metrics,
        "failures": failures,
        "passed": not failures,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s3.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
