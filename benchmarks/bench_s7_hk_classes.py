"""S7 — higher-kinded classes: the monadic-pipeline workload.

PR 10 lifted class variables to arbitrary kinds and grew the prelude a
Functor/Applicative/Monad hierarchy.  The interesting cost question is
the same one the paper asks about ``Eq``: what does the *dictionary*
for an abstraction this pervasive cost, and does specialisation
(§9 / the pygen backend) still erase it?

Workload: a validation pipeline written against ``Monad m`` — bind
chains, ``fmap`` post-processing, ``mapM`` over a list — instantiated
at ``Maybe`` and at ``[]``, plus a derived-Functor tree map.  Measured
three ways:

* **generic** (dictionary passing) vs **specialised** (link-time
  clones): evaluator dictionary constructions and method selections —
  the specialised path must eliminate the dispatch;
* **reduce vs chr**: both solver backends over the same source must
  agree on the value and the inferred schemes (the higher-kinded
  goals ``Monad m``/``Functor f`` reduce at kind ``* -> *``).

Run under pytest for the shape assertions, or as a script to
(re)write ``BENCH_s7.json`` at the repository root::

    PYTHONPATH=src:. python benchmarks/bench_s7_hk_classes.py
    PYTHONPATH=src:. python benchmarks/bench_s7_hk_classes.py --smoke
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from typing import Dict, List

from benchmarks.conftest import compiled, record
from repro import CompilerOptions, compile_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ROUNDS = int(os.environ.get("BENCH_S7_ROUNDS", "6"))

SRC = """
data Tree a = Leaf | Node (Tree a) a (Tree a)
  deriving (Functor, Eq)

build :: Int -> Tree Int
build n = if n <= 0 then Leaf
          else Node (build (n - 1)) n (build (n - 2))

clamp :: Monad m => Int -> Int -> m Int
clamp limit x = if x > limit then return limit else return x

stage :: Monad m => Int -> m Int
stage x = return (x * 2) >>= clamp 900 >>= (\\y -> return (y + 1))

pipeline :: Monad m => [Int] -> m Int
pipeline xs = mapM stage xs >>= (\\ys -> return (sum ys))

sumTree :: Tree Int -> Int
sumTree Leaf = 0
sumTree (Node l x r) = sumTree l + x + sumTree r

main =
  let input = enumFromTo 1 40
      viaMaybe = pipeline input :: Maybe Int
      viaList = fmap (\\t -> t + 1) (pipeline input :: [Int])
      mapped = sumTree (fmap (\\x -> x * 3) (build 8))
  in (viaMaybe, viaList, mapped)
"""

SOLVERS = ("reduce", "chr")


def measure(rounds: int = ROUNDS) -> Dict[str, object]:
    out: Dict[str, object] = {"rounds": rounds,
                              "workload": "monadic pipeline at Maybe/[], "
                                          "derived-Functor tree map, n=40"}
    # -- dictionary vs specialised dispatch ------------------------------
    for label, specialize in (("generic", False), ("specialized", True)):
        program = compiled(SRC, specialize=specialize)
        value = program.run("main")  # warm-up and the measured value
        t0 = time.perf_counter()
        for _ in range(rounds):
            program.run("main")
        run_s = (time.perf_counter() - t0) / rounds
        stats = program.last_stats
        out[label] = {
            "value": value,
            "run_s": round(run_s, 6),
            "dict_constructions": stats.dict_constructions,
            "dict_selections": stats.dict_selections,
            "steps": stats.steps,
        }
    # -- solver agreement ------------------------------------------------
    solver_rows: Dict[str, object] = {}
    for solver in SOLVERS:
        program = compile_source(SRC, CompilerOptions(solver=solver))
        schemes = "\n".join(f"{n} :: {s}" for n, s
                            in sorted(program.schemes.items()))
        solver_rows[solver] = {
            "value": program.run("main"),
            "schemes_sha": hashlib.sha256(
                schemes.encode("utf-8")).hexdigest(),
            "pipeline_scheme": str(program.schemes["pipeline"]),
        }
    out["solvers"] = solver_rows
    return out


def check_shape(m: Dict[str, object]) -> List[str]:
    """The claims BENCH_s7.json certifies (shared by pytest and the
    script)."""
    failures: List[str] = []
    gen, spec = m["generic"], m["specialized"]
    if gen["value"] != spec["value"]:
        failures.append(
            f"specialisation changed the value: {gen['value']!r} vs "
            f"{spec['value']!r}")
    if gen["dict_selections"] <= 0:
        failures.append(
            "the generic pipeline performed no method selections — the "
            "workload no longer exercises higher-kinded dictionaries")
    if spec["dict_selections"] >= gen["dict_selections"]:
        failures.append(
            f"specialisation did not reduce dispatch: "
            f"{spec['dict_selections']} vs {gen['dict_selections']} "
            f"selections")
    red, chrr = m["solvers"]["reduce"], m["solvers"]["chr"]
    if red["value"] != chrr["value"]:
        failures.append(
            f"solvers disagree on the value: {red['value']!r} vs "
            f"{chrr['value']!r}")
    if red["schemes_sha"] != chrr["schemes_sha"]:
        failures.append("solvers disagree on the inferred schemes")
    return failures


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_s7_hk_pipeline_shape():
    metrics = measure(rounds=2)
    record("S7 higher-kinded classes", "generic (dictionaries)",
           selections=metrics["generic"]["dict_selections"],
           dicts=metrics["generic"]["dict_constructions"],
           steps=metrics["generic"]["steps"])
    record("S7 higher-kinded classes", "specialised clones",
           selections=metrics["specialized"]["dict_selections"],
           dicts=metrics["specialized"]["dict_constructions"],
           steps=metrics["specialized"]["steps"])
    failures = check_shape(metrics)
    assert not failures, (failures, metrics)


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s7.json
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    metrics = measure(rounds=2 if smoke else ROUNDS)
    failures = check_shape(metrics)
    payload = {
        "benchmark": "s7_hk_classes",
        "smoke": smoke,
        "metrics": metrics,
        "failures": failures,
        "passed": not failures,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s7.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
