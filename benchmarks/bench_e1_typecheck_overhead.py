"""E1 — "type classes increase compilation time only slightly" (§9).

Workload: programs of N definitions, generated in two flavours:

* **ML subset** — monomorphic signatures, primitive operators, no
  overloading anywhere (what an ML type checker would see);
* **with classes** — the same N definitions written against the
  overloaded operators, plus a class/instance pair, so unification
  carries contexts, context reduction runs, and dictionary conversion
  inserts and resolves placeholders.

Both compile *without* the prelude so nothing but the N definitions is
measured.  The claim holds if the with-classes compile is within a
small constant factor (the paper: "a minor increase in the cost of
unification and the placement and resolution of placeholders").
"""

import pytest

from benchmarks.conftest import record
from repro import CompilerOptions, compile_source


def ml_program(n: int) -> str:
    lines = [
        "f0 :: Int -> Int",
        "f0 x = primAddInt x 1",
    ]
    for i in range(1, n):
        lines.append(f"f{i} :: Int -> Int")
        lines.append(f"f{i} x = f{i - 1} (primMulInt x 2)")
    lines.append("data Bool2 = T2 | F2")
    return "\n".join(lines)


def class_program(n: int) -> str:
    lines = [
        "data Bool2 = T2 | F2",
        "class MyNum a where",
        "  add :: a -> a -> a",
        "  mul :: a -> a -> a",
        "instance MyNum Int where",
        "  add = primAddInt",
        "  mul = primMulInt",
        "f0 :: MyNum a => a -> a",
        "f0 x = add x x",
    ]
    for i in range(1, n):
        lines.append(f"f{i} :: MyNum a => a -> a")
        lines.append(f"f{i} x = f{i - 1} (mul x x)")
    # A use at Int, so context reduction actually runs.
    lines.append("check :: Int")
    lines.append(f"check = f{n - 1} 3")
    return "\n".join(lines)


def compile_bare(source: str):
    return compile_source(
        source, CompilerOptions(overload_literals=False),
        include_prelude=False)


SIZES = [20, 60]


@pytest.mark.parametrize("n", SIZES)
def test_e1_ml_subset(benchmark, n):
    src = ml_program(n)
    program = benchmark(lambda: compile_bare(src))
    record("E1 typecheck overhead", f"ML subset, n={n}",
           unifications=program.compile_stats.unify_count,
           context_reductions=program.compile_stats.context_reductions)


@pytest.mark.parametrize("n", SIZES)
def test_e1_with_classes(benchmark, n):
    src = class_program(n)
    program = benchmark(lambda: compile_bare(src))
    record("E1 typecheck overhead", f"with classes, n={n}",
           unifications=program.compile_stats.unify_count,
           context_reductions=program.compile_stats.context_reductions)


def test_e1_shape():
    """The with-classes front end does more work, but only slightly:
    unification count within 3x, and the extra work is exactly the
    context machinery (reductions > 0 only with classes)."""
    import time
    n = 60
    t0 = time.perf_counter()
    ml = compile_bare(ml_program(n))
    t1 = time.perf_counter()
    cls = compile_bare(class_program(n))
    t2 = time.perf_counter()
    ml_time, cls_time = t1 - t0, t2 - t1
    assert ml.compile_stats.context_reductions == 0
    assert cls.compile_stats.context_reductions > 0
    assert cls.compile_stats.unify_count < 3 * ml.compile_stats.unify_count
    # wall clock within a generous constant factor (CI noise tolerant)
    assert cls_time < 6 * ml_time + 0.05
    record("E1 typecheck overhead", f"wall-clock ratio, n={n}",
           ratio=round(cls_time / max(ml_time, 1e-9), 2))
