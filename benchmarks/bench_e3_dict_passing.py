"""E3 — "passing and storing extra arguments to overloaded functions
will incur slightly more function call overhead.  ...  for code which
does not use overloaded functions (but still may use method functions)
the class system adds no overhead at all since the specific instance
functions are called directly" (§9).

Workloads:

* the same pipeline compiled once with an overloaded signature (a
  dictionary flows through every call) and once monomorphic at Int
  (zero dictionaries);
* a *method-using but monomorphic* program — ``==`` at Int — which
  must compile to a direct call of the instance function with no
  dictionary traffic at all (the second half of the claim).
"""


from benchmarks.conftest import compiled, record

N = 300

OVERLOADED = f"""
step :: Num a => a -> a
step x = x + x

apply :: Num a => Int -> a -> a
apply n x = if n == 0 then x else apply (n - 1) (step x)

main = apply {N} 1
"""

MONO = f"""
step :: Int -> Int
step x = x + x

apply :: Int -> Int -> Int
apply n x = if n == 0 then x else apply (n - 1) (step x)

main = apply {N} 1
"""

METHODS_AT_KNOWN_TYPE = f"""
count :: Int -> Int -> Int
count acc n = if n == 0 then acc
              else count (if n == acc then acc else acc + 1) (n - 1)
main = count 0 {N}
"""


def test_e3_overloaded_pipeline(benchmark):
    program = compiled(OVERLOADED)
    assert program.run("main") == 2 ** N
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E3 dictionary passing", "overloaded (dict flows through)",
           calls=s.fun_calls, steps=s.steps,
           dicts=s.dict_constructions, selections=s.dict_selections)


def test_e3_monomorphic_pipeline(benchmark):
    program = compiled(MONO)
    assert program.run("main") == 2 ** N
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E3 dictionary passing", "monomorphic at Int",
           calls=s.fun_calls, steps=s.steps,
           dicts=s.dict_constructions, selections=s.dict_selections)


def test_e3_methods_at_known_type(benchmark):
    program = compiled(METHODS_AT_KNOWN_TYPE)
    program.run("main")
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E3 dictionary passing", "methods at known type (direct)",
           calls=s.fun_calls, steps=s.steps,
           dicts=s.dict_constructions, selections=s.dict_selections)


def test_e3_shape():
    over = compiled(OVERLOADED)
    over.run("main")
    mono = compiled(MONO)
    mono.run("main")
    known = compiled(METHODS_AT_KNOWN_TYPE)
    known.run("main")
    # "no overhead at all" for non-overloaded code, even when it uses
    # method functions:
    assert mono.last_stats.dict_constructions == 0
    assert mono.last_stats.dict_selections == 0
    assert known.last_stats.dict_constructions == 0
    assert known.last_stats.dict_selections == 0
    # "slightly more function call overhead" for the overloaded one:
    assert over.last_stats.steps >= mono.last_stats.steps
    assert over.last_stats.steps < 2 * mono.last_stats.steps
    record("E3 dictionary passing", "steps ratio overloaded/mono",
           ratio=round(over.last_stats.steps / mono.last_stats.steps, 3))
