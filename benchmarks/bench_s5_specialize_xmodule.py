"""S5 — cross-module specialization (§9 at link time).

PR 6 taught interfaces to carry *unfoldings* (serialized core bodies
of exported overloaded bindings) and the linker to clone calls that
cross module boundaries at constant dictionary vectors.  This
benchmark builds a multi-module suite — overloaded numeric, equality
and ordering kernels in library modules, driven from ``Main`` at
concrete types — under three configurations:

* **specialized** — the full pipeline, link-time specializer on;
* **no-xmodule** — §8 optimisations on, link-time specializer off
  (what separate compilation gave before this PR);
* **dictionary** — plain dictionary passing (the paper's baseline:
  no hoisting, no inner entry points, no specialization).

The asserted claim is the paper's §9 claim, in the paper's own
currency: the *dynamic dictionary operations* (constructions +
selections) on the hot path drop by at least 2x — in practice to
(nearly) zero — under both the interpreter and the compiled-to-Python
backend, while every configuration computes the same value.
Wall-clock for both backends is *recorded*, not asserted: on a
graph-reduction runtime the generic apply/thunk machinery dominates
either way, so wall-clock is an unstable proxy for the dispatch the
specializer removes.

Run under pytest for the shape assertions, or as a script to
(re)write ``BENCH_s5.json`` at the repository root::

    PYTHONPATH=src:. python benchmarks/bench_s5_specialize_xmodule.py
    PYTHONPATH=src:. python benchmarks/bench_s5_specialize_xmodule.py --smoke
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Tuple

from benchmarks.conftest import record
from repro.coreir import pyrt
from repro.modules import ModuleBuilder
from repro.modules.resolve import scan_inline_modules
from repro.options import CompilerOptions

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ROUNDS = int(os.environ.get("BENCH_S5_ROUNDS", "20"))

#: The multi-module suite.  Every overloaded kernel lives in a library
#: module and is driven from Main at a concrete type, so each call is
#: a cross-module specialization root cloned from an unfolding.
SUITE: List[Tuple[str, str]] = [
    ("Numeric", """module Numeric where
sumTo :: Num a => Int -> a -> a
sumTo n acc = if n <= 0 then acc else sumTo (n - 1) (acc + fromInteger n)
poly :: Num a => a -> a
poly x = x * x + x + fromInteger 1
"""),
    ("Geom", """module Geom where
class Meas a where
  meas :: a -> Int
data Pt = Pt Int Int
instance Meas Pt where
  meas (Pt x y) = x * x + y * y
total :: Meas a => [a] -> Int
total [] = 0
total (p:ps) = meas p + total ps
"""),
    ("Ords", """module Ords where
countLE :: Ord a => a -> [a] -> Int
countLE x [] = 0
countLE x (y:ys) = if y <= x then 1 + countLE x ys else countLE x ys
"""),
    ("Main", """module Main where
import Numeric
import Geom
import Ords
iterPoly :: Int -> Int -> Int
iterPoly n x = if n <= 0 then x else iterPoly (n - 1) (mod (poly x) 10007)
pts :: Int -> [Pt]
pts n = map (\\i -> Pt i (i + 1)) (enumFromTo 1 n)
pairs :: [(Int, Int)]
pairs = map (\\i -> (mod i 13, i)) (enumFromTo 1 50)
work :: Int -> Int
work k = sumTo 150 (0 :: Int) + iterPoly 150 (k + 2)
  + total (pts 80) + countLE (mod k 13, 40) pairs
main :: Int
main = work 3
"""),
]

CONFIGS: List[Tuple[str, Dict[str, object]]] = [
    ("specialized", {}),
    ("no_xmodule", {"specialize_xmodule": False}),
    ("dictionary", {"specialize_xmodule": False,
                    "hoist_dictionaries": False,
                    "inner_entry_points": False}),
]


def build_config(overrides: Dict[str, object]):
    graph = scan_inline_modules(list(SUITE))
    options = CompilerOptions(**overrides)
    return ModuleBuilder(options).build(graph).program


def measure_config(program, rounds: int) -> Dict[str, object]:
    """Interpreter and compiled-backend numbers for one build."""
    value = program.run("main")
    stats = program.last_stats
    t0 = time.perf_counter()
    for _ in range(max(1, rounds // 4)):
        program.run("main")
    interp_s = (time.perf_counter() - t0) / max(1, rounds // 4)

    py = program.to_python(["work", "main"])
    fn = pyrt.force(py.globals["work"])
    py_value = pyrt.to_python(pyrt.apply_fn(py.counters, fn, 3))
    py.counters.reset()
    t0 = time.perf_counter()
    for i in range(rounds):
        pyrt.apply_fn(py.counters, fn, i)
    py_s = (time.perf_counter() - t0) / rounds

    phases = program.compile_stats.phases
    spec_counters = {}
    if hasattr(phases, "counters"):
        spec_counters = dict(phases.counters("specialize-xmodule"))
    return {
        "value": value,
        "py_value": py_value,
        "interp_s": round(interp_s, 6),
        "py_s": round(py_s, 6),
        "interp_dict_ops": stats.dict_constructions + stats.dict_selections,
        "py_dict_ops": (py.counters.dict_constructions
                        + py.counters.dict_selections) // rounds,
        "clones": spec_counters.get("clones", 0),
        "from_unfoldings": spec_counters.get("from_unfoldings", 0),
    }


def measure(rounds: int = ROUNDS) -> Dict[str, object]:
    out: Dict[str, object] = {"rounds": rounds}
    for name, overrides in CONFIGS:
        out[name] = measure_config(build_config(overrides), rounds)
    spec, base = out["specialized"], out["dictionary"]

    def ratio(key: str) -> float:
        return round(base[key] / max(spec[key], 1), 2)

    out["dict_op_speedup_interp"] = ratio("interp_dict_ops")
    out["dict_op_speedup_py"] = ratio("py_dict_ops")
    out["wallclock_speedup_interp"] = round(
        base["interp_s"] / spec["interp_s"], 3)
    out["wallclock_speedup_py"] = round(base["py_s"] / spec["py_s"], 3)
    return out


def check_shape(m: Dict[str, object]) -> List[str]:
    """The claims BENCH_s5.json certifies (shared by pytest and the
    script)."""
    failures = []
    values = {name: (m[name]["value"], m[name]["py_value"])
              for name, _ in CONFIGS}
    if len(set(values.values())) != 1:
        failures.append(f"configurations disagree on the result: {values}")
    spec, base = m["specialized"], m["dictionary"]
    if spec["clones"] < 3:
        failures.append(f"only {spec['clones']} link-time clones; "
                        f"expected one per overloaded kernel (>= 3)")
    if spec["from_unfoldings"] < 3:
        failures.append(f"only {spec['from_unfoldings']} clones came "
                        f"from interface unfoldings")
    if m["dict_op_speedup_interp"] < 2:
        failures.append(f"interpreter dictionary-op speedup "
                        f"{m['dict_op_speedup_interp']} < 2x")
    if m["dict_op_speedup_py"] < 2:
        failures.append(f"compiled-backend dictionary-op speedup "
                        f"{m['dict_op_speedup_py']} < 2x")
    if base["py_dict_ops"] < 100:
        failures.append(f"dictionary baseline only performed "
                        f"{base['py_dict_ops']} dict ops per run — the "
                        f"workload no longer exercises dispatch")
    if spec["py_dict_ops"] > base["py_dict_ops"] // 20:
        failures.append(f"specialized hot path still performs "
                        f"{spec['py_dict_ops']} dict ops per run")
    return failures


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_xmodule_specialization_eliminates_dispatch():
    metrics = measure(rounds=max(2, ROUNDS // 4))
    record("S5 cross-module specialization", "dict-op elimination", **{
        k: v for k, v in metrics.items() if isinstance(v, (int, float))})
    for name, _ in CONFIGS:
        record("S5 cross-module specialization", name, **{
            k: v for k, v in metrics[name].items()
            if isinstance(v, (int, float))})
    failures = check_shape(metrics)
    assert not failures, (failures, metrics)


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s5.json
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    metrics = measure(rounds=2 if smoke else ROUNDS)
    failures = check_shape(metrics)
    payload = {
        "benchmark": "s5_specialize_xmodule",
        "smoke": smoke,
        "suite_modules": [name for name, _ in SUITE],
        "metrics": metrics,
        "failures": failures,
        "passed": not failures,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s5.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
