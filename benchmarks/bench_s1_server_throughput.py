"""S1 — serving-layer throughput: the async front door at rate.

Four measurements:

* **cold** — one-shot ``compile_source``: parses, type checks and
  translates the full prelude every time;
* **warm** — ``compile_source(..., snapshot=...)``: the prelude comes
  from a prebuilt :class:`~repro.service.snapshot.PreludeSnapshot`, so
  only the user program is compiled.  Required: **>= 5x** faster;
* **sequential** — the PR-6-era measurement: synchronous clients, one
  request per round trip.  This is the recorded baseline regime
  (1540.7 req/s on the reference box) that the serving-layer rebuild
  is measured against;
* **pipelined** — mixed traffic (eval by handle, eval by source, ping,
  typeof) over :class:`PipelinedClient` with a bounded in-flight
  window, the way the protocol is meant to be driven at rate.  Repeat
  evals ride the expression memo and the event-loop fast path, so
  round trips stop dominating.  Required: **>= 5x** the recorded
  sequential baseline.  Latency percentiles (p50/p95/p99) are
  recorded against the SLO table, along with shed/protocol-error
  counts (both must be zero at this load).

Run under pytest (``pytest benchmarks/bench_s1_server_throughput.py``)
for the shape assertions, or as a script to (re)write ``BENCH_s1.json``
at the repository root::

    PYTHONPATH=src python benchmarks/bench_s1_server_throughput.py
"""

from __future__ import annotations

import importlib.util
import json
import os
import statistics
import time
from typing import Any, Dict, List

from benchmarks.conftest import record
from repro import CompilerOptions, compile_source
from repro.service.server import (
    CompileServer,
    CompileService,
    PipelinedClient,
    ServiceClient,
)
from repro.service.snapshot import PreludeSnapshot

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: compile repetitions per flavour (medians are reported)
REPEATS = int(os.environ.get("BENCH_S1_REPEATS", "5"))
#: total requests in the pipelined mixed-traffic phase
REQUESTS = int(os.environ.get("BENCH_S1_REQUESTS", "20000"))
#: requests in the sequential reference phase
SEQUENTIAL_REQUESTS = int(os.environ.get("BENCH_S1_SEQ_REQUESTS", "300"))
#: max requests in flight on the pipelined connection
WINDOW = int(os.environ.get("BENCH_S1_WINDOW", "64"))
REQUIRED_SPEEDUP = 5.0

#: sequential requests/s recorded when the baseline was frozen (PR 6,
#: synchronous clients against the thread-pool server)
BASELINE_REQUESTS_PER_S = 1540.7

#: latency objectives for the pipelined phase, milliseconds
SLO_MS = {"p50": 10.0, "p95": 50.0, "p99": 250.0}


def quickstart_source() -> str:
    path = os.path.join(REPO_ROOT, "examples", "quickstart.py")
    spec = importlib.util.spec_from_file_location("quickstart", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    times: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def measure_compiles() -> Dict[str, float]:
    source = quickstart_source()
    options = CompilerOptions()
    snapshot = PreludeSnapshot.build(options)

    cold = _median_seconds(lambda: compile_source(source, options))
    warm = _median_seconds(
        lambda: compile_source(source, options, snapshot=snapshot))
    return {
        "cold_compile_s": round(cold, 6),
        "warm_compile_s": round(warm, 6),
        "speedup": round(cold / warm, 2),
    }


def _start_server() -> CompileServer:
    options = CompilerOptions(server_workers=4, request_timeout=60.0)
    server = CompileServer(service=CompileService(options))
    server.port = server.start()
    return server


def measure_sequential(server: CompileServer, key: str) -> Dict[str, Any]:
    """The old regime: one synchronous request per round trip."""
    with ServiceClient("127.0.0.1", server.port) as c:
        t0 = time.perf_counter()
        for i in range(SEQUENTIAL_REQUESTS):
            r = c.request("eval", program=key, expr=f"double {i % 8}")
            assert r["ok"], r
        elapsed = time.perf_counter() - t0
    return {
        "requests": SEQUENTIAL_REQUESTS,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(SEQUENTIAL_REQUESTS / elapsed, 1),
    }


def _mixed_request(client: PipelinedClient, i: int, source: str,
                   key: str) -> int:
    """One request of the traffic mix; returns its id."""
    slot = i % 20
    if slot < 16:  # 80%: eval by handle, 8 distinct exprs (memo hits)
        return client.send("eval", program=key, expr=f"double {i % 8}")
    if slot < 17:  # 5%: eval by source (service-cache hit, slow path)
        return client.send("eval", source=source, expr="double 21")
    if slot < 18:  # 5%: typeof by handle (slow path)
        return client.send("typeof", program=key, expr="double")
    if slot < 19:  # 5%: ping (management)
        return client.send("ping")
    # 5%: eval of a second memoized expression
    return client.send("eval", program=key, expr=f"double ({i % 8} + 8)")


def measure_pipelined(server: CompileServer, source: str,
                      key: str) -> Dict[str, Any]:
    """Mixed traffic with a bounded in-flight window: send WINDOW
    requests, then one more per response.  Per-request latency is
    queueing + service, measured from the moment the request goes on
    the wire."""
    latencies: List[float] = []
    failures: List[Any] = []
    with PipelinedClient("127.0.0.1", server.port,
                         timeout=120.0) as client:
        # Prime the expression memo so the run measures the warm
        # serving path, as a steady-state client population would see.
        for i in range(16):
            assert client.request("eval", program=key,
                                  expr=f"double {i % 16}")["ok"]

        sent_at: Dict[int, float] = {}
        sent = 0
        received = 0
        t0 = time.perf_counter()
        while received < REQUESTS:
            while sent < REQUESTS and sent - received < WINDOW:
                request_id = _mixed_request(client, sent, source, key)
                sent_at[request_id] = time.perf_counter()
                sent += 1
            client.flush()
            response = client.recv()
            now = time.perf_counter()
            received += 1
            request_id = response.get("id")
            if request_id in sent_at:
                latencies.append(now - sent_at.pop(request_id))
            if not response.get("ok"):
                failures.append(response)
        elapsed = time.perf_counter() - t0

        counters = client.request(
            "stats")["result"]["server"]["counters"]

    latencies.sort()

    def pct(p: float) -> float:
        return latencies[min(len(latencies) - 1,
                             int(p / 100.0 * len(latencies)))]

    protocol_errors = [f for f in failures
                       if f.get("error", {}).get("type") == "protocol"]
    percentiles = {"p50": pct(50), "p95": pct(95), "p99": pct(99)}
    slos = {
        name: {
            "slo_ms": SLO_MS[name],
            "measured_ms": round(percentiles[name] * 1e3, 3),
            "met": percentiles[name] * 1e3 <= SLO_MS[name],
        }
        for name in SLO_MS
    }
    return {
        "requests": REQUESTS,
        "window": WINDOW,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(REQUESTS / elapsed, 1),
        "errors": len(failures),
        "protocol_errors": len(protocol_errors),
        "shed_total": counters.get("shed_total", 0),
        "fastpath_hits": counters.get("fastpath_hits", 0),
        "expr_cache_hits": counters.get("expr_cache_hits", 0),
        "slos": slos,
    }


def measure_serving() -> Dict[str, Any]:
    source = quickstart_source()
    server = _start_server()
    try:
        with ServiceClient("127.0.0.1", server.port) as c:
            r = c.request("compile", source=source)
            assert r["ok"], r
            key = r["result"]["program"]
        sequential = measure_sequential(server, key)
        pipelined = measure_pipelined(server, source, key)
    finally:
        server.stop()
    return {
        "sequential": sequential,
        "pipelined": pipelined,
        "baseline_requests_per_s": BASELINE_REQUESTS_PER_S,
        "speedup_vs_baseline": round(
            pipelined["requests_per_s"] / BASELINE_REQUESTS_PER_S, 2),
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_warm_compile_is_5x_faster():
    metrics = measure_compiles()
    record("S1 server throughput", "compile cold vs warm", **metrics)
    assert metrics["speedup"] >= REQUIRED_SPEEDUP, metrics


def test_pipelined_serving_is_clean_at_rate():
    os.environ.setdefault("BENCH_S1_REQUESTS", "20000")
    metrics = measure_serving()
    record("S1 server throughput", "pipelined mixed traffic",
           requests_per_s=metrics["pipelined"]["requests_per_s"],
           sequential_requests_per_s=metrics["sequential"][
               "requests_per_s"],
           speedup_vs_baseline=metrics["speedup_vs_baseline"])
    pipelined = metrics["pipelined"]
    assert pipelined["errors"] == 0, pipelined
    assert pipelined["protocol_errors"] == 0, pipelined
    assert pipelined["shed_total"] == 0, pipelined
    # The memo and fast path carried the load, not raw luck.
    assert pipelined["expr_cache_hits"] > 0
    # Pipelining beats the synchronous regime on the same server.
    assert pipelined["requests_per_s"] \
        > metrics["sequential"]["requests_per_s"], metrics


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s1.json
# ---------------------------------------------------------------------------

def main() -> int:
    compiles = measure_compiles()
    serving = measure_serving()
    pipelined = serving["pipelined"]
    passed = (
        compiles["speedup"] >= REQUIRED_SPEEDUP
        and serving["speedup_vs_baseline"] >= REQUIRED_SPEEDUP
        and pipelined["protocol_errors"] == 0
        and pipelined["slos"]["p99"]["met"]
    )
    payload = {
        "benchmark": "s1_server_throughput",
        "compile": compiles,
        "serving": serving,
        "required_speedup": REQUIRED_SPEEDUP,
        "passed": passed,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s1.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
