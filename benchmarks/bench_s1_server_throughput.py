"""S1 — the compilation service amortises the prelude.

Three measurements on the quickstart program (examples/quickstart.py):

* **cold** — one-shot ``compile_source``: parses, type checks and
  translates the full prelude every time;
* **warm** — ``compile_source(..., snapshot=...)``: the prelude comes
  from a prebuilt :class:`~repro.service.snapshot.PreludeSnapshot`, so
  only the user program is compiled.  Required: **>= 5x** faster;
* **served** — a real TCP server with four concurrent clients issuing
  ``eval`` requests against a cached program, reported as requests/s.

Run under pytest (``pytest benchmarks/bench_s1_server_throughput.py``)
for the shape assertions, or as a script to (re)write ``BENCH_s1.json``
at the repository root::

    PYTHONPATH=src python benchmarks/bench_s1_server_throughput.py
"""

from __future__ import annotations

import importlib.util
import json
import os
import statistics
import threading
import time
from typing import Dict, List

from benchmarks.conftest import record
from repro import CompilerOptions, compile_source
from repro.service.server import CompileServer, CompileService, ServiceClient
from repro.service.snapshot import PreludeSnapshot

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: compile repetitions per flavour (medians are reported)
REPEATS = int(os.environ.get("BENCH_S1_REPEATS", "5"))
#: eval requests per client in the throughput phase
REQUESTS_PER_CLIENT = int(os.environ.get("BENCH_S1_REQUESTS", "25"))
CLIENTS = 4
REQUIRED_SPEEDUP = 5.0


def quickstart_source() -> str:
    path = os.path.join(REPO_ROOT, "examples", "quickstart.py")
    spec = importlib.util.spec_from_file_location("quickstart", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SOURCE


def _median_seconds(fn, repeats: int = REPEATS) -> float:
    times: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def measure_compiles() -> Dict[str, float]:
    source = quickstart_source()
    options = CompilerOptions()
    snapshot = PreludeSnapshot.build(options)

    cold = _median_seconds(lambda: compile_source(source, options))
    warm = _median_seconds(
        lambda: compile_source(source, options, snapshot=snapshot))
    return {
        "cold_compile_s": round(cold, 6),
        "warm_compile_s": round(warm, 6),
        "speedup": round(cold / warm, 2),
    }


def measure_throughput() -> Dict[str, float]:
    source = quickstart_source()
    options = CompilerOptions(server_workers=CLIENTS)
    server = CompileServer(service=CompileService(options))
    port = server.start()
    errors: List[Exception] = []
    try:
        # Warm the cache once so the phase measures serving, not the
        # first compile.
        with ServiceClient("127.0.0.1", port) as c:
            r = c.request("compile", source=source)
            assert r["ok"], r
            key = r["result"]["program"]

        def client(_n: int) -> None:
            try:
                with ServiceClient("127.0.0.1", port) as c:
                    for i in range(REQUESTS_PER_CLIENT):
                        r = c.request("eval", program=key,
                                      expr=f"double {i}")
                        assert r["ok"], r
                        assert r["result"]["value"] == str(2 * i), r
            except Exception as exc:  # noqa: BLE001 — re-raised below
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(n,))
                   for n in range(CLIENTS)]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
    finally:
        server.stop()
    if errors:
        raise errors[0]
    total = CLIENTS * REQUESTS_PER_CLIENT
    return {
        "clients": CLIENTS,
        "requests": total,
        "elapsed_s": round(elapsed, 4),
        "requests_per_s": round(total / elapsed, 1),
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_warm_compile_is_5x_faster():
    metrics = measure_compiles()
    record("S1 server throughput", "compile cold vs warm", **metrics)
    assert metrics["speedup"] >= REQUIRED_SPEEDUP, metrics


def test_served_evals_under_concurrency():
    metrics = measure_throughput()
    record("S1 server throughput",
           f"{CLIENTS} concurrent clients", **metrics)
    assert metrics["requests"] == CLIENTS * REQUESTS_PER_CLIENT


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s1.json
# ---------------------------------------------------------------------------

def main() -> int:
    compiles = measure_compiles()
    throughput = measure_throughput()
    payload = {
        "benchmark": "s1_server_throughput",
        "compile": compiles,
        "throughput": throughput,
        "required_speedup": REQUIRED_SPEEDUP,
        "passed": compiles["speedup"] >= REQUIRED_SPEEDUP,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s1.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
