"""E4 — repeated dictionary construction (§8.8).

    "many implementations of this definition will repeat the
    construction of the dictionary eqDList d at each step of the
    recursion"

Workload: the doList shape — an overloaded traversal whose body needs
``Eq [a]`` given ``Eq a``, so the naive translation builds
``d-Eq-List d`` once per element.  Swept over the list length n, the
series to reproduce is:

* naive translation: dictionary constructions grow **linearly** in n;
* improved translation (hoisting + inner entry, the paper's rewrite):
  constructions stay **constant**;
* call-by-name (an implementation with no sharing at all): linear even
  in the improved form — which is why the paper points at full
  laziness as the systematic cure.
"""

import pytest

from benchmarks.conftest import compiled, record


def workload(n: int) -> str:
    return f"""
process :: Eq a => [a] -> Int
process [] = 0
process (x:xs) = (if member [x] [[x], []] then 1 else 0) + process xs

main = process (enumFromTo 1 {n})
"""


SIZES = [50, 100, 200]


@pytest.mark.parametrize("n", SIZES)
def test_e4_naive(benchmark, n):
    program = compiled(workload(n), hoist_dictionaries=False,
                       inner_entry_points=False)
    assert program.run("main") == n
    benchmark(lambda: program.run("main"))
    record("E4 repeated construction", f"naive, n={n}",
           dict_constructions=program.last_stats.dict_constructions)


@pytest.mark.parametrize("n", SIZES)
def test_e4_improved(benchmark, n):
    program = compiled(workload(n), hoist_dictionaries=True,
                       inner_entry_points=True)
    assert program.run("main") == n
    benchmark(lambda: program.run("main"))
    record("E4 repeated construction", f"improved (8.8), n={n}",
           dict_constructions=program.last_stats.dict_constructions)


@pytest.mark.parametrize("n", [50, 100])
def test_e4_call_by_name(benchmark, n):
    program = compiled(workload(n), hoist_dictionaries=True,
                       inner_entry_points=True, call_by_need=False)
    assert program.run("main") == n
    benchmark(lambda: program.run("main"))
    record("E4 repeated construction", f"call-by-name, n={n}",
           dict_constructions=program.last_stats.dict_constructions)


def test_e4_shape():
    counts_naive = []
    counts_improved = []
    for n in SIZES:
        p = compiled(workload(n), hoist_dictionaries=False,
                     inner_entry_points=False)
        p.run("main")
        counts_naive.append(p.last_stats.dict_constructions)
        q = compiled(workload(n), hoist_dictionaries=True,
                     inner_entry_points=True)
        q.run("main")
        counts_improved.append(q.last_stats.dict_constructions)
    # naive: linear — grows with n, at least one construction/element
    assert counts_naive[0] >= SIZES[0]
    assert counts_naive[-1] >= SIZES[-1]
    assert counts_naive[-1] > 3 * counts_naive[0] // 2
    # improved: constant across the sweep
    assert counts_improved[0] == counts_improved[-1]
    assert counts_improved[0] <= 4
    record("E4 repeated construction", "series naive",
           **{f"n{n}": c for n, c in zip(SIZES, counts_naive)})
    record("E4 repeated construction", "series improved",
           **{f"n{n}": c for n, c in zip(SIZES, counts_improved)})
