"""E7 — nested vs flattened dictionaries (§8.1).

    "Deeply nested dictionaries can be avoided by flattening
    dictionaries to include all methods in both the associated class
    and in all superclasses at the top level of the structure.  This
    slows down dictionary construction but speeds up selection
    operations.  The effect of this tradeoff in real programs is not
    yet known."

Workload: a superclass *chain* C1 <= C2 <= ... <= Cd; a function
constrained only by Cd calls a method of C1, so the nested layout
chases d-1 embedded dictionaries per (unhoisted) access while the
flattened layout selects once.  Swept over the depth d.  We report
both selection counts (flat wins) and construction cost measured as
dictionary-tuple slots built (nested wins) — resolving the tradeoff
the paper left open, for this interpreter's cost model.
"""

import pytest

from benchmarks.conftest import record
from repro import CompilerOptions, compile_source


def chain_program(depth: int, n: int) -> str:
    lines = ["class C1 a where", "  m1 :: a -> Int"]
    for i in range(2, depth + 1):
        lines.append(f"class C{i - 1} a => C{i} a where")
        lines.append(f"  m{i} :: a -> Int")
    lines.append("instance C1 Int where")
    lines.append("  m1 x = x")
    for i in range(2, depth + 1):
        lines.append(f"instance C{i} Int where")
        lines.append(f"  m{i} x = x")
    lines.append(f"deep :: C{depth} a => [a] -> Int")
    lines.append("deep [] = 0")
    lines.append("deep (x:xs) = m1 x + deep xs")
    lines.append(f"main = deep (enumFromTo 1 {n})")
    return "\n".join(lines)


DEPTHS = [2, 4, 6]
N = 150


def run(depth: int, layout: str, hoist: bool = False):
    program = compile_source(
        chain_program(depth, N),
        CompilerOptions(dict_layout=layout, hoist_dictionaries=hoist,
                        inner_entry_points=False, single_slot_opt=False))
    result = program.run("main")
    assert result == N * (N + 1) // 2
    return program


@pytest.mark.parametrize("depth", DEPTHS)
def test_e7_nested(benchmark, depth):
    program = run(depth, "nested")
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E7 dictionary layout", f"nested, depth={depth}",
           selections=s.dict_selections, dicts=s.dict_constructions)


@pytest.mark.parametrize("depth", DEPTHS)
def test_e7_flattened(benchmark, depth):
    program = run(depth, "flat")
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E7 dictionary layout", f"flattened, depth={depth}",
           selections=s.dict_selections, dicts=s.dict_constructions)


def test_e7_shape():
    selections = {}
    for layout in ("nested", "flat"):
        per_depth = []
        for depth in DEPTHS:
            program = run(depth, layout)
            per_depth.append(program.last_stats.dict_selections)
        selections[layout] = per_depth
    # Nested: the per-access cost grows with the chain depth.
    assert selections["nested"][-1] > selections["nested"][0]
    # Flattened: selection cost independent of depth.
    assert selections["flat"][0] == selections["flat"][-1]
    # At depth 6, flat selects strictly less.
    assert selections["flat"][-1] < selections["nested"][-1]
    record("E7 dictionary layout", "selection series nested",
           **{f"d{d}": c for d, c in zip(DEPTHS, selections["nested"])})
    record("E7 dictionary layout", "selection series flattened",
           **{f"d{d}": c for d, c in zip(DEPTHS, selections["flat"])})


def test_e7_construction_cost():
    """The other side of the tradeoff: the flattened dictionary for the
    deepest class is wider (more slots built per construction)."""
    depth = 6
    nested_prog = run(depth, "nested")
    flat_prog = run(depth, "flat")
    nested_width = nested_prog.class_env.dict_size(f"C{depth}")
    flat_width = flat_prog.class_env.dict_size(f"C{depth}")
    assert flat_width > nested_width
    record("E7 dictionary layout", f"dict width at depth={depth}",
           nested=nested_width, flattened=flat_width)
