"""E5 — inner entry points (§6.3, §7).

    "since any dictionaries passed to a recursive call remain
    unchanged from the original entry to the function, the need to
    pass dictionaries to inner recursive calls can be eliminated by
    using an inner entry point where the dictionaries have already
    been bound."

Workload: the paper's member on a list of length n (element absent, so
the full list is traversed).  The series: total function calls with
and without the optimisation — without it, every recursive step pays
an extra call to re-enter the dictionary lambda.
"""

import pytest

from benchmarks.conftest import compiled, record


def workload(n: int) -> str:
    return f"""
mem :: Eq a => a -> [a] -> Bool
mem x [] = False
mem x (y:ys) = x == y || mem x ys

main = mem 0 (enumFromTo 1 {n})
"""


SIZES = [100, 400]


@pytest.mark.parametrize("n", SIZES)
def test_e5_without_entry_points(benchmark, n):
    program = compiled(workload(n), inner_entry_points=False,
                       hoist_dictionaries=False)
    assert program.run("main") is False
    benchmark(lambda: program.run("main"))
    record("E5 inner entry points", f"dictionary re-passed, n={n}",
           calls=program.last_stats.fun_calls,
           steps=program.last_stats.steps)


@pytest.mark.parametrize("n", SIZES)
def test_e5_with_entry_points(benchmark, n):
    program = compiled(workload(n), inner_entry_points=True,
                       hoist_dictionaries=False)
    assert program.run("main") is False
    benchmark(lambda: program.run("main"))
    record("E5 inner entry points", f"inner entry point, n={n}",
           calls=program.last_stats.fun_calls,
           steps=program.last_stats.steps)


def test_e5_shape():
    n = 400
    without = compiled(workload(n), inner_entry_points=False,
                       hoist_dictionaries=False)
    without.run("main")
    with_ep = compiled(workload(n), inner_entry_points=True,
                       hoist_dictionaries=False)
    with_ep.run("main")
    # Strictly fewer calls, by roughly one per recursion step.
    saved = without.last_stats.fun_calls - with_ep.last_stats.fun_calls
    assert saved >= n // 2
    record("E5 inner entry points", f"calls saved at n={n}", saved=saved)
