"""S2 — the pass manager is free.

PR 2 replaced the driver's hard-coded compile loop with the registered
pass sequence in ``repro.pipeline`` (per-pass timing, ``stop_after``
prefixes, observers).  The instrumentation must not tax compilation:
a cold ``compile_source`` through the pass manager is required to be
within **5%** of the seed driver's inline loop, reconstructed here
verbatim (the same reconstruction ``tests/test_pipeline.py`` uses for
the equivalence corpus).

Timings are best-of-N over interleaved rounds — the two flavours
alternate inside each round so cache/allocator drift hits both
equally, and the minimum filters scheduler noise.

Run under pytest (``pytest benchmarks/bench_s2_pass_overhead.py``) for
the shape assertion, or as a script to (re)write ``BENCH_s2.json`` at
the repository root::

    PYTHONPATH=src:. python benchmarks/bench_s2_pass_overhead.py
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict

from benchmarks.conftest import record
from repro import CompilerOptions, compile_source
from repro.core.classes import ClassEnv
from repro.core.dictionary import generate_selectors
from repro.core.infer import Inferencer, InferResult, SchemeEntry, TypeEnv
from repro.core.static import StaticEnv, analyze_program
from repro.coreir.translate import translate_bindings
from repro.lang.desugar import desugar_program
from repro.lang.parser import parse_program
from repro.prelude import PRELUDE_SOURCE, primitive_schemes

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: interleaved measurement rounds (minima are reported)
ROUNDS = int(os.environ.get("BENCH_S2_ROUNDS", "7"))
REQUIRED_MAX_OVERHEAD = 0.05  # fraction: pipeline may cost <= 5% extra

SOURCE = """
data Color = Red | Green | Blue deriving (Eq, Ord, Text)

double :: Num a => a -> a
double x = x + x

main = (member Green [Blue, Red], double 21, show (sort [Blue, Red]))
"""


def seed_compile(source: str, options: CompilerOptions):
    """The pre-pipeline ``compile_source`` body: the hard-coded
    parse/desugar/static/infer loop, one-shot translation, selector
    generation and the ``_optimize`` if-chain."""
    from repro.driver import CompiledProgram

    class_env = ClassEnv(layout=options.dict_layout,
                         single_slot_opt=options.single_slot_opt)
    static_env = StaticEnv(class_env)
    global_env = TypeEnv()
    for name, scheme in primitive_schemes().items():
        global_env.bind(name, SchemeEntry(scheme))
    inferencer = Inferencer(static_env, options, global_env)
    compiled = []
    for text, fname in [(PRELUDE_SOURCE, "<prelude>"), (source, "<input>")]:
        program = parse_program(text, fname)
        program = desugar_program(program, options.overload_literals)
        analyze_program(program, env=static_env)
        inferencer.install_methods()
        result = inferencer.infer_program(program)
        compiled = result.bindings
    con_arity = {name: info.arity
                 for name, info in static_env.data_cons.items()}
    core = translate_bindings(compiled, con_arity)
    core.bindings.extend(generate_selectors(class_env))
    if options.hoist_dictionaries:
        from repro.transform.float_dicts import hoist_dictionaries
        core = hoist_dictionaries(core)
    if options.inner_entry_points:
        from repro.transform.entrypoints import add_inner_entry_points
        core = add_inner_entry_points(core)
    if options.constant_dict_reduction:
        from repro.transform.constdict import reduce_constant_dictionaries
        core = reduce_constant_dictionaries(core)
    if options.specialize:
        from repro.transform.specialize import specialize_program
        core = specialize_program(core)
    final = InferResult(compiled, inferencer.schemes, inferencer.warnings,
                        inferencer.env, inferencer.unifier)
    return CompiledProgram(core, final, static_env, options, inferencer)


def measure_overhead(rounds: int = ROUNDS) -> Dict[str, float]:
    options = CompilerOptions()
    # One throwaway compile per flavour so import costs and warmed
    # caches are off the books for both.
    seed_compile(SOURCE, options)
    compile_source(SOURCE, options)

    seed_best = pipeline_best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        seed_compile(SOURCE, options)
        seed_best = min(seed_best, time.perf_counter() - t0)

        t0 = time.perf_counter()
        compile_source(SOURCE, options)
        pipeline_best = min(pipeline_best, time.perf_counter() - t0)

    overhead = pipeline_best / seed_best - 1.0
    return {
        "rounds": rounds,
        "seed_compile_s": round(seed_best, 6),
        "pipeline_compile_s": round(pipeline_best, 6),
        "overhead_fraction": round(overhead, 4),
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_pass_manager_overhead_under_5_percent():
    metrics = measure_overhead()
    record("S2 pass-manager overhead", "cold compile, seed vs pipeline",
           **metrics)
    assert metrics["overhead_fraction"] < REQUIRED_MAX_OVERHEAD, metrics


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s2.json
# ---------------------------------------------------------------------------

def main() -> int:
    metrics = measure_overhead()
    payload = {
        "benchmark": "s2_pass_overhead",
        "compile": metrics,
        "required_max_overhead": REQUIRED_MAX_OVERHEAD,
        "passed": metrics["overhead_fraction"] < REQUIRED_MAX_OVERHEAD,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s2.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
