"""E6 — specialisation (§9).

    "It is possible to completely eliminate dynamic method dispatch
    within an overloaded function at specific overloadings by creating
    type specific clones of overloaded functions."

Workload: an overloaded sorting pipeline used at Int.  The series:
dictionary selections and constructions, generic vs specialised — the
specialised clone must hit zero dynamic dispatch on its hot path.
"""


from benchmarks.conftest import compiled, record

SRC = """
isort :: Ord a => [a] -> [a]
isort [] = []
isort (x:xs) = ins x (isort xs)
  where ins y [] = [y]
        ins y (z:zs) = if y <= z then y : z : zs else z : ins y zs

histogram :: Eq a => [a] -> [(a, Int)]
histogram [] = []
histogram (x:xs) =
  let same = length (filter (\\y -> y == x) xs)
      rest = histogram (filter (\\y -> not (y == x)) xs)
  in (x, 1 + same) : rest

shuffle :: Int -> [Int]
shuffle n = map (\\i -> mod (i * 37) 101) (enumFromTo 1 n)

main = (length (isort (shuffle 60)), length (histogram (shuffle 60)))
"""


def test_e6_generic(benchmark):
    program = compiled(SRC, specialize=False)
    program.run("main")  # warm-up; timings come from the benchmark loop
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E6 specialisation", "generic (dictionaries)",
           selections=s.dict_selections, dicts=s.dict_constructions,
           steps=s.steps)


def test_e6_specialized(benchmark):
    program = compiled(SRC, specialize=True)
    program.run("main")  # warm-up; timings come from the benchmark loop
    benchmark(lambda: program.run("main"))
    s = program.last_stats
    record("E6 specialisation", "specialised clones (§9)",
           selections=s.dict_selections, dicts=s.dict_constructions,
           steps=s.steps)


def test_e6_shape():
    generic = compiled(SRC, specialize=False,
                       hoist_dictionaries=False, inner_entry_points=False)
    r1 = generic.run("main")
    special = compiled(SRC, specialize=True,
                       hoist_dictionaries=False, inner_entry_points=False)
    r2 = special.run("main")
    assert r1 == r2
    g, s = generic.last_stats, special.last_stats
    # dispatch is eliminated on the specialised path
    assert s.dict_selections < g.dict_selections
    assert s.dict_selections <= 2
    # clones exist for the overloaded entry points
    assert any("isort@" in n for n in special.core.names())
    assert any("histogram@" in n for n in special.core.names())
    record("E6 specialisation", "selections generic vs specialised",
           generic=g.dict_selections, specialised=s.dict_selections)
