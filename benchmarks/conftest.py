"""Shared infrastructure for the experiment benchmarks (E1-E9).

Each ``bench_eN_*`` module regenerates one experiment from
EXPERIMENTS.md: it builds the workload, runs it under the
configurations the paper contrasts, asserts the *shape* of the result
(who wins, what scales how) and feeds wall-clock numbers to
pytest-benchmark.

Operation counts (dictionary constructions, method selections,
function calls) are printed at the end of the session so the tables in
EXPERIMENTS.md can be regenerated with
``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro import CompilerOptions, compile_source

#: collected (experiment, row-label, metrics) tuples, printed at exit
RESULTS: List[Tuple[str, str, Dict[str, float]]] = []


def record(experiment: str, label: str, **metrics: float) -> None:
    RESULTS.append((experiment, label, metrics))


def compiled(source: str, **options):
    opts = CompilerOptions(**options) if options else None
    return compile_source(source, opts)


@pytest.fixture(scope="session", autouse=True)
def report_series(request):
    yield
    if not RESULTS:
        return
    capmanager = request.config.pluginmanager.getplugin("capturemanager")
    with capmanager.global_and_fixture_disabled():
        print("\n")
        print("=" * 72)
        print("experiment series (paste-ready for EXPERIMENTS.md)")
        print("=" * 72)
        current = None
        for experiment, label, metrics in RESULTS:
            if experiment != current:
                print(f"\n[{experiment}]")
                current = experiment
            rendered = "  ".join(f"{k}={v}" for k, v in metrics.items())
            print(f"  {label:<42} {rendered}")
        print()
