"""S4 — the core lint is cheap enough to leave on.

The lint runs as a pass-manager *verifier*: after every pass from
translation on it re-walks the whole core program checking scoping,
arities, dictionary shapes and the typed annotations.  That is several
extra whole-program walks per compile, so the budget is looser than
S2's instrumentation bound but still tight: a cold ``compile_source``
with ``options.lint`` set must stay within **10%** of the same compile
with the lint off.

Timings are best-of-N over interleaved rounds.  Within a round the two
flavours run back to back, and the round *order* alternates — whichever
compile runs second in a round measures consistently faster (warmed
allocator/GC state), so each flavour takes the favourable slot equally
often and the minima compare like with like.

Run under pytest (``pytest benchmarks/bench_s4_lint_overhead.py``) for
the shape assertion, or as a script to (re)write ``BENCH_s4.json`` at
the repository root::

    PYTHONPATH=src:. python benchmarks/bench_s4_lint_overhead.py
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Dict

from benchmarks.conftest import record
from repro import CompilerOptions, compile_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: interleaved measurement rounds (minima are reported); even so both
#: flavours occupy each within-round position equally often
ROUNDS = int(os.environ.get("BENCH_S4_ROUNDS", "8"))
REQUIRED_MAX_OVERHEAD = 0.10  # fraction: lint may cost <= 10% extra

#: A class-heavy workload so the lint has dictionaries, selectors and
#: annotated bindings to chew on — the worst case for its cost, not
#: the best.
SOURCE = """
data Color = Red | Green | Blue deriving (Eq, Ord, Text)

double :: Num a => a -> a
double x = x + x

dist :: Num a => (a, a) -> (a, a) -> a
dist (x1, y1) (x2, y2) = double (x2 - x1) + double (y2 - y1)

search :: Ord a => a -> [a] -> Bool
search x [] = False
search x (y:ys) = if x == y then True
                  else if x < y then False else search x ys

main = (member Green [Blue, Red], double 21, show (sort [Blue, Red]),
        dist (1, 2) (3, 4), search 3 [1, 2, 3, 4])
"""


def measure_overhead(rounds: int = ROUNDS) -> Dict[str, float]:
    plain = CompilerOptions(constant_dict_reduction=True, specialize=True)
    plain.lint = False
    linted = CompilerOptions(constant_dict_reduction=True, specialize=True)
    linted.lint = True

    # One throwaway compile per flavour so import costs and warmed
    # caches are off the books for both.
    compile_source(SOURCE, plain)
    compile_source(SOURCE, linted)

    plain_best = linted_best = float("inf")
    lint_seconds = 0.0

    def time_plain() -> None:
        nonlocal plain_best
        gc.collect()  # pay outstanding GC debt outside the timed region
        t0 = time.perf_counter()
        compile_source(SOURCE, plain)
        plain_best = min(plain_best, time.perf_counter() - t0)

    def time_linted() -> None:
        nonlocal linted_best, lint_seconds
        gc.collect()
        t0 = time.perf_counter()
        program = compile_source(SOURCE, linted)
        elapsed = time.perf_counter() - t0
        if elapsed < linted_best:
            linted_best = elapsed
            lint_seconds = program.compile_stats.phases.seconds("lint")

    for i in range(rounds):
        if i % 2 == 0:
            time_plain()
            time_linted()
        else:
            time_linted()
            time_plain()

    overhead = linted_best / plain_best - 1.0
    return {
        "rounds": rounds,
        "plain_compile_s": round(plain_best, 6),
        "linted_compile_s": round(linted_best, 6),
        "lint_pass_s": round(lint_seconds, 6),
        "overhead_fraction": round(overhead, 4),
    }


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_lint_overhead_under_10_percent():
    metrics = measure_overhead()
    record("S4 core-lint overhead", "cold compile, lint off vs on",
           **metrics)
    assert metrics["overhead_fraction"] < REQUIRED_MAX_OVERHEAD, metrics


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s4.json
# ---------------------------------------------------------------------------

def main() -> int:
    metrics = measure_overhead()
    payload = {
        "benchmark": "s4_lint_overhead",
        "compile": metrics,
        "required_max_overhead": REQUIRED_MAX_OVERHEAD,
        "passed": metrics["overhead_fraction"] < REQUIRED_MAX_OVERHEAD,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s4.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
