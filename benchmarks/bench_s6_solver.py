"""S6 — reduce vs CHR constraint solving (docs/SOLVER.md).

PR 9 put the paper's §5 context reduction and a CHR engine behind one
``ConstraintSolver`` seam.  This benchmark drives both backends over
the EXPERIMENTS.md **E7 deep-superclass workload** — a chain
``C1 <= C2 <= ... <= Cd`` whose bottom method is called through a
``Cd``-constrained function — swept over the depth d, and certifies:

* **agreement** — both solvers produce the same value and the same
  inferred schemes at every depth (the differential guarantee, on the
  workload whose superclass towers stress the propagation rules);
* **derivation parity** — the CHR engine fires rules in the reduce
  path's order, so ``context_reductions`` coincide exactly;
* **depth-independent goal-store work** — the user program's rule
  firings do not grow with chain depth at all: superclass towers are
  absorbed by constraint compaction over the memoized ancestor sets
  (the propagation rules' compiled closure), never expanded into
  stored goals.  A regression that starts pushing one goal per
  superclass edge shows up here immediately.

Wall-clock numbers (and the chr/reduce time ratio per depth) are
*recorded*, not asserted — on this interpreter both backends are a
small slice of total compile time, so the deterministic counters are
the stable currency.

Run under pytest for the shape assertions, or as a script to
(re)write ``BENCH_s6.json`` at the repository root::

    PYTHONPATH=src:. python benchmarks/bench_s6_solver.py
    PYTHONPATH=src:. python benchmarks/bench_s6_solver.py --smoke
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List

from benchmarks.bench_e7_flatten import chain_program
from benchmarks.conftest import record
from repro import CompilerOptions, compile_source
from repro.service.snapshot import PreludeSnapshot

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ROUNDS = int(os.environ.get("BENCH_S6_ROUNDS", "8"))

#: superclass-chain depths (the E7 sweep, extended downward into the
#: territory where the memoized ancestor sets start to matter)
DEPTHS = [2, 6, 12, 20]
N = 150

SOLVERS = ("reduce", "chr")

#: the user program's firings may drift by at most this many goals
#: between the shallowest and deepest chain (today the count is
#: *identical* at every depth; the allowance keeps the check from
#: pinning an exact constant)
MAX_FIRING_DRIFT = 4


def measure_depth(depth: int, rounds: int,
                  snapshots: Dict[str, PreludeSnapshot]) -> Dict[str, object]:
    import hashlib

    source = chain_program(depth, N)
    out: Dict[str, object] = {"depth": depth}
    for solver in SOLVERS:
        options = CompilerOptions(solver=solver)
        snapshot = snapshots[solver]
        program = compile_source(source, options=options, snapshot=snapshot)
        t0 = time.perf_counter()
        for _ in range(rounds):
            compile_source(source, options=options, snapshot=snapshot)
        compile_s = (time.perf_counter() - t0) / rounds
        phases = program.compile_stats.phases
        schemes = "\n".join(f"{name} :: {s}" for name, s
                            in sorted(program.schemes.items()))
        entry: Dict[str, object] = {
            "compile_s": round(compile_s, 6),
            "value": program.run("main"),
            #: the full scheme table, digested (the agreement check
            #: compares digests; the JSON stays readable)
            "schemes_sha": hashlib.sha256(
                schemes.encode("utf-8")).hexdigest(),
            "deep_scheme": str(program.schemes["deep"]),
            "context_reductions": phases.context_reductions,
        }
        if solver == "chr":
            counters = phases.counters("infer")
            entry["firings"] = counters.get("solver.firings", 0)
            entry["simplifications"] = counters.get(
                "solver.simplifications", 0)
            entry["store_peak"] = counters.get("solver.store-peak", 0)
        out[solver] = entry
    out["chr_over_reduce"] = round(
        out["chr"]["compile_s"] / max(out["reduce"]["compile_s"], 1e-9), 3)
    return out


def measure(rounds: int = ROUNDS) -> Dict[str, object]:
    snapshots = {solver: PreludeSnapshot.build(CompilerOptions(solver=solver))
                 for solver in SOLVERS}
    per_depth = [measure_depth(depth, rounds, snapshots)
                 for depth in DEPTHS]
    return {
        "rounds": rounds,
        "workload": f"E7 superclass chain, n={N}, depths={DEPTHS}",
        #: the chr engine's firings over the empty program — the
        #: prelude's share, subtracted when checking growth in depth
        "prelude_firings": snapshots["chr"]._solver_counts[0],
        "depths": per_depth,
    }


def check_shape(m: Dict[str, object]) -> List[str]:
    """The claims BENCH_s6.json certifies (shared by pytest and the
    script)."""
    failures: List[str] = []
    for row in m["depths"]:
        depth = row["depth"]
        red, chrr = row["reduce"], row["chr"]
        if red["value"] != chrr["value"]:
            failures.append(
                f"depth {depth}: solvers disagree on the value "
                f"({red['value']!r} vs {chrr['value']!r})")
        if red["schemes_sha"] != chrr["schemes_sha"]:
            failures.append(
                f"depth {depth}: solvers disagree on inferred schemes")
        if red["context_reductions"] != chrr["context_reductions"]:
            failures.append(
                f"depth {depth}: context_reductions diverge "
                f"({red['context_reductions']} vs "
                f"{chrr['context_reductions']}) — the engines no longer "
                f"share a derivation order")
        if chrr["firings"] <= 0 or chrr["store_peak"] < 1:
            failures.append(f"depth {depth}: chr counters did not move")
    # Depth-independence: per-program firings (prelude share
    # subtracted) must not grow with the chain — superclass towers are
    # handled by compaction over the memoized ancestor sets, never by
    # pushing one goal per superclass edge.
    base = m["prelude_firings"]
    own = [row["chr"]["firings"] - base for row in m["depths"]]
    if own[0] <= 0:
        failures.append(f"chr firings never moved past the prelude: {own}")
    elif max(own) - min(own) > MAX_FIRING_DRIFT:
        failures.append(
            f"chr goal-store work grows with superclass depth: "
            f"per-program firings {own} across depths "
            f"{[r['depth'] for r in m['depths']]} — superclass edges "
            f"are leaking into the goal store")
    return failures


# ---------------------------------------------------------------------------
# pytest entry point
# ---------------------------------------------------------------------------

def test_solver_backends_agree_on_deep_superclass_chains():
    metrics = measure(rounds=max(2, ROUNDS // 4))
    for row in metrics["depths"]:
        record("S6 constraint solvers", f"depth={row['depth']}",
               reduce_s=row["reduce"]["compile_s"],
               chr_s=row["chr"]["compile_s"],
               ratio=row["chr_over_reduce"],
               firings=row["chr"]["firings"],
               store_peak=row["chr"]["store_peak"])
    failures = check_shape(metrics)
    assert not failures, (failures, metrics)


# ---------------------------------------------------------------------------
# script entry point: write BENCH_s6.json
# ---------------------------------------------------------------------------

def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    metrics = measure(rounds=2 if smoke else ROUNDS)
    failures = check_shape(metrics)
    payload = {
        "benchmark": "s6_solver",
        "smoke": smoke,
        "metrics": metrics,
        "failures": failures,
        "passed": not failures,
    }
    out = os.path.join(REPO_ROOT, "BENCH_s6.json")
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
