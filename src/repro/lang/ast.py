"""Abstract syntax for Mini-Haskell.

Two layers share these node classes:

* the **surface** syntax produced by the parser — multi-equation function
  bindings, guards, ``where`` clauses, ``if``, list literals, operator
  sections;
* the **kernel** syntax consumed by the type checker, produced by
  :mod:`repro.lang.desugar` — every binding is ``name = expr``, guards
  and ``if`` have become ``case`` on ``Bool``, list literals have become
  cons chains, and sections have become lambdas.

The type checker also *rewrites* kernel expressions in place during
dictionary conversion (section 6), so expression nodes are mutable
dataclasses rather than frozen values; :class:`PlaceholderExpr` is the
node the checker inserts and later resolves.

Type expressions here are *syntax only* (``SType`` family); the semantic
types live in :mod:`repro.core.types`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SourcePos


# --------------------------------------------------------------------------
# Type syntax
# --------------------------------------------------------------------------

class SType:
    """Base class for type syntax trees."""

    pos: Optional[SourcePos] = None


@dataclass
class STyVar(SType):
    name: str
    pos: Optional[SourcePos] = None


@dataclass
class STyCon(SType):
    """A named type constructor: ``Int``, ``Bool``, ``[]``, ``(,)``, ``->``."""

    name: str
    pos: Optional[SourcePos] = None


@dataclass
class STyApp(SType):
    fn: SType
    arg: SType
    pos: Optional[SourcePos] = None


def sty_fun(arg: SType, res: SType) -> SType:
    """Build the syntax for ``arg -> res``."""
    pos = arg.pos
    return STyApp(STyApp(STyCon("->", pos=pos), arg, pos=pos), res, pos=pos)


def sty_list(elem: SType) -> SType:
    return STyApp(STyCon("[]", pos=elem.pos), elem, pos=elem.pos)


def sty_tuple(elems: List[SType]) -> SType:
    t: SType = STyCon(tuple_con_name(len(elems)))
    for e in elems:
        t = STyApp(t, e)
    return t


def tuple_con_name(arity: int) -> str:
    """The constructor name for an *arity*-tuple: ``(,)``, ``(,,)``, ..."""
    return "(" + "," * (arity - 1) + ")"


@dataclass
class SPred:
    """A class constraint ``C t`` (or multi-parameter ``C t1 ... tn``)
    in source syntax.  ``types`` lists all the constrained types when
    there is more than one (``type`` stays the first); it is ``None``
    for the ordinary single-parameter form."""

    class_name: str
    type: SType
    pos: Optional[SourcePos] = None
    types: Optional[List[SType]] = None

    @property
    def all_types(self) -> List[SType]:
        return self.types if self.types is not None else [self.type]


@dataclass
class SQualType:
    """A qualified type ``context => type``; the context may be empty."""

    context: List[SPred]
    type: SType
    pos: Optional[SourcePos] = None


# --------------------------------------------------------------------------
# Patterns
# --------------------------------------------------------------------------

class Pat:
    """Base class for patterns."""

    pos: Optional[SourcePos] = None


@dataclass
class PVar(Pat):
    name: str
    pos: Optional[SourcePos] = None


@dataclass
class PWild(Pat):
    pos: Optional[SourcePos] = None


@dataclass
class PLit(Pat):
    """Literal pattern.  ``kind`` is one of ``int float char string``."""

    value: Any
    kind: str
    pos: Optional[SourcePos] = None


@dataclass
class PCon(Pat):
    """Constructor pattern, e.g. ``(x:xs)`` is ``PCon(":", [x, xs])``."""

    name: str
    args: List[Pat]
    pos: Optional[SourcePos] = None


@dataclass
class PTuple(Pat):
    items: List[Pat]
    pos: Optional[SourcePos] = None


@dataclass
class PAs(Pat):
    """As-pattern ``v@p``."""

    name: str
    pat: Pat
    pos: Optional[SourcePos] = None


def pat_vars(pat: Pat) -> List[str]:
    """The variables bound by *pat*, in left-to-right order."""
    out: List[str] = []

    def go(p: Pat) -> None:
        if isinstance(p, PVar):
            out.append(p.name)
        elif isinstance(p, PCon):
            for a in p.args:
                go(a)
        elif isinstance(p, PTuple):
            for a in p.items:
                go(a)
        elif isinstance(p, PAs):
            out.append(p.name)
            go(p.pat)

    go(pat)
    return out


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for expressions (surface and kernel)."""

    pos: Optional[SourcePos] = None


@dataclass
class Var(Expr):
    name: str
    pos: Optional[SourcePos] = None


@dataclass
class Con(Expr):
    """A data constructor used as an expression."""

    name: str
    pos: Optional[SourcePos] = None


@dataclass
class Lit(Expr):
    """Literal.  ``kind`` is one of ``int float char string``.

    Integer literals are *overloaded*: the desugarer wraps them in
    ``fromInteger`` so that ``double = \\x -> x + x`` works at every
    ``Num`` type, which exercises placeholder ambiguity and defaulting
    (section 6.3, case 4).
    """

    value: Any
    kind: str
    pos: Optional[SourcePos] = None


@dataclass
class App(Expr):
    fn: Expr
    arg: Expr
    pos: Optional[SourcePos] = None


@dataclass
class Lam(Expr):
    """Lambda with pattern parameters.  The desugarer reduces parameter
    patterns to variables (introducing a case) so the kernel only ever
    sees ``PVar`` parameters."""

    params: List[Pat]
    body: Expr
    pos: Optional[SourcePos] = None


@dataclass
class Let(Expr):
    """``let decls in body``.  In the kernel the decls are Binding/TypeSig
    only; dependency analysis inside the checker splits them into
    minimal recursive groups (section 8.3)."""

    decls: List["Decl"]
    body: Expr
    pos: Optional[SourcePos] = None


@dataclass
class GuardedRhs:
    """One ``| guard = body`` alternative of an equation or case alt."""

    guard: Optional[Expr]  # None = unconditional
    body: Expr
    pos: Optional[SourcePos] = None


@dataclass
class CaseAlt:
    pat: Pat
    rhss: List[GuardedRhs]
    where_decls: List["Decl"] = field(default_factory=list)
    pos: Optional[SourcePos] = None


@dataclass
class Case(Expr):
    scrutinee: Expr
    alts: List[CaseAlt]
    pos: Optional[SourcePos] = None


@dataclass
class If(Expr):
    cond: Expr
    then_branch: Expr
    else_branch: Expr
    pos: Optional[SourcePos] = None


@dataclass
class TupleExpr(Expr):
    items: List[Expr]
    pos: Optional[SourcePos] = None


@dataclass
class ListExpr(Expr):
    items: List[Expr]
    pos: Optional[SourcePos] = None


@dataclass
class Annot(Expr):
    """Expression type annotation ``e :: qualtype`` (section 8.6)."""

    expr: Expr
    signature: SQualType
    pos: Optional[SourcePos] = None


@dataclass
class PlaceholderExpr(Expr):
    """The ``<object, type>`` node of section 6.1.

    Inserted by the type checker in place of overloaded variables,
    methods and recursive references; replaced during placeholder
    resolution at generalization.  ``payload`` is the live
    :class:`repro.core.placeholders.Placeholder` record; after
    resolution, ``resolved`` holds the replacement expression and the
    translator reads through it.
    """

    payload: Any
    resolved: Optional[Expr] = None
    pos: Optional[SourcePos] = None


# --------------------------------------------------------------------------
# Declarations
# --------------------------------------------------------------------------

class Decl:
    """Base class for declarations (top level and local)."""

    pos: Optional[SourcePos] = None


@dataclass
class Equation:
    """One defining equation ``f p1 ... pn | g = e where ...``."""

    pats: List[Pat]
    rhss: List[GuardedRhs]
    where_decls: List[Decl] = field(default_factory=list)
    pos: Optional[SourcePos] = None


@dataclass
class FunBind(Decl):
    """A function (or pattern-free variable) binding: one or more
    equations for a single name.  After desugaring there is exactly one
    equation with zero patterns and a single unconditional RHS."""

    name: str
    equations: List[Equation]
    pos: Optional[SourcePos] = None
    #: arity of the original surface equations; 0 means the user wrote a
    #: pattern binding ``v = e``, which is what the monomorphism
    #: restriction (section 8.7) keys off.
    original_arity: int = 0

    @property
    def is_simple(self) -> bool:
        """True for a kernel binding ``name = expr``."""
        return (
            len(self.equations) == 1
            and not self.equations[0].pats
            and len(self.equations[0].rhss) == 1
            and self.equations[0].rhss[0].guard is None
            and not self.equations[0].where_decls
        )

    @property
    def simple_rhs(self) -> Expr:
        assert self.is_simple, f"binding for {self.name} is not in kernel form"
        return self.equations[0].rhss[0].body

    def set_simple_rhs(self, expr: Expr) -> None:
        assert self.is_simple
        self.equations[0].rhss[0].body = expr


@dataclass
class TypeSig(Decl):
    """``names :: context => type``."""

    names: List[str]
    signature: SQualType
    pos: Optional[SourcePos] = None


@dataclass
class ConDef:
    """One constructor of a data declaration."""

    name: str
    arg_types: List[SType]
    pos: Optional[SourcePos] = None


@dataclass
class DataDecl(Decl):
    name: str
    tyvars: List[str]
    constructors: List[ConDef]
    deriving: List[str] = field(default_factory=list)
    pos: Optional[SourcePos] = None


@dataclass
class TypeSynDecl(Decl):
    """``type Name a1 ... an = rhs`` — expanded during static analysis;
    type synonyms never reach the semantic type language."""

    name: str
    tyvars: List[str]
    rhs: SType
    pos: Optional[SourcePos] = None


@dataclass
class ClassDecl(Decl):
    """``class supers => C a where { sigs ; default bindings }``.

    A multi-parameter class ``class C a b where ...`` carries all its
    variables in ``tyvars`` (``tyvar`` stays the first); ``tyvars`` is
    ``None`` for the single-parameter form.
    """

    superclasses: List[str]
    name: str
    tyvar: str
    signatures: List[TypeSig]
    defaults: List[FunBind]
    pos: Optional[SourcePos] = None
    tyvars: Optional[List[str]] = None

    @property
    def all_tyvars(self) -> List[str]:
        return self.tyvars if self.tyvars is not None else [self.tyvar]


@dataclass
class InstanceDecl(Decl):
    """``instance context => C (T a1 ... an) where { bindings }``.

    A multi-parameter instance ``instance C p1 ... pn`` carries all its
    head patterns in ``heads`` (``head`` stays the first); ``heads`` is
    ``None`` for the single-parameter form.
    """

    context: List[SPred]
    class_name: str
    head: SType
    bindings: List[FunBind]
    pos: Optional[SourcePos] = None
    heads: Optional[List[SType]] = None

    @property
    def all_heads(self) -> List[SType]:
        return self.heads if self.heads is not None else [self.head]


@dataclass
class FixityDecl(Decl):
    """``infixl/infixr/infix prec op, ...``."""

    assoc: str  # 'l', 'r', or 'n'
    precedence: int
    operators: List[str]
    pos: Optional[SourcePos] = None


@dataclass
class DefaultDecl(Decl):
    """``default (T1, ..., Tn)`` — the types tried when resolving an
    ambiguous numeric context (section 6.3 case 4)."""

    types: List[SType]
    pos: Optional[SourcePos] = None


@dataclass
class ImportDecl:
    """``import M`` or ``import M (n1, ..., nk)``.

    ``names`` is ``None`` for an unrestricted import (every exported
    value binding of *M* comes into scope) or the explicit list of value
    names to bring in.  Types, constructors, classes and instances are
    always visible from the transitive import closure (instances are
    global, as in Haskell).
    """

    module: str
    names: Optional[List[str]] = None
    pos: Optional[SourcePos] = None


@dataclass
class Program:
    """A parsed module: the flat list of top-level declarations.

    ``module_name``/``exports`` come from an optional ``module M
    [(names)] where`` header and ``imports`` from leading ``import``
    declarations; all three default to "no module system in play" so
    single-file callers are unaffected.
    """

    decls: List[Decl]
    module_name: Optional[str] = None
    exports: Optional[List[str]] = None
    imports: List[ImportDecl] = field(default_factory=list)
    #: operator fixities declared by this module's own ``infix*`` decls,
    #: as ``op -> (precedence, assoc)`` — exported through interface
    #: files so importing modules parse the operators correctly
    fixities: Dict[str, Tuple[int, str]] = field(default_factory=dict)

    def bindings(self) -> List[FunBind]:
        return [d for d in self.decls if isinstance(d, FunBind)]

    def signatures(self) -> List[TypeSig]:
        return [d for d in self.decls if isinstance(d, TypeSig)]

    def data_decls(self) -> List[DataDecl]:
        return [d for d in self.decls if isinstance(d, DataDecl)]

    def class_decls(self) -> List[ClassDecl]:
        return [d for d in self.decls if isinstance(d, ClassDecl)]

    def instance_decls(self) -> List[InstanceDecl]:
        return [d for d in self.decls if isinstance(d, InstanceDecl)]


# --------------------------------------------------------------------------
# Construction helpers (used by desugarer and tests)
# --------------------------------------------------------------------------

def apply_expr(fn: Expr, *args: Expr) -> Expr:
    """Curried application ``fn a1 a2 ...``."""
    out = fn
    for a in args:
        out = App(out, a, pos=getattr(a, "pos", None))
    return out


def lam(names: List[str], body: Expr) -> Lam:
    """A lambda over simple variable parameters."""
    return Lam([PVar(n) for n in names], body)


def simple_bind(name: str, expr: Expr, pos: Optional[SourcePos] = None) -> FunBind:
    """A kernel binding ``name = expr``."""
    return FunBind(name, [Equation([], [GuardedRhs(None, expr)])], pos=pos)


def unwrap_placeholders(expr: Expr) -> Expr:
    """Follow resolved placeholder links to the final expression."""
    while isinstance(expr, PlaceholderExpr) and expr.resolved is not None:
        expr = expr.resolved
    return expr


def expr_free_vars(expr: Expr) -> List[str]:
    """Free variables of a kernel expression, in first-occurrence order.

    Used by dependency analysis to build binding groups.  Placeholders
    contribute nothing (their resolution happens after grouping).
    """
    out: List[str] = []
    seen = set()

    def add(name: str, bound: frozenset) -> None:
        if name not in bound and name not in seen:
            seen.add(name)
            out.append(name)

    def go(e: Expr, bound: frozenset) -> None:
        e = unwrap_placeholders(e)
        if isinstance(e, Var):
            add(e.name, bound)
        elif isinstance(e, App):
            go(e.fn, bound)
            go(e.arg, bound)
        elif isinstance(e, Lam):
            inner = bound
            for p in e.params:
                inner = inner | frozenset(pat_vars(p))
            go(e.body, inner)
        elif isinstance(e, Let):
            names = frozenset(
                d.name for d in e.decls if isinstance(d, FunBind))
            inner = bound | names
            for d in e.decls:
                if isinstance(d, FunBind):
                    for eq in d.equations:
                        eq_bound = inner
                        for p in eq.pats:
                            eq_bound = eq_bound | frozenset(pat_vars(p))
                        for rhs in eq.rhss:
                            if rhs.guard is not None:
                                go(rhs.guard, eq_bound)
                            go(rhs.body, eq_bound)
            go(e.body, inner)
        elif isinstance(e, Case):
            go(e.scrutinee, bound)
            for alt in e.alts:
                inner = bound | frozenset(pat_vars(alt.pat))
                for rhs in alt.rhss:
                    if rhs.guard is not None:
                        go(rhs.guard, inner)
                    go(rhs.body, inner)
        elif isinstance(e, If):
            go(e.cond, bound)
            go(e.then_branch, bound)
            go(e.else_branch, bound)
        elif isinstance(e, TupleExpr):
            for item in e.items:
                go(item, bound)
        elif isinstance(e, ListExpr):
            for item in e.items:
                go(item, bound)
        elif isinstance(e, Annot):
            go(e.expr, bound)
        # Var/Con/Lit/PlaceholderExpr(unresolved): nothing more to do

    go(expr, frozenset())
    return out
