"""Desugaring: surface syntax to kernel syntax.

The type checker (and after it, dictionary conversion) works on a small
kernel.  This pass establishes its invariants:

* every ``FunBind`` is *simple*: one equation, zero patterns, one
  unconditional right-hand side, no ``where`` — multi-equation
  definitions become a lambda over fresh variables and a single ``case``
  with one alternative per equation (guards survive on the
  alternatives; the pattern-match compiler gives them fall-through
  semantics after type checking);
* ``where`` clauses on equations become ``let``; ``where`` clauses on
  case alternatives are kept (the checker scopes them like ``let``);
* list literals become cons chains; string *patterns* become cons
  chains of character patterns;
* numeric literal patterns become fresh variables plus an ``==`` guard,
  which is what gives them their Haskell meaning (they require ``Eq``
  and ``Num`` — an overloaded comparison, not a structural match);
* integer literals in expressions are wrapped in ``fromInteger`` so
  that numerals are overloaded over ``Num`` (this is what makes the
  paper's ``double = \\x -> x + x`` work at every numeric type, and
  what exercises ambiguity/defaulting in section 6.3 case 4);
* lambda parameters are plain variables (pattern parameters go through
  a ``case``).

Class default methods and instance method bindings are desugared with
the same rules.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.lang import ast
from repro.limits import DEFAULT_TRANSFORM_DEPTH, DepthGuard
from repro.util.names import NameSupply


class Desugarer:
    def __init__(self, overload_literals: bool = True,
                 max_depth: int = DEFAULT_TRANSFORM_DEPTH) -> None:
        self.names = NameSupply()
        self.overload_literals = overload_literals
        self._depth = DepthGuard(max_depth, "max_transform_depth",
                                 "desugaring")

    # ------------------------------------------------------------- programs

    def program(self, program: ast.Program) -> ast.Program:
        out: List[ast.Decl] = []
        for decl in program.decls:
            out.append(self.top_decl(decl))
        return ast.Program(out, module_name=program.module_name,
                           exports=program.exports,
                           imports=program.imports,
                           fixities=program.fixities)

    def top_decl(self, decl: ast.Decl) -> ast.Decl:
        if isinstance(decl, ast.FunBind):
            return self.fun_bind(decl)
        if isinstance(decl, ast.ClassDecl):
            return ast.ClassDecl(
                decl.superclasses, decl.name, decl.tyvar, decl.signatures,
                [self.fun_bind(d) for d in decl.defaults], pos=decl.pos,
                tyvars=decl.tyvars)
        if isinstance(decl, ast.InstanceDecl):
            return ast.InstanceDecl(
                decl.context, decl.class_name, decl.head,
                [self.fun_bind(b) for b in decl.bindings], pos=decl.pos,
                heads=decl.heads)
        return decl

    # ------------------------------------------------------------- bindings

    def fun_bind(self, bind: ast.FunBind) -> ast.FunBind:
        arity = len(bind.equations[0].pats)
        for eq in bind.equations:
            if len(eq.pats) != arity:
                raise ParseError(
                    f"equations for '{bind.name}' differ in arity", eq.pos)
        if arity == 0:
            if len(bind.equations) != 1:
                raise ParseError(
                    f"multiple equations for pattern-free binding "
                    f"'{bind.name}'", bind.pos)
            body = self.rhs_expr(bind.equations[0])
            out = ast.simple_bind(bind.name, body, pos=bind.pos)
            out.original_arity = 0
            return out
        # f p11 .. p1n = e1 ; ...   ==>
        # f = \v1 .. vn -> case (v1, ..., vn) of (p11, ..., p1n) -> e1 ; ...
        params = [self.names.fresh("v") for _ in range(arity)]
        alts: List[ast.CaseAlt] = []
        for eq in bind.equations:
            pats = [self.pattern(p) for p in eq.pats]
            pats, extra_guards = self.lift_literal_pats(pats)
            rhss = [self.guarded(r, extra_guards) for r in eq.rhss]
            pat: ast.Pat = pats[0] if arity == 1 else ast.PTuple(pats)
            alts.append(ast.CaseAlt(
                pat, rhss,
                [self.local_decl(d) for d in eq.where_decls], pos=eq.pos))
        scrutinee: ast.Expr
        if arity == 1:
            scrutinee = ast.Var(params[0], pos=bind.pos)
        else:
            scrutinee = ast.TupleExpr(
                [ast.Var(p, pos=bind.pos) for p in params], pos=bind.pos)
        body = ast.Lam([ast.PVar(p) for p in params],
                       ast.Case(scrutinee, alts, pos=bind.pos), pos=bind.pos)
        out = ast.simple_bind(bind.name, body, pos=bind.pos)
        out.original_arity = arity
        return out

    def rhs_expr(self, eq: ast.Equation) -> ast.Expr:
        """The kernel body of a zero-pattern equation."""
        if len(eq.rhss) == 1 and eq.rhss[0].guard is None:
            body = self.expr(eq.rhss[0].body)
        else:
            # Guarded pattern-free binding: chain of conditionals ending
            # in a run-time error.
            body = self.guards_to_if(
                [self.guarded(r, []) for r in eq.rhss],
                ast.apply_expr(ast.Var("error"),
                               ast.Lit("no matching guard", "string")))
        if eq.where_decls:
            body = ast.Let([self.local_decl(d) for d in eq.where_decls],
                           body, pos=eq.pos)
        return body

    def guards_to_if(self, rhss: List[ast.GuardedRhs],
                     otherwise: ast.Expr) -> ast.Expr:
        out = otherwise
        for rhs in reversed(rhss):
            if rhs.guard is None:
                out = rhs.body
            else:
                out = ast.If(rhs.guard, rhs.body, out, pos=rhs.pos)
        return out

    def guarded(self, rhs: ast.GuardedRhs,
                extra_guards: List[ast.Expr]) -> ast.GuardedRhs:
        guard = self.expr(rhs.guard) if rhs.guard is not None else None
        for extra in reversed(extra_guards):
            guard = extra if guard is None else _and(extra, guard)
        return ast.GuardedRhs(guard, self.expr(rhs.body), pos=rhs.pos)

    def local_decl(self, decl: ast.Decl) -> ast.Decl:
        if isinstance(decl, ast.FunBind):
            return self.fun_bind(decl)
        return decl  # type signatures pass through

    # ------------------------------------------------------------- patterns

    def pattern(self, pat: ast.Pat) -> ast.Pat:
        """Normalise a pattern: strings become char-cons chains."""
        if isinstance(pat, ast.PLit) and pat.kind == "string":
            out: ast.Pat = ast.PCon("[]", [], pos=pat.pos)
            for ch in reversed(str(pat.value)):
                out = ast.PCon(":", [ast.PLit(ch, "char", pos=pat.pos), out],
                               pos=pat.pos)
            return out
        if isinstance(pat, ast.PCon):
            return ast.PCon(pat.name, [self.pattern(a) for a in pat.args],
                            pos=pat.pos)
        if isinstance(pat, ast.PTuple):
            return ast.PTuple([self.pattern(a) for a in pat.items], pos=pat.pos)
        if isinstance(pat, ast.PAs):
            return ast.PAs(pat.name, self.pattern(pat.pat), pos=pat.pos)
        return pat

    def lift_literal_pats(
            self, pats: List[ast.Pat]) -> Tuple[List[ast.Pat], List[ast.Expr]]:
        """Replace numeric literal patterns with fresh variables guarded
        by overloaded equality tests (``v == 3``)."""
        guards: List[ast.Expr] = []

        def go(p: ast.Pat) -> ast.Pat:
            if isinstance(p, ast.PLit) and p.kind in ("int", "float"):
                fresh = self.names.fresh("lit")
                guards.append(ast.apply_expr(
                    ast.Var("=="),
                    ast.Var(fresh, pos=p.pos),
                    self.literal(p.value, p.kind, p.pos)))
                return ast.PVar(fresh, pos=p.pos)
            if isinstance(p, ast.PCon):
                return ast.PCon(p.name, [go(a) for a in p.args], pos=p.pos)
            if isinstance(p, ast.PTuple):
                return ast.PTuple([go(a) for a in p.items], pos=p.pos)
            if isinstance(p, ast.PAs):
                return ast.PAs(p.name, go(p.pat), pos=p.pos)
            return p

        return [go(p) for p in pats], guards

    # ---------------------------------------------------------- expressions

    def literal(self, value: object, kind: str,
                pos: Optional[object] = None) -> ast.Expr:
        lit = ast.Lit(value, kind, pos=pos)
        if kind == "int" and self.overload_literals:
            return ast.App(ast.Var("fromInteger", pos=pos), lit, pos=pos)
        return lit

    def expr(self, expr: ast.Expr) -> ast.Expr:
        self._depth.enter(getattr(expr, "pos", None))
        try:
            return self._expr(expr)
        finally:
            self._depth.exit()

    def _expr(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Lit):
            return self.literal(expr.value, expr.kind, expr.pos)
        if isinstance(expr, (ast.Var, ast.Con)):
            return expr
        if isinstance(expr, ast.App):
            return ast.App(self.expr(expr.fn), self.expr(expr.arg), pos=expr.pos)
        if isinstance(expr, ast.Lam):
            return self.lam(expr)
        if isinstance(expr, ast.Let):
            decls = [self.local_decl(d) for d in expr.decls]
            return ast.Let(decls, self.expr(expr.body), pos=expr.pos)
        if isinstance(expr, ast.If):
            return ast.If(self.expr(expr.cond), self.expr(expr.then_branch),
                          self.expr(expr.else_branch), pos=expr.pos)
        if isinstance(expr, ast.Case):
            alts = []
            for alt in expr.alts:
                pat = self.pattern(alt.pat)
                [pat], extra = self.lift_literal_pats([pat])
                rhss = [self.guarded(r, extra) for r in alt.rhss]
                alts.append(ast.CaseAlt(
                    pat, rhss, [self.local_decl(d) for d in alt.where_decls],
                    pos=alt.pos))
            return ast.Case(self.expr(expr.scrutinee), alts, pos=expr.pos)
        if isinstance(expr, ast.TupleExpr):
            return ast.TupleExpr([self.expr(e) for e in expr.items], pos=expr.pos)
        if isinstance(expr, ast.ListExpr):
            out: ast.Expr = ast.Con("[]", pos=expr.pos)
            for item in reversed(expr.items):
                out = ast.apply_expr(ast.Con(":", pos=expr.pos),
                                     self.expr(item), out)
            return out
        if isinstance(expr, ast.Annot):
            return ast.Annot(self.expr(expr.expr), expr.signature, pos=expr.pos)
        raise ParseError(f"cannot desugar expression {expr!r}",
                         getattr(expr, "pos", None))

    def lam(self, expr: ast.Lam) -> ast.Expr:
        body = self.expr(expr.body)
        if all(isinstance(p, ast.PVar) for p in expr.params):
            return ast.Lam(expr.params, body, pos=expr.pos)
        # \p1 p2 -> e   ==>   \v1 v2 -> case (v1, v2) of (p1, p2) -> e
        params: List[ast.Pat] = []
        pats = [self.pattern(p) for p in expr.params]
        pats, extra = self.lift_literal_pats(pats)
        fresh = [self.names.fresh("v") for _ in pats]
        params = [ast.PVar(v) for v in fresh]
        if len(pats) == 1:
            scrutinee: ast.Expr = ast.Var(fresh[0], pos=expr.pos)
            pat: ast.Pat = pats[0]
        else:
            scrutinee = ast.TupleExpr([ast.Var(v) for v in fresh], pos=expr.pos)
            pat = ast.PTuple(pats)
        rhss = [ast.GuardedRhs(None, body, pos=expr.pos)]
        if extra:
            rhss = [self.guarded(rhss[0], extra)]
        return ast.Lam(params, ast.Case(scrutinee, [ast.CaseAlt(pat, rhss)],
                                        pos=expr.pos), pos=expr.pos)


def _and(a: ast.Expr, b: ast.Expr) -> ast.Expr:
    return ast.apply_expr(ast.Var("&&"), a, b)


def desugar_program(program: ast.Program,
                    overload_literals: bool = True) -> ast.Program:
    """Desugar a parsed module into kernel form."""
    return Desugarer(overload_literals).program(program)


def desugar_expr(expr: ast.Expr, overload_literals: bool = True) -> ast.Expr:
    """Desugar a single expression into kernel form."""
    return Desugarer(overload_literals).expr(expr)
