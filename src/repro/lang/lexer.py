"""The Mini-Haskell lexer, including the layout (offside) algorithm.

Lexing happens in two passes:

1. :func:`scan` turns source text into a list of raw tokens, skipping
   whitespace and both comment forms (``-- line`` and nested
   ``{- block -}``).
2. :func:`apply_layout` implements the layout rule: after ``let``,
   ``where`` and ``of`` (when not followed by an explicit ``{``) an
   implicit block opens at the column of the next token; subsequent
   lines at that column receive an implicit ``;`` and lines to the left
   close the block with an implicit ``}``.  The classic "parse-error"
   clause of the Haskell report is approximated by closing implicit
   blocks before ``in`` and before unbalanced closing brackets, which
   covers all idiomatic programs in this subset.

:func:`lex` composes the two.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import LexError, SourcePos
from repro.lang.tokens import (
    KEYWORDS,
    LAYOUT_KEYWORDS,
    RESERVED_OPS,
    SYMBOL_CHARS,
    Token,
    TokenType,
)

_SPECIALS = "()[]{},;`_"

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "0": "\0",
}


class _Scanner:
    """Character-level scanner state."""

    def __init__(self, text: str, filename: str) -> None:
        self.text = text
        self.filename = filename
        self.offset = 0
        self.line = 1
        self.column = 1

    def pos(self) -> SourcePos:
        return SourcePos(self.line, self.column, self.filename)

    def peek(self, ahead: int = 0) -> Optional[str]:
        idx = self.offset + ahead
        if idx < len(self.text):
            return self.text[idx]
        return None

    def advance(self) -> str:
        ch = self.text[self.offset]
        self.offset += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def done(self) -> bool:
        return self.offset >= len(self.text)


def scan(text: str, filename: str = "<input>") -> List[Token]:
    """Scan *text* into raw tokens (no layout processing, no EOF token)."""
    s = _Scanner(text, filename)
    tokens: List[Token] = []
    while not s.done():
        ch = s.peek()
        assert ch is not None
        if ch in " \t\r\n":
            s.advance()
            continue
        if ch == "-" and s.peek(1) == "-" and not _is_operator_start(s.peek(2)):
            while not s.done() and s.peek() != "\n":
                s.advance()
            continue
        if ch == "{" and s.peek(1) == "-":
            _skip_block_comment(s)
            continue
        start = s.pos()
        if ch.isdigit():
            tokens.append(_scan_number(s, start))
        elif ch.islower() or ch == "_":
            tokens.append(_scan_name(s, start))
        elif ch.isupper():
            tokens.append(_scan_conid(s, start))
        elif ch == "'":
            tokens.append(_scan_char(s, start))
        elif ch == '"':
            tokens.append(_scan_string(s, start))
        elif ch in _SPECIALS:
            s.advance()
            tokens.append(Token(TokenType.SPECIAL, ch, start))
        elif ch in SYMBOL_CHARS:
            tokens.append(_scan_symbol(s, start))
        else:
            raise LexError(f"unexpected character {ch!r}", start)
    return tokens


def _is_operator_start(ch: Optional[str]) -> bool:
    """True when `--xyz` is really an operator like `-->` rather than a
    line comment."""
    return ch is not None and ch in SYMBOL_CHARS and ch != "-"


def _skip_block_comment(s: _Scanner) -> None:
    start = s.pos()
    s.advance()  # {
    s.advance()  # -
    depth = 1
    while depth > 0:
        if s.done():
            raise LexError("unterminated block comment", start)
        if s.peek() == "{" and s.peek(1) == "-":
            s.advance()
            s.advance()
            depth += 1
        elif s.peek() == "-" and s.peek(1) == "}":
            s.advance()
            s.advance()
            depth -= 1
        else:
            s.advance()


def _scan_number(s: _Scanner, start: SourcePos) -> Token:
    digits = []
    while not s.done() and s.peek().isdigit():
        digits.append(s.advance())
    # A float needs a digit after the dot: "1.5" yes, "1." no (that is
    # `1 .` — composition after a literal).
    nxt = s.peek()
    if nxt == "." and s.peek(1) is not None and s.peek(1).isdigit():
        digits.append(s.advance())
        while not s.done() and s.peek().isdigit():
            digits.append(s.advance())
        if s.peek() in ("e", "E"):
            exp = [s.advance()]
            if s.peek() in ("+", "-"):
                exp.append(s.advance())
            if s.peek() is not None and s.peek().isdigit():
                while not s.done() and s.peek().isdigit():
                    exp.append(s.advance())
                digits.extend(exp)
            else:  # not an exponent after all; cannot rewind cheaply
                raise LexError("malformed exponent in float literal",
                               SourcePos(s.line, s.column, s.filename))
        return Token(TokenType.FLOAT, "".join(digits), start)
    return Token(TokenType.INT, "".join(digits), start)


def _scan_name(s: _Scanner, start: SourcePos) -> Token:
    chars = []
    while not s.done() and (s.peek().isalnum() or s.peek() in "_'"):
        chars.append(s.advance())
    word = "".join(chars)
    if word == "_":
        return Token(TokenType.SPECIAL, "_", start)
    if word in KEYWORDS:
        return Token(TokenType.KEYWORD, word, start)
    return Token(TokenType.VARID, word, start)


def _scan_conid(s: _Scanner, start: SourcePos) -> Token:
    chars = []
    while not s.done() and (s.peek().isalnum() or s.peek() in "_'"):
        chars.append(s.advance())
    return Token(TokenType.CONID, "".join(chars), start)


def _scan_symbol(s: _Scanner, start: SourcePos) -> Token:
    chars = []
    while not s.done() and s.peek() in SYMBOL_CHARS:
        chars.append(s.advance())
    op = "".join(chars)
    if op in RESERVED_OPS:
        return Token(TokenType.RESERVED_OP, op, start)
    return Token(TokenType.VARSYM, op, start)


def _scan_char(s: _Scanner, start: SourcePos) -> Token:
    s.advance()  # opening quote
    if s.done():
        raise LexError("unterminated character literal", start)
    ch = s.advance()
    if ch == "\\":
        if s.done():
            raise LexError("unterminated escape in character literal", start)
        esc = s.advance()
        if esc not in _ESCAPES:
            raise LexError(f"unknown escape '\\{esc}'", start)
        ch = _ESCAPES[esc]
    if s.done() or s.peek() != "'":
        raise LexError("unterminated character literal", start)
    s.advance()
    return Token(TokenType.CHAR, ch, start)


def _scan_string(s: _Scanner, start: SourcePos) -> Token:
    s.advance()  # opening quote
    chars = []
    while True:
        if s.done():
            raise LexError("unterminated string literal", start)
        ch = s.advance()
        if ch == '"':
            break
        if ch == "\n":
            raise LexError("newline in string literal", start)
        if ch == "\\":
            if s.done():
                raise LexError("unterminated escape in string literal", start)
            esc = s.advance()
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape '\\{esc}'", start)
            ch = _ESCAPES[esc]
        chars.append(ch)
    return Token(TokenType.STRING, "".join(chars), start)


# --------------------------------------------------------------------------
# Layout
# --------------------------------------------------------------------------

_EXPLICIT = -1  # column marker for an explicit '{' context on the layout stack


class _Ctx:
    """One entry of the layout stack.

    ``column`` is the indentation of the implicit block (or ``_EXPLICIT``
    for user-written braces); ``depth`` records the bracket nesting depth
    at which the block was opened, so that an unbalanced ``)`` or ``]``
    can close every implicit block opened inside the brackets — the
    specialisation of the report's parse-error rule that covers
    expressions like ``f (case x of True -> 1)``.  ``is_let`` marks
    blocks opened by the ``let`` keyword: those must eventually be
    matched by ``in``, and the bookkeeping around them approximates the
    report's parse-error rule for ``let ... in``.
    """

    __slots__ = ("column", "depth", "is_let")

    def __init__(self, column: int, depth: int, is_let: bool) -> None:
        self.column = column
        self.depth = depth
        self.is_let = is_let


def apply_layout(tokens: List[Token], filename: str = "<input>") -> List[Token]:
    """Insert implicit braces and semicolons per the offside rule."""
    out: List[Token] = []
    stack: List[_Ctx] = []
    i = 0
    n = len(tokens)
    depth = 0  # current ( [ nesting depth
    # Module start opens an implicit block — unless the file begins with
    # a ``module M where`` header, whose ``where`` (a layout keyword)
    # opens the top-level block itself (the report's special case for
    # the module header).
    expecting_block = bool(tokens) and not tokens[0].is_keyword("module")
    block_is_let = False
    # Number of let-blocks already closed (by the offside rule, an
    # explicit '}', or a bracket) whose 'in' has not arrived yet.  When
    # 'in' arrives and this is positive, the block is already closed and
    # no extra '}' must be emitted.
    lets_awaiting_in = 0
    last_line = 0

    def vtok(value: str, pos: SourcePos) -> Token:
        return Token(TokenType.SPECIAL, value, pos, virtual=True)

    def top_implicit() -> bool:
        return bool(stack) and stack[-1].column != _EXPLICIT

    def pop_ctx() -> None:
        nonlocal lets_awaiting_in
        ctx = stack.pop()
        if ctx.is_let:
            lets_awaiting_in += 1

    while i < n:
        tok = tokens[i]
        if expecting_block:
            expecting_block = False
            is_let = block_is_let
            block_is_let = False
            if tok.is_special("{"):
                stack.append(_Ctx(_EXPLICIT, depth, is_let))
                out.append(tok)
                last_line = tok.pos.line
                i += 1
                continue
            if top_implicit() and tok.pos.column <= stack[-1].column:
                # The block would be empty: open and close immediately,
                # then process the token against the enclosing context.
                out.append(vtok("{", tok.pos))
                out.append(vtok("}", tok.pos))
                if is_let:
                    lets_awaiting_in += 1
            else:
                stack.append(_Ctx(tok.pos.column, depth, is_let))
                out.append(vtok("{", tok.pos))
                last_line = tok.pos.line
                # First token of the block gets no leading ';'; process
                # any bracket/keyword effects it carries.
                out.append(tok)
                if tok.type is TokenType.KEYWORD and tok.value in LAYOUT_KEYWORDS:
                    expecting_block = True
                    block_is_let = tok.value == "let"
                if tok.is_special("(") or tok.is_special("["):
                    depth += 1
                i += 1
                continue
        if tok.pos.line > last_line:
            while top_implicit() and tok.pos.column < stack[-1].column:
                out.append(vtok("}", tok.pos))
                pop_ctx()
            if top_implicit() and tok.pos.column == stack[-1].column:
                out.append(vtok(";", tok.pos))
            last_line = tok.pos.line
        if tok.is_keyword("in"):
            # `in` terminates a let-block (parse-error rule).  If the
            # block was already closed (offside / '}' / bracket), the
            # counter absorbs this 'in'; otherwise close implicit blocks
            # up to and including the nearest implicit let-block.
            if lets_awaiting_in > 0:
                lets_awaiting_in -= 1
            else:
                # Only the contiguous run of implicit blocks on top of
                # the stack may be closed; an explicit '{' bars popping.
                let_in_run = False
                for ctx in reversed(stack):
                    if ctx.column == _EXPLICIT:
                        break
                    if ctx.is_let:
                        let_in_run = True
                        break
                if let_in_run:
                    while top_implicit():
                        ctx = stack.pop()
                        out.append(vtok("}", tok.pos))
                        if ctx.is_let:
                            break
            out.append(tok)
            i += 1
            continue
        if tok.is_special("{"):
            stack.append(_Ctx(_EXPLICIT, depth, False))
            out.append(tok)
            i += 1
            continue
        if tok.is_special("}"):
            if stack and stack[-1].column == _EXPLICIT:
                pop_ctx()
                out.append(tok)
                i += 1
                continue
            raise LexError("unexpected '}' with no open explicit block", tok.pos)
        if tok.is_special("(") or tok.is_special("["):
            depth += 1
            out.append(tok)
            i += 1
            continue
        if tok.is_special(")") or tok.is_special("]"):
            # Close implicit blocks opened inside these brackets.
            while top_implicit() and stack[-1].depth >= depth:
                out.append(vtok("}", tok.pos))
                pop_ctx()
            depth = max(0, depth - 1)
            out.append(tok)
            i += 1
            continue
        out.append(tok)
        if tok.type is TokenType.KEYWORD and tok.value in LAYOUT_KEYWORDS:
            expecting_block = True
            block_is_let = tok.value == "let"
        i += 1

    eof_pos = tokens[-1].pos if tokens else SourcePos(1, 1, filename)
    while stack:
        ctx = stack.pop()
        if ctx.column == _EXPLICIT:
            raise LexError("unclosed '{' at end of input", eof_pos)
        out.append(vtok("}", eof_pos))
    out.append(Token(TokenType.EOF, "", eof_pos))
    return out


def lex(text: str, filename: str = "<input>") -> List[Token]:
    """Scan *text* and apply the layout algorithm.

    The result always ends with a single EOF token.
    """
    return apply_layout(scan(text, filename), filename)
