"""Pretty printing for surface/kernel syntax and type syntax.

Used in error messages, compiler dumps (``dump_kernel``) and golden
tests.  The output is valid Mini-Haskell for the surface fragment,
except for placeholder nodes which print as ``<obj, t>`` in the paper's
notation.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast


def pp_type(ty: ast.SType) -> str:
    return _pp_type(ty, 0)


def _pp_type(ty: ast.SType, prec: int) -> str:
    if isinstance(ty, ast.STyVar):
        return ty.name
    if isinstance(ty, ast.STyCon):
        return ty.name
    if isinstance(ty, ast.STyApp):
        parts = _spine(ty)
        head = parts[0]
        args = parts[1:]
        if isinstance(head, ast.STyCon) and head.name == "->" and len(args) == 2:
            inner = f"{_pp_type(args[0], 1)} -> {_pp_type(args[1], 0)}"
            return f"({inner})" if prec > 0 else inner
        if isinstance(head, ast.STyCon) and head.name == "[]" and len(args) == 1:
            return f"[{_pp_type(args[0], 0)}]"
        if isinstance(head, ast.STyCon) and head.name.startswith("(,") \
                and len(args) == head.name.count(",") + 1:
            return "(" + ", ".join(_pp_type(a, 0) for a in args) + ")"
        inner = " ".join([_pp_type(head, 2)] + [_pp_type(a, 2) for a in args])
        return f"({inner})" if prec > 1 else inner
    return repr(ty)


def _spine(ty: ast.SType) -> List[ast.SType]:
    args: List[ast.SType] = []
    while isinstance(ty, ast.STyApp):
        args.append(ty.arg)
        ty = ty.fn
    args.append(ty)
    args.reverse()
    return args


def pp_qual_type(q: ast.SQualType) -> str:
    body = pp_type(q.type)
    if not q.context:
        return body
    preds = ", ".join(f"{p.class_name} {_pp_type(p.type, 2)}" for p in q.context)
    if len(q.context) == 1:
        return f"{preds} => {body}"
    return f"({preds}) => {body}"


def pp_pat(pat: ast.Pat) -> str:
    return _pp_pat(pat, 0)


def _pp_pat(pat: ast.Pat, prec: int) -> str:
    if isinstance(pat, ast.PVar):
        return pat.name
    if isinstance(pat, ast.PWild):
        return "_"
    if isinstance(pat, ast.PLit):
        return _pp_literal(pat.value, pat.kind)
    if isinstance(pat, ast.PAs):
        return f"{pat.name}@{_pp_pat(pat.pat, 2)}"
    if isinstance(pat, ast.PTuple):
        return "(" + ", ".join(_pp_pat(p, 0) for p in pat.items) + ")"
    if isinstance(pat, ast.PCon):
        if pat.name == ":" and len(pat.args) == 2:
            inner = f"{_pp_pat(pat.args[0], 1)} : {_pp_pat(pat.args[1], 0)}"
            return f"({inner})" if prec > 0 else inner
        if not pat.args:
            return pat.name
        inner = " ".join([pat.name] + [_pp_pat(a, 2) for a in pat.args])
        return f"({inner})" if prec > 1 else inner
    return repr(pat)


def _pp_literal(value: object, kind: str) -> str:
    if kind == "char":
        return repr(str(value)).replace('"', "'")
    if kind == "string":
        return '"' + str(value).replace("\\", "\\\\").replace('"', '\\"') + '"'
    return str(value)


def pp_expr(expr: ast.Expr) -> str:
    return _pp_expr(expr, 0)


def _pp_expr(expr: ast.Expr, prec: int) -> str:
    expr = ast.unwrap_placeholders(expr)
    if isinstance(expr, ast.Var):
        if expr.name and not (expr.name[0].isalpha() or expr.name[0] == "_"):
            return f"({expr.name})"
        return expr.name
    if isinstance(expr, ast.Con):
        if expr.name == ":":
            return "(:)"
        return expr.name
    if isinstance(expr, ast.Lit):
        return _pp_literal(expr.value, expr.kind)
    if isinstance(expr, ast.PlaceholderExpr):
        return f"<{expr.payload}>"
    if isinstance(expr, ast.App):
        fn = _pp_expr(expr.fn, 10)
        arg = _pp_expr(expr.arg, 11)
        inner = f"{fn} {arg}"
        return f"({inner})" if prec > 10 else inner
    if isinstance(expr, ast.Lam):
        pats = " ".join(_pp_pat(p, 2) for p in expr.params)
        inner = f"\\{pats} -> {_pp_expr(expr.body, 0)}"
        return f"({inner})" if prec > 0 else inner
    if isinstance(expr, ast.Let):
        decls = "; ".join(pp_decl(d) for d in expr.decls)
        inner = f"let {{ {decls} }} in {_pp_expr(expr.body, 0)}"
        return f"({inner})" if prec > 0 else inner
    if isinstance(expr, ast.If):
        inner = (f"if {_pp_expr(expr.cond, 0)} "
                 f"then {_pp_expr(expr.then_branch, 0)} "
                 f"else {_pp_expr(expr.else_branch, 0)}")
        return f"({inner})" if prec > 0 else inner
    if isinstance(expr, ast.Case):
        alts = "; ".join(_pp_alt(a) for a in expr.alts)
        inner = f"case {_pp_expr(expr.scrutinee, 0)} of {{ {alts} }}"
        return f"({inner})" if prec > 0 else inner
    if isinstance(expr, ast.TupleExpr):
        return "(" + ", ".join(_pp_expr(e, 0) for e in expr.items) + ")"
    if isinstance(expr, ast.ListExpr):
        return "[" + ", ".join(_pp_expr(e, 0) for e in expr.items) + "]"
    if isinstance(expr, ast.Annot):
        inner = f"{_pp_expr(expr.expr, 1)} :: {pp_qual_type(expr.signature)}"
        return f"({inner})" if prec > 0 else inner
    return repr(expr)


def _pp_alt(alt: ast.CaseAlt) -> str:
    parts = []
    for rhs in alt.rhss:
        if rhs.guard is None:
            parts.append(f"-> {_pp_expr(rhs.body, 0)}")
        else:
            parts.append(f"| {_pp_expr(rhs.guard, 0)} -> {_pp_expr(rhs.body, 0)}")
    body = " ".join(parts)
    if alt.where_decls:
        decls = "; ".join(pp_decl(d) for d in alt.where_decls)
        body += f" where {{ {decls} }}"
    return f"{pp_pat(alt.pat)} {body}"


def pp_decl(decl: ast.Decl) -> str:
    if isinstance(decl, ast.TypeSig):
        return f"{', '.join(decl.names)} :: {pp_qual_type(decl.signature)}"
    if isinstance(decl, ast.FunBind):
        lines = []
        for eq in decl.equations:
            lhs = " ".join([decl.name] + [_pp_pat(p, 2) for p in eq.pats])
            for rhs in eq.rhss:
                if rhs.guard is None:
                    lines.append(f"{lhs} = {_pp_expr(rhs.body, 0)}")
                else:
                    lines.append(
                        f"{lhs} | {_pp_expr(rhs.guard, 0)} = {_pp_expr(rhs.body, 0)}")
            if eq.where_decls:
                decls = "; ".join(pp_decl(d) for d in eq.where_decls)
                lines[-1] += f" where {{ {decls} }}"
        return "; ".join(lines)
    if isinstance(decl, ast.DataDecl):
        cons = " | ".join(
            " ".join([c.name] + [_pp_type(t, 2) for t in c.arg_types])
            for c in decl.constructors)
        base = f"data {' '.join([decl.name] + decl.tyvars)} = {cons}"
        if decl.deriving:
            base += f" deriving ({', '.join(decl.deriving)})"
        return base
    if isinstance(decl, ast.ClassDecl):
        ctx = ""
        if decl.superclasses:
            preds = ", ".join(f"{s} {decl.tyvar}" for s in decl.superclasses)
            ctx = f"({preds}) => " if len(decl.superclasses) > 1 else f"{preds} => "
        sigs = "; ".join(pp_decl(s) for s in decl.signatures)
        dflts = "; ".join(pp_decl(d) for d in decl.defaults)
        body = "; ".join(x for x in (sigs, dflts) if x)
        return f"class {ctx}{decl.name} {decl.tyvar} where {{ {body} }}"
    if isinstance(decl, ast.InstanceDecl):
        ctx = ""
        if decl.context:
            preds = ", ".join(
                f"{p.class_name} {_pp_type(p.type, 2)}" for p in decl.context)
            ctx = f"({preds}) => " if len(decl.context) > 1 else f"{preds} => "
        body = "; ".join(pp_decl(b) for b in decl.bindings)
        return (f"instance {ctx}{decl.class_name} "
                f"{_pp_type(decl.head, 2)} where {{ {body} }}")
    if isinstance(decl, ast.FixityDecl):
        word = {"l": "infixl", "r": "infixr", "n": "infix"}[decl.assoc]
        return f"{word} {decl.precedence} {', '.join(decl.operators)}"
    if isinstance(decl, ast.DefaultDecl):
        return "default (" + ", ".join(pp_type(t) for t in decl.types) + ")"
    return repr(decl)


def pp_program(program: ast.Program) -> str:
    return "\n".join(pp_decl(d) for d in program.decls)
