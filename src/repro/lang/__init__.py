"""The Mini-Haskell front end: lexer (with layout), AST, parser,
pretty printer and desugarer.

This package is pure substrate: the paper assumes a Haskell front end
exists; we build the subset needed to express every program in the paper
(classes, instances, data declarations, signatures, equations with
guards, let/where, case, lambdas, lists, tuples, sections, operators
with user-declared fixities, and the offside rule).
"""

from repro.lang.lexer import lex
from repro.lang.parser import parse_program, parse_expr, parse_type
from repro.lang.desugar import desugar_program

__all__ = ["lex", "parse_program", "parse_expr", "parse_type", "desugar_program"]
