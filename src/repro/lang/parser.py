"""Recursive-descent parser for Mini-Haskell.

The parser consumes the layout-processed token stream of
:mod:`repro.lang.lexer` and produces the surface AST of
:mod:`repro.lang.ast`.

Operator expressions are parsed with precedence climbing against a
fixity table.  The table starts from the standard Haskell defaults and
is updated by ``infixl``/``infixr``/``infix`` declarations, which must
appear before first use (single-pass rule; the prelude declares all of
its operators up front).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError, ResourceLimitError, SourcePos
from repro.lang import ast
from repro.lang.lexer import lex
from repro.lang.tokens import Token, TokenType
from repro.limits import DEFAULT_PARSE_DEPTH, ensure_recursion_headroom


@dataclass(frozen=True)
class Fixity:
    precedence: int
    assoc: str  # 'l', 'r' or 'n'


#: Standard fixities (Haskell report defaults for the operators we ship).
DEFAULT_FIXITIES: Dict[str, Fixity] = {
    ".": Fixity(9, "r"),
    "!!": Fixity(9, "l"),
    "^": Fixity(8, "r"),
    "*": Fixity(7, "l"),
    "/": Fixity(7, "l"),
    "div": Fixity(7, "l"),
    "mod": Fixity(7, "l"),
    "+": Fixity(6, "l"),
    "-": Fixity(6, "l"),
    ":": Fixity(5, "r"),
    "++": Fixity(5, "r"),
    "==": Fixity(4, "n"),
    "/=": Fixity(4, "n"),
    "<": Fixity(4, "n"),
    "<=": Fixity(4, "n"),
    ">": Fixity(4, "n"),
    ">=": Fixity(4, "n"),
    "&&": Fixity(3, "r"),
    "||": Fixity(2, "r"),
    "$": Fixity(0, "r"),
}

_UNKNOWN_FIXITY = Fixity(9, "l")


class Parser:
    """One parse of one token stream."""

    def __init__(self, tokens: List[Token], source: str = "",
                 max_depth: int = DEFAULT_PARSE_DEPTH,
                 fixities: Optional[Dict[str, Fixity]] = None) -> None:
        self.tokens = tokens
        self.index = 0
        self.source = source
        # Start from the defaults, optionally extended with fixities
        # imported from other modules' interfaces (the single-pass
        # "declare before use" rule then applies per module).
        self.fixities = dict(DEFAULT_FIXITIES)
        if fixities:
            self.fixities.update(fixities)
        #: fixities declared by this parse's own ``infix*`` decls, as
        #: ``op -> (prec, assoc)`` — recorded on the Program so module
        #: interfaces can export them
        self.declared_fixities: Dict[str, Tuple[int, str]] = {}
        self.max_depth = max_depth
        self.depth = 0
        # Total-work budget.  Legitimate parses use well under one
        # _enter_depth call per token (the prelude: ~0.3, worst
        # observed ~0.5); the backtracking in parse_paren_expr /
        # parse_funlhs goes exponential on adversarial inputs (e.g.
        # dozens of unclosed parens), which shows up as vastly more
        # calls.  The budget scales with input size — NOT with
        # max_depth, or raising the depth knob would let adversarial
        # inputs burn minutes before tripping it.  Disabled together
        # with the depth guard (max_depth=0 means "no limits").
        self.max_fuel = 16 * (len(tokens) + 64) if max_depth else 0
        self.fuel_used = 0

    # ---------------------------------------------------------------- utils

    def _enter_depth(self, what: str) -> None:
        """Count one level of grammar nesting; the budget turns
        pathological inputs (hundreds of nested parens) into a located
        error instead of a Python ``RecursionError``."""
        self.fuel_used += 1
        if self.max_fuel and self.fuel_used > self.max_fuel:
            raise ResourceLimitError(
                f"parsing exceeded its work budget ({self.max_fuel} "
                f"steps): the input provokes pathological backtracking; "
                f"raise max_parse_depth to enlarge the budget",
                self.peek().pos,
                limit="max_parse_fuel",
            )
        self.depth += 1
        if self.max_depth and self.depth > self.max_depth:
            self.depth -= 1
            raise ResourceLimitError(
                f"{what} nests too deeply (more than {self.max_depth} "
                f"levels); raise max_parse_depth for deeply nested inputs",
                self.peek().pos,
                limit="max_parse_depth",
            )

    def _int_literal(self, tok: Token) -> int:
        try:
            return int(tok.value)
        except ValueError:
            # CPython refuses str→int conversion past
            # sys.get_int_max_str_digits() digits; surface it as a
            # located error rather than a bare ValueError.
            raise ParseError(
                f"integer literal too large ({len(tok.value)} digits "
                f"exceeds this Python's string-conversion limit)",
                tok.pos) from None

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.index]
        if tok.type is not TokenType.EOF:
            self.index += 1
        return tok

    def error(self, message: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self.peek()
        return ParseError(f"{message}, found {tok.describe()}", tok.pos)

    def expect_special(self, char: str, context: str) -> Token:
        tok = self.peek()
        if tok.is_special(char):
            return self.advance()
        raise self.error(f"expected '{char}' {context}", tok)

    def expect_reserved(self, op: str, context: str) -> Token:
        tok = self.peek()
        if tok.is_reserved_op(op):
            return self.advance()
        raise self.error(f"expected '{op}' {context}", tok)

    def expect_keyword(self, word: str, context: str) -> Token:
        tok = self.peek()
        if tok.is_keyword(word):
            return self.advance()
        raise self.error(f"expected '{word}' {context}", tok)

    def at_varid(self) -> bool:
        return self.peek().type is TokenType.VARID

    def at_conid(self) -> bool:
        return self.peek().type is TokenType.CONID

    def expect_varid(self, context: str) -> Token:
        tok = self.peek()
        if tok.type is TokenType.VARID:
            return self.advance()
        raise self.error(f"expected identifier {context}", tok)

    def expect_conid(self, context: str) -> Token:
        tok = self.peek()
        if tok.type is TokenType.CONID:
            return self.advance()
        raise self.error(f"expected constructor name {context}", tok)

    def skip_semis(self) -> None:
        while self.peek().is_special(";"):
            self.advance()

    # ------------------------------------------------------------- programs

    def parse_program(self) -> ast.Program:
        module_name: Optional[str] = None
        exports: Optional[List[str]] = None
        if self.peek().is_keyword("module"):
            module_name, exports = self.parse_module_header()
        decls: List[ast.Decl] = []
        imports: List[ast.ImportDecl] = []
        if self.peek().type is TokenType.EOF:
            # Empty module (possibly just a header).
            return ast.Program(decls, module_name=module_name,
                               exports=exports, imports=imports,
                               fixities=dict(self.declared_fixities))
        self.expect_special("{", "at start of module (layout)")
        self.skip_semis()
        while self.peek().is_keyword("import"):
            imports.append(self.parse_import_decl())
            if self.peek().is_special(";"):
                self.skip_semis()
            elif not self.peek().is_special("}"):
                raise self.error("expected ';' or end of module after import")
        while not self.peek().is_special("}"):
            decls.append(self.parse_topdecl())
            if self.peek().is_special(";"):
                self.skip_semis()
            elif not self.peek().is_special("}"):
                raise self.error("expected ';' or end of module after declaration")
        self.advance()  # }
        if self.peek().type is not TokenType.EOF:
            raise self.error("expected end of input after module body")
        return ast.Program(decls, module_name=module_name,
                           exports=exports, imports=imports,
                           fixities=dict(self.declared_fixities))

    def parse_module_header(self) -> Tuple[str, Optional[List[str]]]:
        """``module M [(names)] where`` before the top-level layout block."""
        self.advance()  # 'module'
        name = self.expect_conid("after 'module'").value
        exports: Optional[List[str]] = None
        if self.peek().is_special("("):
            exports = self.parse_name_list("in export list")
        self.expect_keyword("where", "after module header")
        return name, exports

    def parse_import_decl(self) -> ast.ImportDecl:
        start = self.advance().pos  # 'import'
        name = self.expect_conid("after 'import'").value
        names: Optional[List[str]] = None
        if self.peek().is_special("("):
            names = self.parse_name_list("in import list")
        return ast.ImportDecl(name, names, pos=start)

    def parse_name_list(self, context: str) -> List[str]:
        """A parenthesised export/import list: ``(f, Con, (+), ...)``."""
        self.expect_special("(", context)
        names: List[str] = []
        if not self.peek().is_special(")"):
            names.append(self.parse_entity_name(context))
            while self.peek().is_special(","):
                self.advance()
                names.append(self.parse_entity_name(context))
        self.expect_special(")", context)
        return names

    def parse_entity_name(self, context: str) -> str:
        tok = self.peek()
        if tok.type in (TokenType.VARID, TokenType.CONID):
            self.advance()
            return tok.value
        if tok.is_special("(") and self.peek(1).type is TokenType.VARSYM \
                and self.peek(2).is_special(")"):
            self.advance()
            name = self.advance().value
            self.advance()
            return name
        raise self.error(f"expected a name {context}", tok)

    def parse_topdecl(self) -> ast.Decl:
        tok = self.peek()
        if tok.is_keyword("import"):
            raise ParseError(
                "import declarations must appear before all other "
                "declarations", tok.pos)
        if tok.is_keyword("module"):
            raise ParseError(
                "a 'module' header may only appear at the start of a file",
                tok.pos)
        if tok.is_keyword("data"):
            return self.parse_data_decl()
        if tok.is_keyword("type"):
            return self.parse_type_syn_decl()
        if tok.is_keyword("class"):
            return self.parse_class_decl()
        if tok.is_keyword("instance"):
            return self.parse_instance_decl()
        if tok.is_keyword("default"):
            return self.parse_default_decl()
        if tok.type is TokenType.KEYWORD and tok.value in ("infixl", "infixr", "infix"):
            return self.parse_fixity_decl()
        return self.parse_sig_or_bind()

    # ----------------------------------------------------------------- data

    def parse_data_decl(self) -> ast.DataDecl:
        start = self.advance().pos  # 'data'
        name = self.expect_conid("after 'data'").value
        tyvars: List[str] = []
        while self.at_varid():
            tyvars.append(self.advance().value)
        self.expect_reserved("=", "in data declaration")
        constructors = [self.parse_condef()]
        while self.peek().is_reserved_op("|"):
            self.advance()
            constructors.append(self.parse_condef())
        deriving: List[str] = []
        if self.peek().is_keyword("deriving"):
            self.advance()
            if self.peek().is_special("("):
                self.advance()
                if not self.peek().is_special(")"):
                    deriving.append(self.expect_conid("in deriving list").value)
                    while self.peek().is_special(","):
                        self.advance()
                        deriving.append(self.expect_conid("in deriving list").value)
                self.expect_special(")", "after deriving list")
            else:
                deriving.append(self.expect_conid("after 'deriving'").value)
        return ast.DataDecl(name, tyvars, constructors, deriving, pos=start)

    def parse_type_syn_decl(self) -> ast.TypeSynDecl:
        start = self.advance().pos  # 'type'
        name = self.expect_conid("after 'type'").value
        tyvars: List[str] = []
        while self.at_varid():
            tyvars.append(self.advance().value)
        self.expect_reserved("=", "in type synonym declaration")
        rhs = self.parse_type()
        return ast.TypeSynDecl(name, tyvars, rhs, pos=start)

    def parse_condef(self) -> ast.ConDef:
        tok = self.expect_conid("in constructor definition")
        args: List[ast.SType] = []
        while self.at_atype_start():
            args.append(self.parse_atype())
        return ast.ConDef(tok.value, args, pos=tok.pos)

    # ---------------------------------------------------------------- class

    def parse_class_decl(self) -> ast.ClassDecl:
        start = self.advance().pos  # 'class'
        context = self.parse_optional_context()
        name = self.expect_conid("as class name").value
        tyvar = self.expect_varid("as class type variable").value
        tyvars = [tyvar]
        while self.at_varid():  # multi-parameter class: C a b ...
            tyvars.append(self.advance().value)
        if len(set(tyvars)) != len(tyvars):
            raise ParseError(
                f"class {name} repeats a type variable in its header", start)
        if len(tyvars) > 1 and context:
            raise ParseError(
                f"multi-parameter class {name} may not have superclass "
                f"constraints", start)
        superclasses: List[str] = []
        for pred in context:
            if pred.types is not None \
                    or not isinstance(pred.type, ast.STyVar) \
                    or pred.type.name != tyvar:
                raise ParseError(
                    f"superclass constraint {pred.class_name} must be on the "
                    f"class variable '{tyvar}'", pred.pos or start)
            superclasses.append(pred.class_name)
        signatures: List[ast.TypeSig] = []
        defaults: List[ast.FunBind] = []
        if self.peek().is_keyword("where"):
            self.advance()
            for decl in self.parse_decl_block():
                if isinstance(decl, ast.TypeSig):
                    signatures.append(decl)
                elif isinstance(decl, ast.FunBind):
                    defaults.append(decl)
                else:
                    raise ParseError(
                        "only method signatures and default bindings may "
                        "appear in a class body", decl.pos or start)
        return ast.ClassDecl(superclasses, name, tyvar, signatures, defaults,
                             pos=start,
                             tyvars=tyvars if len(tyvars) > 1 else None)

    def parse_instance_decl(self) -> ast.InstanceDecl:
        start = self.advance().pos  # 'instance'
        context = self.parse_optional_context()
        class_name = self.expect_conid("as class name in instance").value
        head = self.parse_atype()
        heads = [head]
        while self.at_atype_start():  # multi-parameter instance head
            heads.append(self.parse_atype())
        bindings: List[ast.FunBind] = []
        if self.peek().is_keyword("where"):
            self.advance()
            for decl in self.parse_decl_block():
                if isinstance(decl, ast.FunBind):
                    bindings.append(decl)
                else:
                    raise ParseError(
                        "only method bindings may appear in an instance body",
                        decl.pos or start)
        return ast.InstanceDecl(context, class_name, head, bindings, pos=start,
                                heads=heads if len(heads) > 1 else None)

    def parse_optional_context(self) -> List[ast.SPred]:
        """Parse ``context =>`` if present.

        A context is either a single predicate or a parenthesised,
        comma-separated list.  Deciding whether ``(...)`` is a context or
        part of the head requires lookahead for ``=>``; we do a trial
        scan for it at bracket depth zero before the next ``where``/``=``.
        """
        if not self._context_ahead():
            return []
        preds: List[ast.SPred] = []
        if self.peek().is_special("("):
            self.advance()
            if not self.peek().is_special(")"):
                preds.append(self.parse_pred())
                while self.peek().is_special(","):
                    self.advance()
                    preds.append(self.parse_pred())
            self.expect_special(")", "after context")
        else:
            preds.append(self.parse_pred())
        self.expect_reserved("=>", "after context")
        return preds

    def _context_ahead(self) -> bool:
        depth = 0
        ahead = 0
        while True:
            tok = self.peek(ahead)
            if tok.type is TokenType.EOF:
                return False
            if tok.is_special("(") or tok.is_special("["):
                depth += 1
            elif tok.is_special(")") or tok.is_special("]"):
                depth -= 1
            elif depth == 0:
                if tok.is_reserved_op("=>"):
                    return True
                if (tok.is_keyword("where") or tok.is_reserved_op("=")
                        or tok.is_special(";") or tok.is_special("}")):
                    return False
            ahead += 1

    def parse_pred(self) -> ast.SPred:
        cls = self.expect_conid("as class name in context")
        ty = self.parse_atype()
        types = [ty]
        while self.at_atype_start():  # multi-parameter constraint
            types.append(self.parse_atype())
        return ast.SPred(cls.value, ty, pos=cls.pos,
                         types=types if len(types) > 1 else None)

    # -------------------------------------------------------------- default

    def parse_default_decl(self) -> ast.DefaultDecl:
        start = self.advance().pos  # 'default'
        self.expect_special("(", "after 'default'")
        types: List[ast.SType] = []
        if not self.peek().is_special(")"):
            types.append(self.parse_type())
            while self.peek().is_special(","):
                self.advance()
                types.append(self.parse_type())
        self.expect_special(")", "after default types")
        return ast.DefaultDecl(types, pos=start)

    def parse_fixity_decl(self) -> ast.FixityDecl:
        tok = self.advance()
        assoc = {"infixl": "l", "infixr": "r", "infix": "n"}[tok.value]
        prec_tok = self.peek()
        if prec_tok.type is not TokenType.INT:
            raise self.error("expected precedence (0-9) in fixity declaration")
        self.advance()
        precedence = int(prec_tok.value)
        if not 0 <= precedence <= 9:
            raise ParseError("fixity precedence must be between 0 and 9",
                             prec_tok.pos)
        ops = [self.parse_fixity_op()]
        while self.peek().is_special(","):
            self.advance()
            ops.append(self.parse_fixity_op())
        for op in ops:
            self.fixities[op] = Fixity(precedence, assoc)
            self.declared_fixities[op] = (precedence, assoc)
        return ast.FixityDecl(assoc, precedence, ops, pos=tok.pos)

    def parse_fixity_op(self) -> str:
        tok = self.peek()
        if tok.type is TokenType.VARSYM:
            self.advance()
            return tok.value
        if tok.is_special("`"):
            self.advance()
            name = self.expect_varid("inside backticks").value
            self.expect_special("`", "after backtick operator")
            return name
        raise self.error("expected operator in fixity declaration")

    # -------------------------------------------------------- sigs/bindings

    def parse_sig_or_bind(self) -> ast.Decl:
        if self._signature_ahead():
            return self.parse_type_sig()
        return self.parse_fun_bind()

    def _signature_ahead(self) -> bool:
        """Lookahead: ``var[, var ...] ::`` at the start of a declaration."""
        ahead = 0
        while True:
            tok = self.peek(ahead)
            if tok.type is TokenType.VARID:
                ahead += 1
            elif tok.is_special("(") and self.peek(ahead + 1).type is TokenType.VARSYM \
                    and self.peek(ahead + 2).is_special(")"):
                ahead += 3
            else:
                return False
            nxt = self.peek(ahead)
            if nxt.is_reserved_op("::"):
                return True
            if nxt.is_special(","):
                ahead += 1
                continue
            return False

    def parse_var_name(self, context: str) -> str:
        """A variable name: plain identifier or parenthesised operator."""
        tok = self.peek()
        if tok.type is TokenType.VARID:
            self.advance()
            return tok.value
        if tok.is_special("(") and self.peek(1).type is TokenType.VARSYM \
                and self.peek(2).is_special(")"):
            self.advance()
            name = self.advance().value
            self.advance()
            return name
        raise self.error(f"expected variable name {context}", tok)

    def parse_type_sig(self) -> ast.TypeSig:
        start = self.peek().pos
        names = [self.parse_var_name("in type signature")]
        while self.peek().is_special(","):
            self.advance()
            names.append(self.parse_var_name("in type signature"))
        self.expect_reserved("::", "in type signature")
        sig = self.parse_qual_type()
        return ast.TypeSig(names, sig, pos=start)

    def parse_fun_bind(self) -> ast.FunBind:
        """One equation.  Adjacent equations for the same name are merged
        by :func:`merge_equations` after block parsing."""
        start = self.peek().pos
        name, pats = self.parse_funlhs()
        rhss = self.parse_rhs("=")
        where_decls: List[ast.Decl] = []
        if self.peek().is_keyword("where"):
            self.advance()
            where_decls = self.parse_decl_block()
        eq = ast.Equation(pats, rhss, where_decls, pos=start)
        return ast.FunBind(name, [eq], pos=start)

    def parse_funlhs(self) -> Tuple[str, List[ast.Pat]]:
        # Infix definition:  x == y = ...   or  (x:xs) `op` y = ...
        save = self.index
        try:
            left = self.parse_apat()
            tok = self.peek()
            op = None
            if tok.type is TokenType.VARSYM and tok.value != ":":
                op = tok.value
                self.advance()
            elif tok.is_special("`"):
                self.advance()
                op = self.expect_varid("inside backticks").value
                self.expect_special("`", "after backtick operator")
            if op is not None:
                right = self.parse_apat()
                return op, [left, right]
        except ParseError:
            pass
        self.index = save
        name = self.parse_var_name("at start of binding")
        pats: List[ast.Pat] = []
        while self.at_apat_start():
            pats.append(self.parse_apat())
        return name, pats

    def parse_rhs(self, eq_token: str) -> List[ast.GuardedRhs]:
        """The right-hand side of an equation or case alternative.

        *eq_token* is ``=`` for equations and ``->`` for case alts.
        """
        tok = self.peek()
        if tok.is_reserved_op(eq_token):
            self.advance()
            return [ast.GuardedRhs(None, self.parse_expr(), pos=tok.pos)]
        rhss: List[ast.GuardedRhs] = []
        while self.peek().is_reserved_op("|"):
            bar = self.advance()
            guard = self.parse_expr()
            self.expect_reserved(eq_token, "after guard")
            body = self.parse_expr()
            rhss.append(ast.GuardedRhs(guard, body, pos=bar.pos))
        if not rhss:
            raise self.error(f"expected '{eq_token}' or '|' in right-hand side")
        return rhss

    def parse_decl_block(self) -> List[ast.Decl]:
        """A ``{ decl ; ... }`` block (braces usually from layout)."""
        self.expect_special("{", "to open declaration block")
        decls: List[ast.Decl] = []
        self.skip_semis()
        while not self.peek().is_special("}"):
            decls.append(self.parse_local_decl())
            if self.peek().is_special(";"):
                self.skip_semis()
            elif not self.peek().is_special("}"):
                raise self.error("expected ';' or '}' after declaration")
        self.advance()
        return merge_equations(decls)

    def parse_local_decl(self) -> ast.Decl:
        if self._signature_ahead():
            return self.parse_type_sig()
        return self.parse_fun_bind()

    # ----------------------------------------------------------------- types

    def parse_qual_type(self) -> ast.SQualType:
        start = self.peek().pos
        context: List[ast.SPred] = []
        if self._context_ahead():
            if self.peek().is_special("("):
                self.advance()
                if not self.peek().is_special(")"):
                    context.append(self.parse_pred())
                    while self.peek().is_special(","):
                        self.advance()
                        context.append(self.parse_pred())
                self.expect_special(")", "after context")
            else:
                context.append(self.parse_pred())
            self.expect_reserved("=>", "after context")
        ty = self.parse_type()
        return ast.SQualType(context, ty, pos=start)

    def parse_type(self) -> ast.SType:
        self._enter_depth("type")
        try:
            left = self.parse_btype()
            if self.peek().is_reserved_op("->"):
                self.advance()
                right = self.parse_type()
                return ast.sty_fun(left, right)
            return left
        finally:
            self.depth -= 1

    def parse_btype(self) -> ast.SType:
        ty = self.parse_atype()
        pos = ty.pos
        while self.at_atype_start():
            # The application spine carries the head atom's position so
            # kind errors point at the misapplied constructor/variable.
            ty = ast.STyApp(ty, self.parse_atype(), pos=pos)
        return ty

    def at_atype_start(self) -> bool:
        tok = self.peek()
        return (tok.type in (TokenType.VARID, TokenType.CONID)
                or tok.is_special("(") or tok.is_special("["))

    def parse_atype(self) -> ast.SType:
        tok = self.peek()
        if tok.type is TokenType.VARID:
            self.advance()
            return ast.STyVar(tok.value, pos=tok.pos)
        if tok.type is TokenType.CONID:
            self.advance()
            return ast.STyCon(tok.value, pos=tok.pos)
        if tok.is_special("["):
            self.advance()
            if self.peek().is_special("]"):
                self.advance()
                return ast.STyCon("[]", pos=tok.pos)
            elem = self.parse_type()
            self.expect_special("]", "after list element type")
            return ast.sty_list(elem)
        if tok.is_special("("):
            self.advance()
            if self.peek().is_special(")"):
                self.advance()
                return ast.STyCon("()", pos=tok.pos)
            if self.peek().is_reserved_op("->") and self.peek(1).is_special(")"):
                self.advance()
                self.advance()
                return ast.STyCon("->", pos=tok.pos)
            first = self.parse_type()
            if self.peek().is_special(","):
                items = [first]
                while self.peek().is_special(","):
                    self.advance()
                    items.append(self.parse_type())
                self.expect_special(")", "after tuple type")
                return ast.sty_tuple(items)
            self.expect_special(")", "after type")
            return first
        raise self.error("expected a type")

    # ------------------------------------------------------------- patterns

    def at_apat_start(self) -> bool:
        tok = self.peek()
        return (tok.type in (TokenType.VARID, TokenType.CONID, TokenType.INT,
                             TokenType.FLOAT, TokenType.CHAR, TokenType.STRING)
                or tok.is_special("(") or tok.is_special("[")
                or tok.is_special("_"))

    def parse_pattern(self) -> ast.Pat:
        """Full pattern: constructor applications and infix ``:``."""
        self._enter_depth("pattern")
        try:
            left = self.parse_pat10()
            tok = self.peek()
            if tok.type is TokenType.VARSYM and tok.value == ":":
                self.advance()
                right = self.parse_pattern()  # ':' is right associative
                return ast.PCon(":", [left, right], pos=tok.pos)
            return left
        finally:
            self.depth -= 1

    def parse_pat10(self) -> ast.Pat:
        tok = self.peek()
        if tok.type is TokenType.CONID:
            self.advance()
            args: List[ast.Pat] = []
            while self.at_apat_start():
                args.append(self.parse_apat())
            return ast.PCon(tok.value, args, pos=tok.pos)
        return self.parse_apat()

    def parse_apat(self) -> ast.Pat:
        tok = self.peek()
        if tok.type is TokenType.VARID:
            self.advance()
            if self.peek().is_reserved_op("@"):
                self.advance()
                inner = self.parse_apat()
                return ast.PAs(tok.value, inner, pos=tok.pos)
            return ast.PVar(tok.value, pos=tok.pos)
        if tok.is_special("_"):
            self.advance()
            return ast.PWild(pos=tok.pos)
        if tok.type is TokenType.CONID:
            self.advance()
            return ast.PCon(tok.value, [], pos=tok.pos)
        if tok.type is TokenType.INT:
            self.advance()
            return ast.PLit(self._int_literal(tok), "int", pos=tok.pos)
        if tok.type is TokenType.FLOAT:
            self.advance()
            return ast.PLit(float(tok.value), "float", pos=tok.pos)
        if tok.type is TokenType.CHAR:
            self.advance()
            return ast.PLit(tok.value, "char", pos=tok.pos)
        if tok.type is TokenType.STRING:
            self.advance()
            return ast.PLit(tok.value, "string", pos=tok.pos)
        if tok.is_special("["):
            self.advance()
            items: List[ast.Pat] = []
            if not self.peek().is_special("]"):
                items.append(self.parse_pattern())
                while self.peek().is_special(","):
                    self.advance()
                    items.append(self.parse_pattern())
            self.expect_special("]", "after list pattern")
            out: ast.Pat = ast.PCon("[]", [], pos=tok.pos)
            for item in reversed(items):
                out = ast.PCon(":", [item, out], pos=tok.pos)
            return out
        if tok.is_special("("):
            self.advance()
            if self.peek().is_special(")"):
                self.advance()
                return ast.PCon("()", [], pos=tok.pos)
            first = self.parse_pattern()
            if self.peek().is_special(","):
                items = [first]
                while self.peek().is_special(","):
                    self.advance()
                    items.append(self.parse_pattern())
                self.expect_special(")", "after tuple pattern")
                return ast.PTuple(items, pos=tok.pos)
            self.expect_special(")", "after pattern")
            return first
        raise self.error("expected a pattern")

    # ---------------------------------------------------------- expressions

    def parse_expr(self) -> ast.Expr:
        expr = self.parse_opexpr(0)
        if self.peek().is_reserved_op("::"):
            self.advance()
            sig = self.parse_qual_type()
            return ast.Annot(expr, sig, pos=expr.pos)
        return expr

    def parse_opexpr(self, min_prec: int) -> ast.Expr:
        """Precedence climbing over binary operators and prefix minus."""
        self._enter_depth("expression")
        try:
            left = self.parse_prefix()
            while True:
                op = self._peek_operator()
                if op is None:
                    return left
                fix = self.fixities.get(op, _UNKNOWN_FIXITY)
                if fix.precedence < min_prec:
                    return left
                op_tok = self._consume_operator()
                if fix.assoc == "l":
                    next_min = fix.precedence + 1
                elif fix.assoc == "r":
                    next_min = fix.precedence
                else:  # non-associative: parse a tighter expression
                    next_min = fix.precedence + 1
                right = self.parse_opexpr(next_min)
                left = self._apply_operator(op, op_tok.pos, left, right)
        finally:
            self.depth -= 1

    def _peek_operator(self) -> Optional[str]:
        tok = self.peek()
        if tok.type is TokenType.VARSYM:
            return tok.value
        if tok.is_special("`") and self.peek(1).type is TokenType.VARID \
                and self.peek(2).is_special("`"):
            return self.peek(1).value
        return None

    def _consume_operator(self) -> Token:
        tok = self.peek()
        if tok.type is TokenType.VARSYM:
            return self.advance()
        # backticked
        self.advance()
        name_tok = self.advance()
        self.advance()
        return name_tok

    def _apply_operator(self, op: str, pos: SourcePos,
                        left: ast.Expr, right: ast.Expr) -> ast.Expr:
        fn: ast.Expr
        if op == ":":
            fn = ast.Con(":", pos=pos)
        else:
            fn = ast.Var(op, pos=pos)
        return ast.App(ast.App(fn, left, pos=pos), right, pos=pos)

    def parse_prefix(self) -> ast.Expr:
        tok = self.peek()
        if tok.type is TokenType.VARSYM and tok.value == "-":
            self.advance()
            operand = self.parse_opexpr(7)  # unary minus binds like infix 6
            return ast.App(ast.Var("negate", pos=tok.pos), operand, pos=tok.pos)
        return self.parse_bexpr()

    def parse_bexpr(self) -> ast.Expr:
        tok = self.peek()
        if tok.is_reserved_op("\\"):
            return self.parse_lambda()
        if tok.is_keyword("let"):
            return self.parse_let()
        if tok.is_keyword("if"):
            return self.parse_if()
        if tok.is_keyword("case"):
            return self.parse_case()
        return self.parse_fexpr()

    def parse_lambda(self) -> ast.Expr:
        start = self.advance().pos  # '\'
        pats = [self.parse_apat()]
        while self.at_apat_start():
            pats.append(self.parse_apat())
        self.expect_reserved("->", "in lambda expression")
        body = self.parse_expr()
        return ast.Lam(pats, body, pos=start)

    def parse_let(self) -> ast.Expr:
        start = self.advance().pos  # 'let'
        decls = self.parse_decl_block()
        self.expect_keyword("in", "after let declarations")
        body = self.parse_expr()
        return ast.Let(decls, body, pos=start)

    def parse_if(self) -> ast.Expr:
        start = self.advance().pos  # 'if'
        cond = self.parse_expr()
        self.expect_keyword("then", "in conditional")
        then_branch = self.parse_expr()
        self.expect_keyword("else", "in conditional")
        else_branch = self.parse_expr()
        return ast.If(cond, then_branch, else_branch, pos=start)

    def parse_case(self) -> ast.Expr:
        start = self.advance().pos  # 'case'
        scrutinee = self.parse_expr()
        self.expect_keyword("of", "in case expression")
        self.expect_special("{", "to open case alternatives")
        alts: List[ast.CaseAlt] = []
        self.skip_semis()
        while not self.peek().is_special("}"):
            alts.append(self.parse_alt())
            if self.peek().is_special(";"):
                self.skip_semis()
            elif not self.peek().is_special("}"):
                raise self.error("expected ';' or '}' after case alternative")
        self.advance()
        if not alts:
            raise ParseError("case expression with no alternatives", start)
        return ast.Case(scrutinee, alts, pos=start)

    def parse_alt(self) -> ast.CaseAlt:
        start = self.peek().pos
        pat = self.parse_pattern()
        rhss = self.parse_rhs("->")
        where_decls: List[ast.Decl] = []
        if self.peek().is_keyword("where"):
            self.advance()
            where_decls = self.parse_decl_block()
        return ast.CaseAlt(pat, rhss, where_decls, pos=start)

    def parse_fexpr(self) -> ast.Expr:
        expr = self.parse_aexpr()
        while self.at_aexpr_start():
            arg = self.parse_aexpr()
            expr = ast.App(expr, arg, pos=expr.pos)
        return expr

    def at_aexpr_start(self) -> bool:
        tok = self.peek()
        return (tok.type in (TokenType.VARID, TokenType.CONID, TokenType.INT,
                             TokenType.FLOAT, TokenType.CHAR, TokenType.STRING)
                or tok.is_special("(") or tok.is_special("["))

    def parse_aexpr(self) -> ast.Expr:
        tok = self.peek()
        if tok.type is TokenType.VARID:
            self.advance()
            return ast.Var(tok.value, pos=tok.pos)
        if tok.type is TokenType.CONID:
            self.advance()
            return ast.Con(tok.value, pos=tok.pos)
        if tok.type is TokenType.INT:
            self.advance()
            return ast.Lit(self._int_literal(tok), "int", pos=tok.pos)
        if tok.type is TokenType.FLOAT:
            self.advance()
            return ast.Lit(float(tok.value), "float", pos=tok.pos)
        if tok.type is TokenType.CHAR:
            self.advance()
            return ast.Lit(tok.value, "char", pos=tok.pos)
        if tok.type is TokenType.STRING:
            self.advance()
            return ast.Lit(tok.value, "string", pos=tok.pos)
        if tok.is_special("["):
            return self.parse_list_expr()
        if tok.is_special("("):
            return self.parse_paren_expr()
        raise self.error("expected an expression")

    def parse_list_expr(self) -> ast.Expr:
        start = self.advance().pos  # '['
        items: List[ast.Expr] = []
        if not self.peek().is_special("]"):
            items.append(self.parse_expr())
            while self.peek().is_special(","):
                self.advance()
                items.append(self.parse_expr())
        self.expect_special("]", "after list expression")
        return ast.ListExpr(items, pos=start)

    def parse_paren_expr(self) -> ast.Expr:
        start = self.advance().pos  # '('
        tok = self.peek()
        if tok.is_special(")"):
            self.advance()
            return ast.Con("()", pos=start)
        # Operator as a function or a right section:  (+), (+ e), (:), (: e)
        if tok.type is TokenType.VARSYM:
            op = tok.value
            if self.peek(1).is_special(")"):
                self.advance()
                self.advance()
                if op == ":":
                    return ast.Con(":", pos=start)
                return ast.Var(op, pos=start)
            if op != "-":  # '(- e)' is negation, not a section
                self.advance()
                operand = self.parse_opexpr(
                    self.fixities.get(op, _UNKNOWN_FIXITY).precedence + 1)
                self.expect_special(")", "after operator section")
                return self._right_section(op, start, operand)
        # Backtick operator: (`div`) or a right section (`div` 2).
        if tok.is_special("`") and self.peek(1).type is TokenType.VARID \
                and self.peek(2).is_special("`"):
            op = self.peek(1).value
            self.advance()
            self.advance()
            self.advance()
            if self.peek().is_special(")"):
                self.advance()
                return ast.Var(op, pos=start)
            operand = self.parse_opexpr(
                self.fixities.get(op, _UNKNOWN_FIXITY).precedence + 1)
            self.expect_special(")", "after operator section")
            return self._right_section(op, start, operand)
        save = self.index
        try:
            expr = self.parse_expr()
        except ParseError:
            # Possibly a left section ``(e op)`` whose trailing operator
            # tripped the full-expression parse; re-parse as fexpr + op.
            self.index = save
            expr = self.parse_fexpr()
            op2 = self._peek_operator()
            if op2 is None:
                raise
            self._consume_operator()
            self.expect_special(")", "after operator section")
            return self._left_section(op2, start, expr)
        tok = self.peek()
        if tok.is_special(","):
            items = [expr]
            while self.peek().is_special(","):
                self.advance()
                items.append(self.parse_expr())
            self.expect_special(")", "after tuple expression")
            return ast.TupleExpr(items, pos=start)
        self.expect_special(")", "after parenthesised expression")
        return expr

    def _right_section(self, op: str, pos: SourcePos, operand: ast.Expr) -> ast.Expr:
        """``(op e)``  ==>  ``\\x -> x op e``"""
        x = ast.PVar("x$sec", pos=pos)
        fn: ast.Expr = ast.Con(":", pos=pos) if op == ":" else ast.Var(op, pos=pos)
        body = ast.App(ast.App(fn, ast.Var("x$sec", pos=pos)), operand, pos=pos)
        return ast.Lam([x], body, pos=pos)

    def _left_section(self, op: str, pos: SourcePos, operand: ast.Expr) -> ast.Expr:
        """``(e op)``  ==>  ``\\x -> e op x``  (implemented as partial
        application, which is equivalent for our curried operators)."""
        fn: ast.Expr = ast.Con(":", pos=pos) if op == ":" else ast.Var(op, pos=pos)
        return ast.App(fn, operand, pos=pos)


def merge_equations(decls: List[ast.Decl]) -> List[ast.Decl]:
    """Fuse adjacent FunBinds for the same name into multi-equation binds.

    Haskell requires the equations of a function to be contiguous; we
    enforce that by only merging adjacent ones and rejecting a later
    re-definition of an earlier name.
    """
    out: List[ast.Decl] = []
    seen_names: Dict[str, int] = {}
    for decl in decls:
        if isinstance(decl, ast.FunBind):
            if out and isinstance(out[-1], ast.FunBind) and out[-1].name == decl.name:
                prev = out[-1]
                expected = len(prev.equations[0].pats)
                got = len(decl.equations[0].pats)
                if expected != got:
                    raise ParseError(
                        f"equations for '{decl.name}' have different numbers "
                        f"of arguments ({expected} vs {got})", decl.pos)
                prev.equations.extend(decl.equations)
                continue
            if decl.name in seen_names:
                raise ParseError(
                    f"equations for '{decl.name}' are not contiguous "
                    f"(or the name is defined twice)", decl.pos)
            seen_names[decl.name] = 1
        out.append(decl)
    return out


def parse_program(source: str, filename: str = "<input>",
                  max_depth: int = DEFAULT_PARSE_DEPTH,
                  fixities: Optional[Dict[str, Fixity]] = None) -> ast.Program:
    """Parse a whole module.

    *fixities* extends the default fixity table — the module build uses
    it to hand operator fixities exported by imported interfaces to the
    single-pass operator parser.
    """
    ensure_recursion_headroom()
    parser = Parser(lex(source, filename), source, max_depth=max_depth,
                    fixities=fixities)
    program = parser.parse_program()
    program.decls = merge_equations(program.decls)
    return program


def _strip_module_block(tokens: List[Token]) -> List[Token]:
    """Remove the module-level implicit braces the layout algorithm
    wraps around the whole input — inner layout blocks (for let/case in
    a bare expression) are preserved."""
    out = list(tokens)
    if out and out[0].virtual and out[0].value == "{":
        out.pop(0)
    # The matching close is the last virtual '}' before EOF.
    for i in range(len(out) - 1, -1, -1):
        tok = out[i]
        if tok.type is TokenType.EOF:
            continue
        if tok.virtual and tok.value == "}":
            out.pop(i)
        break
    return out


def parse_expr(source: str, filename: str = "<expr>",
               max_depth: int = DEFAULT_PARSE_DEPTH) -> ast.Expr:
    """Parse a single expression (used by tests and the REPL-style API)."""
    ensure_recursion_headroom()
    stripped = _strip_module_block(lex(source, filename))
    parser = Parser(stripped, source, max_depth=max_depth)
    expr = parser.parse_expr()
    if parser.peek().type is not TokenType.EOF:
        raise parser.error("unexpected input after expression")
    return expr


def parse_type(source: str, filename: str = "<type>",
               max_depth: int = DEFAULT_PARSE_DEPTH) -> ast.SQualType:
    """Parse a qualified type (used by tests and the public API)."""
    ensure_recursion_headroom()
    stripped = _strip_module_block(lex(source, filename))
    parser = Parser(stripped, source, max_depth=max_depth)
    ty = parser.parse_qual_type()
    if parser.peek().type is not TokenType.EOF:
        raise parser.error("unexpected input after type")
    return ty
