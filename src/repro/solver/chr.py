"""The CHR constraint engine.

Class and instance declarations denote a Constraint Handling Rules
program (Glynn/Stuckey/Sulzmann):

* ``class C => D a`` — a *propagation* rule ``D a ==> C a``: a ``D``
  constraint implies a ``C`` constraint on the same variable.  The
  engine applies it through superclass compaction when a goal reaches
  an unbound variable (``ClassEnv.add_constraint`` discards any
  constraint a stored one implies, and evicts stored constraints the
  new one implies — the compiled form of every propagation rule).
* ``instance (C1 a1, ...) => C (T a1 ... ak)`` — a *simplification*
  rule ``C (T a1 ... ak) <=> C1 a1, ...``: a goal whose type is headed
  by ``T`` is replaced by the instance's context, one new goal per
  context constraint.

The engine keeps an explicit **goal store** — a stack of pending
``(class, type)`` constraints — and fires rules until the store is
empty.  Goals are pushed so that rule application happens in exactly
the derivation order of the paper's recursive reduce path; since the
rule set is confluent (overlap is rejected statically, see
:mod:`repro.solver.rules`), any fair order gives the same answer, and
this one makes the two solvers bit-for-bit comparable: same contexts,
same errors, same counters, same provenance.  Every firing happens
under the top-level ``unify`` call's :class:`~repro.core.unify.Origin`,
so minimal-unsat-core minimization keeps working unchanged.

Rule application is budgeted by ``DEFAULT_SOLVER_FUEL`` (one unit per
goal popped), the :mod:`repro.limits` backstop for inputs that slip
past the static termination check; exhaustion raises a located
:class:`~repro.errors.ResourceLimitError` like every other budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.errors import ResourceLimitError, SourcePos, UnificationError
from repro.limits import DEFAULT_SOLVER_FUEL
from repro.core.types import TyCon, TyVar, prune, spine, type_str

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.types import Type
    from repro.core.unify import Unifier


class ChrSolver:
    """CHR rule application over an explicit goal store."""

    name = "chr"

    def __init__(self, fuel: int = DEFAULT_SOLVER_FUEL) -> None:
        self.fuel = fuel
        #: total rule firings (propagation + simplification), all solves
        self.firings = 0
        #: simplification-rule firings (instance-context replacements)
        self.simplifications = 0
        #: high-water mark of the goal store across all solves
        self.store_peak = 0

    def solve(self, unifier: "Unifier", classes: List[str], ty: "Type",
              pos: Optional[SourcePos]) -> None:
        # The store is LIFO with children pushed in reverse, so goals
        # fire in the reduce path's depth-first preorder (see module
        # docstring for why the order is free to choose).
        store = [(cls, ty) for cls in reversed(classes)]
        if len(store) > self.store_peak:
            self.store_peak = len(store)
        fuel = self.fuel
        class_env = unifier.class_env
        while store:
            if fuel == 0:
                raise ResourceLimitError(
                    f"CHR solver exhausted its rule-application budget "
                    f"({self.fuel}); the constraint derivation does not "
                    f"terminate within the solver fuel", pos,
                    limit="solver_fuel")
            fuel -= 1
            cls, goal = store.pop()
            self.firings += 1
            goal = prune(goal)
            if isinstance(goal, TyVar):
                # Variable case: store the constraint on the variable's
                # context.  add_constraint compacts through the
                # superclass relation — the propagation rules' closure.
                unifier.attach_var_constraint(cls, goal, pos)
                continue
            # Constructor case: exactly one simplification rule can
            # match (instances are unique per (class, tycon)); replace
            # the goal by the rule body's constraints.
            unifier.context_reduction_count += 1
            self.simplifications += 1
            head, args = spine(goal)
            if not isinstance(head, TyCon):
                raise UnificationError(
                    f"cannot reduce context {cls} {type_str(goal)}: the "
                    f"type's head is not a known constructor", pos)
            contexts = class_env.find_instance_context(
                head.name, cls, type_str(goal), pos)
            # Well-kinded goals always match the rule head's arity,
            # higher-kinded instances included (the goal's kind pins the
            # spine length); defensive check, mirroring the reduce path.
            if len(contexts) != len(args):
                raise UnificationError(
                    f"instance {cls} {head.name} expects {len(contexts)} "
                    f"type argument(s) but the constrained type "
                    f"{type_str(goal)} has {len(args)}", pos)
            body = [(c, arg) for class_set, arg in zip(contexts, args)
                    for c in class_set]
            store.extend(reversed(body))
            if len(store) > self.store_peak:
                self.store_peak = len(store)


__all__ = ["ChrSolver"]
