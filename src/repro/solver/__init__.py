"""Pluggable constraint solvers (ROADMAP item 1).

The paper's section 5 hard-wires context reduction into the unifier as
a recursive ``propagateClasses``/``propagateClassTycon`` pair.  *Type
Classes and Constraint Handling Rules* (Glynn, Stuckey & Sulzmann)
observes that class and instance declarations compile to a CHR program
— superclasses become propagation rules, instances become
simplification rules — whose solver subsumes that path and naturally
extends to multi-parameter classes.

This package puts both behind one narrow seam:

* :class:`ConstraintSolver` — the protocol the unifier dispatches
  through (``Options.solver`` selects the implementation);
* :class:`ReduceSolver` — the paper's recursive reduction, unchanged;
* :class:`~repro.solver.chr.ChrSolver` — the CHR engine: an explicit
  goal store processed by fair rule application under a fuel budget,
  firing exactly the rules :mod:`repro.solver.rules` compiles from the
  :class:`~repro.core.classes.ClassEnv`.

Both solvers agree on every single-parameter program — the CHR engine
applies rules in the reduce path's derivation order, so contexts,
errors, provenance and even the E9 instrumentation counters come out
identical (the fuzz harness's ``--solver-diff`` mode holds us to it).
See docs/SOLVER.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, runtime_checkable

from repro.errors import SourcePos

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.types import Type
    from repro.core.unify import Unifier


@runtime_checkable
class ConstraintSolver(Protocol):
    """The seam between the unifier and context reduction.

    ``solve`` discharges the constraints ``classes`` against ``ty``:
    attaching them to an unbound variable's context, or reducing them
    through the instance table — raising the usual located
    :class:`~repro.errors.TypeCheckError` family when it cannot.  The
    solver may use the *unifier* for trail snapshots, counters and the
    shared variable case (:meth:`Unifier.attach_var_constraint`)."""

    name: str

    def solve(self, unifier: "Unifier", classes: List[str], ty: "Type",
              pos: Optional[SourcePos]) -> None:
        ...  # pragma: no cover - protocol


class ReduceSolver:
    """The paper's §5 recursive context reduction, verbatim."""

    name = "reduce"

    def solve(self, unifier: "Unifier", classes: List[str], ty: "Type",
              pos: Optional[SourcePos]) -> None:
        unifier.reduce_classes(classes, ty, pos)


def make_solver(name: str) -> ConstraintSolver:
    """Instantiate the solver selected by ``Options.solver``."""
    if name == "reduce":
        return ReduceSolver()
    if name == "chr":
        from repro.solver.chr import ChrSolver
        return ChrSolver()
    raise ValueError(
        f"unknown solver {name!r} (expected 'reduce' or 'chr')")


__all__ = ["ConstraintSolver", "ReduceSolver", "make_solver"]
