"""Compiling the class environment into CHR rules, and the static
checks that keep the rule set well-behaved.

Translation scheme (Glynn/Stuckey/Sulzmann)
-------------------------------------------

* ``class (S1, ..., Sk) => C a where ...`` compiles to the propagation
  rules ``C a ==> S1 a, ..., Sk a``.
* ``instance (D1 b1, ...) => C (T b1 ... bk)`` compiles to the
  simplification rule ``C (T b1 ... bk) <=> D1 b1, ...``.
* a multi-parameter ``instance ctx => C p1 ... pn`` (each ``p`` a bare
  variable or a depth-1 constructor application) compiles to
  ``C p1 ... pn <=> ctx``.

:func:`compile_rules` materializes that view of a
:class:`~repro.core.classes.ClassEnv` — the engine itself
(:mod:`repro.solver.chr`) fires the rules straight off the environment
tables, so this explicit form exists for the static checks, docs and
tests.

Static checks (Bottu et al., *Coherence of Type Class Resolution*)
------------------------------------------------------------------

* **Overlap** (confluence): two simplification rules for one class must
  not both match some goal, or resolution would depend on rule order.
  Single-parameter heads are ``(class, tycon)``-unique already
  (``static.duplicate-instance``); for multi-parameter heads,
  :func:`check_mp_instance` rejects any pair of instances whose
  patterns unify position-wise — ``solver.overlap``.
* **Termination**: a rule must shrink its goal.  A head position headed
  by a constructor strictly decreases (contexts may only constrain the
  *variables* of the head), so the only dangerous shape is a rule whose
  every head position is a bare variable while its body is non-empty —
  rejected as ``solver.nonterminating``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SolverNonterminatingError, SolverOverlapError
from repro.core.classes import ClassEnv, MPInstanceInfo
from repro.core.types import TyCon, Type, prune, spine


# --------------------------------------------------------------------------
# Materialized rule set (docs / tests / static checks)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class PropagationRule:
    """``class_name a ==> superclass a`` — from one superclass edge."""

    class_name: str
    superclass: str

    def __str__(self) -> str:
        return f"{self.class_name} a ==> {self.superclass} a"


@dataclass(frozen=True)
class SimplificationRule:
    """``class_name <head> <=> <body>`` — from one instance."""

    class_name: str
    head: Tuple[str, ...]
    body: Tuple[str, ...]

    def __str__(self) -> str:
        head = " ".join(self.head)
        body = ", ".join(self.body) if self.body else "True"
        return f"{self.class_name} {head} <=> {body}"


@dataclass
class RuleSet:
    propagation: List[PropagationRule]
    simplification: List[SimplificationRule]

    def __str__(self) -> str:
        lines = [str(r) for r in self.propagation]
        lines += [str(r) for r in self.simplification]
        return "\n".join(lines)


def _var(i: int) -> str:
    return f"v{i}"


def _mp_pattern_str(pattern: Tuple[Optional[str], Tuple[int, ...]]) -> str:
    tycon, var_idxs = pattern
    if tycon is None:
        return _var(var_idxs[0])
    if not var_idxs:
        return tycon
    return "(" + " ".join([tycon] + [_var(i) for i in var_idxs]) + ")"


def _mp_context_str(entry: Tuple) -> str:
    if entry[0] == "sp":
        _, cls, var_idx = entry
        return f"{cls} {_var(var_idx)}"
    _, cls, var_idxs = entry
    return " ".join([cls] + [_var(i) for i in var_idxs])


def compile_rules(class_env: ClassEnv) -> RuleSet:
    """The CHR program denoted by *class_env*, in declaration order."""
    propagation = [PropagationRule(info.name, sup)
                   for info in class_env.classes.values()
                   for sup in info.superclasses]
    simplification: List[SimplificationRule] = []
    for (tycon, cls), info in class_env.instances.items():
        arity = len(info.context)
        args = [_var(i) for i in range(arity)]
        head = "(" + " ".join([tycon] + args) + ")" if args else tycon
        body = tuple(f"{c} {_var(i)}"
                     for i, classes in enumerate(info.context)
                     for c in classes)
        simplification.append(SimplificationRule(cls, (head,), body))
    for cls, infos in class_env.mp_instances.items():
        for info in infos:
            head = tuple(_mp_pattern_str(p) for p in info.patterns)
            body = tuple(_mp_context_str(e) for e in info.context)
            simplification.append(SimplificationRule(cls, head, body))
    return RuleSet(propagation, simplification)


# --------------------------------------------------------------------------
# Multi-parameter instance matching
# --------------------------------------------------------------------------

def match_mp_instance(class_env: ClassEnv, class_name: str,
                      types: List[Type]
                      ) -> Optional[Tuple[MPInstanceInfo, List[Type]]]:
    """The simplification rule matching ``class_name types``, with the
    types bound to the rule's head variables.

    Returns ``(instance, bindings)`` where ``bindings[i]`` is the type
    the instance's variable *i* matched, or ``None`` when no rule head
    matches.  The overlap check guarantees at most one rule matches, so
    first-match is exhaustive search.
    """
    for info in class_env.mp_instances_of(class_name):
        bindings: List[Optional[Type]] = [None] * info.n_vars
        ok = True
        for pattern, ty in zip(info.patterns, types):
            tycon, var_idxs = pattern
            ty = prune(ty)
            if tycon is None:
                bindings[var_idxs[0]] = ty
                continue
            head, args = spine(ty)
            if not isinstance(head, TyCon) or head.name != tycon \
                    or len(args) != len(var_idxs):
                ok = False
                break
            for idx, arg in zip(var_idxs, args):
                bindings[idx] = arg
        if ok:
            return info, [b for b in bindings if b is not None]
    return None


# --------------------------------------------------------------------------
# Static confluence / termination checks
# --------------------------------------------------------------------------

def _patterns_overlap(a: MPInstanceInfo, b: MPInstanceInfo) -> bool:
    """Whether some goal could match both heads.  Head variables are
    distinct per instance, so two positions unify iff either is a bare
    variable or both name the same constructor."""
    for (tycon_a, _), (tycon_b, _) in zip(a.patterns, b.patterns):
        if tycon_a is None or tycon_b is None:
            continue
        if tycon_a != tycon_b:
            return False
    return True


def check_mp_instance(class_env: ClassEnv, info: MPInstanceInfo) -> None:
    """Reject *info* if its simplification rule breaks confluence or
    termination of the compiled CHR program (run before registration)."""
    if info.context and all(t is None for t, _ in info.patterns):
        rendered = " ".join(_mp_pattern_str(p) for p in info.patterns)
        raise SolverNonterminatingError(
            f"instance {info.class_name} {rendered} does not terminate: "
            f"every head position is a bare type variable but the "
            f"instance context is non-empty, so the simplification rule "
            f"never shrinks its goal", info.pos)
    for existing in class_env.mp_instances_of(info.class_name):
        if _patterns_overlap(existing, info):
            rendered = " ".join(_mp_pattern_str(p) for p in info.patterns)
            prev = " ".join(_mp_pattern_str(p) for p in existing.patterns)
            raise SolverOverlapError(
                f"overlapping instances for class {info.class_name}: "
                f"head {rendered} overlaps the earlier instance head "
                f"{prev}; resolution would not be confluent", info.pos)


__all__ = [
    "PropagationRule",
    "SimplificationRule",
    "RuleSet",
    "compile_rules",
    "match_mp_instance",
    "check_mp_instance",
]
