"""The instrumented pass manager — the compile pipeline's single spine.

Every entry point (``repro.driver.compile_source``, the prelude
snapshot builder, the compile server's warm path) runs the same
registered pass sequence through a
:class:`~repro.pipeline.manager.PassManager` over a
:class:`~repro.pipeline.context.CompileContext`, producing a
:class:`~repro.pipeline.context.PhaseTrace` of per-pass wall time.
"""

from repro.pipeline.context import (
    CompileContext,
    PassTiming,
    PhaseTrace,
    SourceUnit,
)
from repro.pipeline.manager import Pass, PassManager, UnknownPassError
from repro.pipeline.passes import (
    DEFAULT_PASSES,
    TRANSLATE,
    default_pass_manager,
    pass_names,
)

__all__ = [
    "CompileContext",
    "DEFAULT_PASSES",
    "Pass",
    "PassManager",
    "PassTiming",
    "PhaseTrace",
    "SourceUnit",
    "TRANSLATE",
    "UnknownPassError",
    "default_pass_manager",
    "pass_names",
]
