"""Shared state of one compilation as it moves through the passes.

A :class:`CompileContext` is the single mutable value every pass reads
and writes: the source units to compile, the static environment, the
inferencer, the accumulated compiled bindings and — once translation
has run — the core program.  It also carries a :class:`PhaseTrace`
recording where the wall-clock went, pass by pass.

Two constructors cover the two ways a compilation starts:

* :meth:`CompileContext.fresh` — a cold compile: new class/static/type
  environments, primitives bound, nothing compiled yet;
* :meth:`CompileContext.forked` — a warm compile on top of a prelude
  snapshot fork: the environments come pre-seeded and the prelude's
  already-translated core is carried as a *prefix* that the translate
  pass prepends (and whose compiled bindings it skips).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.classes import ClassEnv
from repro.core.infer import (
    CompiledBinding,
    Inferencer,
    InferResult,
    SchemeEntry,
    TypeEnv,
)
from repro.core.static import StaticEnv
from repro.coreir.syntax import CoreBinding, CoreProgram
from repro.options import CompilerOptions
from repro.prelude import primitive_schemes


@dataclass
class PassTiming:
    """Accumulated cost of one pass across its invocations."""

    name: str
    seconds: float = 0.0
    calls: int = 0


class PhaseTrace:
    """Per-pass wall time and invocation counts for one compilation.

    Recorded by the :class:`~repro.pipeline.manager.PassManager`,
    attached to ``CompiledProgram.compile_stats.phases``, surfaced by
    ``repro run --time-passes`` and aggregated across requests by the
    server's metrics.  The trace also carries the unifier counters so
    one object answers both "where did the time go" and "how much
    inference work happened".
    """

    def __init__(self) -> None:
        self._timings: Dict[str, PassTiming] = {}
        #: per-pass work counters beyond wall time, e.g. how many
        #: clones a specialisation pass created: ``{pass: {key: n}}``
        self._counters: Dict[str, Dict[str, int]] = {}
        self.unify_count = 0
        self.context_reductions = 0
        self.constraint_propagations = 0
        self.solver_name = "reduce"

    # ----------------------------------------------------------- recording

    def record(self, name: str, seconds: float) -> None:
        timing = self._timings.get(name)
        if timing is None:
            timing = self._timings[name] = PassTiming(name)
        timing.seconds += seconds
        timing.calls += 1

    def add_counter(self, pass_name: str, key: str, n: int = 1) -> None:
        """Accumulate a named work counter for *pass_name* (shows up
        next to its timing in ``as_dict()`` and the server stats)."""
        bucket = self._counters.setdefault(pass_name, {})
        bucket[key] = bucket.get(key, 0) + n

    def finish(self, unifier: Any) -> None:
        """Copy the unifier counters into the trace (called once, when
        the pipeline hands the context over to the driver).  Counters
        are assigned absolutely (not accumulated) so the call is
        idempotent."""
        self.unify_count = unifier.unify_count
        self.context_reductions = unifier.context_reduction_count
        self.constraint_propagations = unifier.constraint_propagations
        capped = getattr(unifier, "minimize_capped_count", 0)
        if capped:
            self._counters.setdefault("infer", {})[
                "provenance.minimize-capped"] = capped
        solver = getattr(unifier, "solver", None)
        self.solver_name = getattr(solver, "name", "reduce")
        if solver is not None and self.solver_name == "chr":
            bucket = self._counters.setdefault("infer", {})
            bucket["solver.firings"] = solver.firings
            bucket["solver.simplifications"] = solver.simplifications
            bucket["solver.store-peak"] = solver.store_peak

    # ------------------------------------------------------- introspection

    @property
    def timings(self) -> List[PassTiming]:
        """Timings in execution order (dicts preserve insertion)."""
        return list(self._timings.values())

    def names(self) -> List[str]:
        return list(self._timings)

    def seconds(self, name: str) -> float:
        timing = self._timings.get(name)
        return timing.seconds if timing is not None else 0.0

    def total_seconds(self) -> float:
        return sum(t.seconds for t in self._timings.values())

    def counters(self, name: str) -> Dict[str, int]:
        return dict(self._counters.get(name, {}))

    def all_counters(self) -> Dict[str, Dict[str, int]]:
        return {name: dict(bucket)
                for name, bucket in self._counters.items()}

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready summary: ``{pass: {ms, calls, **counters}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for timing in self._timings.values():
            out[timing.name] = {"ms": round(timing.seconds * 1e3, 3),
                                "calls": timing.calls}
        for pass_name, bucket in self._counters.items():
            out.setdefault(pass_name, {}).update(bucket)
        return out

    def pretty(self) -> str:
        """The ``--time-passes`` table."""
        width = max([len(t.name) for t in self._timings.values()] + [5])
        lines = [f"{'pass':<{width}}  {'calls':>5}  {'ms':>9}"]
        for timing in self._timings.values():
            lines.append(f"{timing.name:<{width}}  {timing.calls:>5}  "
                         f"{timing.seconds * 1e3:>9.3f}")
        lines.append(f"{'total':<{width}}  {'':>5}  "
                     f"{self.total_seconds() * 1e3:>9.3f}")
        return "\n".join(lines)


@dataclass
class SourceUnit:
    """One source text moving through the per-unit front-end passes."""

    text: str
    filename: str
    #: the AST after ``parse``, rewritten in place by ``desugar``
    program: Optional[Any] = None


@dataclass
class CompileContext:
    """Everything a pass may read or write."""

    options: CompilerOptions
    units: List[SourceUnit]
    static_env: StaticEnv
    inferencer: Inferencer
    #: all compiled (dictionary-converted) bindings, prelude included
    compiled: List[CompiledBinding] = field(default_factory=list)
    #: the core program; None until the ``translate`` pass has run
    core: Optional[CoreProgram] = None
    #: already-translated core carried in from a snapshot fork; the
    #: translate pass prepends it instead of re-translating
    prefix_core: Tuple[CoreBinding, ...] = ()
    #: how many entries of ``compiled`` the prefix covers (skipped by
    #: the translate pass)
    n_prefix_bindings: int = 0
    trace: PhaseTrace = field(default_factory=PhaseTrace)
    result: Optional[InferResult] = None
    #: extra operator fixities handed to the parser — the module build
    #: threads fixities exported by imported interfaces through here
    fixities: Optional[Dict[str, Any]] = None
    #: True when a module build has resolved this unit's imports against
    #: interfaces; a plain single-file compile rejects ``import`` decls
    #: with a located error (there is nothing to resolve them against)
    imports_resolved: bool = False
    #: names defined outside this compilation unit but legitimately
    #: referenced by its core — values (and generated dictionary/impl/
    #: default bindings) provided by imported module interfaces.  The
    #: core lint treats these as in scope.
    extern_names: Tuple[str, ...] = ()
    #: which module each top-level core binding came from (the prelude's
    #: map to "<prelude>").  Set only by ``link_modules``; its presence
    #: is what arms the link-time ``specialize-xmodule`` pass.
    module_origins: Optional[Dict[str, str]] = None
    #: merged ``name -> Unfolding`` from the linked interfaces — the
    #: serialized bodies the cross-module specializer clones from
    unfoldings: Optional[Dict[str, Any]] = None
    #: scratch state for the core-lint verifier: remembers which binding
    #: objects already linted clean this compile (transforms preserve
    #: object identity for untouched bindings, so most re-lints are
    #: incremental).  Owned entirely by repro.coreir.lint.lint_program.
    lint_cache: Dict = field(default_factory=dict, repr=False)

    # -------------------------------------------------------- constructors

    @classmethod
    def fresh(cls, options: CompilerOptions,
              sources: Sequence[Tuple[str, str]]) -> "CompileContext":
        """A cold compilation: new environments, primitives bound."""
        class_env = ClassEnv(layout=options.dict_layout,
                             single_slot_opt=options.single_slot_opt,
                             solver=options.solver)
        static_env = StaticEnv(class_env)
        global_env = TypeEnv()
        for name, scheme in primitive_schemes().items():
            global_env.bind(name, SchemeEntry(scheme))
        inferencer = Inferencer(static_env, options, global_env)
        units = [SourceUnit(text, filename) for text, filename in sources]
        return cls(options, units, static_env, inferencer)

    @classmethod
    def forked(cls, options: CompilerOptions,
               sources: Sequence[Tuple[str, str]],
               static_env: StaticEnv, inferencer: Inferencer,
               prefix_core: Tuple[CoreBinding, ...] = (),
               n_prefix_bindings: int = 0) -> "CompileContext":
        """A warm compilation on a prelude-snapshot fork."""
        units = [SourceUnit(text, filename) for text, filename in sources]
        return cls(options, units, static_env, inferencer,
                   prefix_core=tuple(prefix_core),
                   n_prefix_bindings=n_prefix_bindings)

    # --------------------------------------------------------------- views

    def con_arity(self) -> Dict[str, int]:
        return {name: info.arity
                for name, info in self.static_env.data_cons.items()}
