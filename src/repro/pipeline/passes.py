"""The registered pass sequence — the pipeline's single source of truth.

The order is the paper's: §4 static analysis, §5/§6 inference with
dictionary conversion, translation to core, selector generation (§4),
then the core-to-core transforms (§8.8, §6.3/§7, §8.4, §9).  The seed
driver hard-coded this sequence twice (``compile_source`` and
``compile_with_snapshot``) and ran the transforms through an opaque
if-chain; here every stage is a :class:`~repro.pipeline.manager.Pass`
in one registry, shared by the driver, the prelude snapshot builder
and the compile server, and individually timed.

The transform passes carry ``enabled`` predicates over
:class:`~repro.options.CompilerOptions`, replacing the old
``_optimize`` conditionals; their imports stay local so disabled
transforms cost nothing at import time (matching the seed behaviour).
"""

from __future__ import annotations

from repro.core.dictionary import generate_selectors
from repro.core.static import analyze_program
from repro.errors import UnknownModuleError
from repro.coreir.syntax import CoreProgram
from repro.coreir.translate import translate_bindings
from repro.lang.desugar import desugar_program
from repro.lang.parser import parse_program
from repro.pipeline.context import CompileContext, SourceUnit
from repro.pipeline.manager import Pass, PassManager

# --------------------------------------------------------------------------
# Front end (per source unit; the prelude is just unit 0)
# --------------------------------------------------------------------------


def _parse(ctx: CompileContext, unit: SourceUnit) -> None:
    unit.program = parse_program(
        unit.text, unit.filename,
        max_depth=getattr(ctx.options, "max_parse_depth", 300),
        fixities=ctx.fixities)
    if unit.program.imports and not ctx.imports_resolved:
        imp = unit.program.imports[0]
        raise UnknownModuleError(
            f"cannot resolve import of module '{imp.module}' in "
            f"single-file compilation; use 'repro build' for "
            f"multi-module programs", imp.pos)


def _desugar(ctx: CompileContext, unit: SourceUnit) -> None:
    unit.program = desugar_program(unit.program,
                                   ctx.options.overload_literals)


def _static(ctx: CompileContext, unit: SourceUnit) -> None:
    analyze_program(unit.program, env=ctx.static_env)


def _install_methods(ctx: CompileContext, unit: SourceUnit) -> None:
    # Classes declared by this unit brought new methods into scope;
    # bind them before inference sees any use site.
    ctx.inferencer.install_methods()


def _infer(ctx: CompileContext, unit: SourceUnit) -> None:
    result = ctx.inferencer.infer_program(unit.program)
    ctx.result = result
    ctx.compiled = result.bindings  # the inferencer accumulates across units


# --------------------------------------------------------------------------
# Middle end (whole program)
# --------------------------------------------------------------------------


def _translate(ctx: CompileContext) -> None:
    fresh = ctx.compiled[ctx.n_prefix_bindings:]
    core = translate_bindings(fresh, ctx.con_arity(),
                              data_cons=ctx.static_env.data_cons)
    if ctx.prefix_core:
        core = CoreProgram(list(ctx.prefix_core) + core.bindings)
    ctx.core = core


def _selectors(ctx: CompileContext) -> None:
    ctx.core.bindings.extend(
        generate_selectors(ctx.static_env.class_env))


# --------------------------------------------------------------------------
# Core transforms (§8/§9), gated on options
# --------------------------------------------------------------------------


def _hoist_dictionaries(ctx: CompileContext) -> None:
    from repro.transform.float_dicts import hoist_dictionaries
    ctx.core = hoist_dictionaries(ctx.core)


def _inner_entry_points(ctx: CompileContext) -> None:
    from repro.transform.entrypoints import add_inner_entry_points
    ctx.core = add_inner_entry_points(ctx.core)


def _constant_dict_reduction(ctx: CompileContext) -> None:
    from repro.transform.constdict import reduce_constant_dictionaries
    ctx.core = reduce_constant_dictionaries(ctx.core)


def _note_specialization(ctx: CompileContext, pass_name: str,
                         report) -> None:
    """Fold a :class:`~repro.transform.specialize.SpecializeReport`
    into the phase trace (clone counters land in
    ``compile_stats.phases`` and the server stats) and the warning
    list when the clone budget ran dry."""
    if report.clones_created:
        ctx.trace.add_counter(pass_name, "clones", report.clones_created)
    if report.from_unfoldings:
        ctx.trace.add_counter(pass_name, "from_unfoldings",
                              report.from_unfoldings)
    if report.budget_exhausted:
        ctx.trace.add_counter(pass_name, "budget_exhausted", 1)
        from repro.errors import SpecializeBudgetWarning
        ctx.inferencer.warnings.append(SpecializeBudgetWarning(
            pass_name, getattr(ctx.options, "specialize_budget", 400)))


def _specialize(ctx: CompileContext) -> None:
    from repro.transform.specialize import Specializer
    spec = Specializer(ctx.core,
                       budget=getattr(ctx.options, "specialize_budget", 400))
    ctx.core = spec.run()
    _note_specialization(ctx, "specialize", spec.report)


def _specialize_xmodule(ctx: CompileContext) -> None:
    from repro.specialize.xlink import xmodule_specialize
    ctx.core, report = xmodule_specialize(
        ctx.core, ctx.module_origins, ctx.unfoldings,
        budget=getattr(ctx.options, "specialize_budget", 400))
    _note_specialization(ctx, "specialize-xmodule", report)


# --------------------------------------------------------------------------
# The registry
# --------------------------------------------------------------------------

#: Name of the last front-end pass; ``run(ctx, stop_after=TRANSLATE)``
#: is the prelude-snapshot prefix (unoptimised, selector-free core).
TRANSLATE = "translate"

DEFAULT_PASSES = (
    Pass("parse", _parse, per_unit=True,
         doc="lex + parse (repro.lang.parser)"),
    Pass("desugar", _desugar, per_unit=True,
         doc="surface syntax to kernel (repro.lang.desugar)"),
    Pass("static", _static, per_unit=True,
         doc="§4 static analysis: data/class/instance collection"),
    Pass("install-methods", _install_methods, per_unit=True,
         doc="bind newly declared class methods into the type env"),
    Pass("infer", _infer, per_unit=True,
         doc="§5/§6 inference + dictionary conversion"),
    Pass(TRANSLATE, _translate,
         doc="kernel to core IR (match compilation)"),
    Pass("selectors", _selectors,
         doc="§4 dictionary selector generation"),
    Pass("hoist-dictionaries", _hoist_dictionaries,
         enabled=lambda o: o.hoist_dictionaries,
         doc="§8.8 float dictionary construction out of lambdas"),
    Pass("inner-entry-points", _inner_entry_points,
         enabled=lambda o: o.inner_entry_points,
         doc="§6.3/§7 skip re-passing dictionaries to recursive calls"),
    Pass("constant-dict-reduction", _constant_dict_reduction,
         enabled=lambda o: o.constant_dict_reduction,
         doc="§8.4 collapse single-overloading local functions"),
    Pass("specialize", _specialize,
         enabled=lambda o: o.specialize,
         doc="§9 type-specific clones at constant dictionaries"),
    Pass("specialize-xmodule", _specialize_xmodule,
         enabled=lambda o: getattr(o, "specialize_xmodule", True),
         # Armed only by link_modules (it alone knows binding origins);
         # single-file and per-module compiles skip it entirely.
         applies=lambda ctx: ctx.module_origins is not None,
         doc="§9 at link time: clone overloaded calls crossing module "
             "boundaries from interface unfoldings"),
)


def _lint_verifier(pass_name: str, ctx: CompileContext) -> bool:
    """Pass-manager verifier: with ``options.lint``, lint the core
    program after every pass that has one (i.e. translate onward —
    the front-end passes have nothing to check yet).  Returns True
    when a lint actually ran, so the manager can time it."""
    if not getattr(ctx.options, "lint", False) or ctx.core is None:
        return False
    from repro.coreir.lint import lint_program
    # Right after translation the selector bindings do not exist yet,
    # but placeholder resolution already references them — they are
    # in-scope-by-promise until the selectors pass delivers them.
    # Module compiles reference names supplied by imported interfaces
    # (values plus generated dictionary/impl/default bindings) that are
    # not bindings of this unit's core.
    extra = list(ctx.extern_names)
    if pass_name == TRANSLATE:
        extra.extend(b.name for b in
                     generate_selectors(ctx.static_env.class_env))
    lint_program(ctx.core, extra_globals=extra,
                 con_arity=ctx.con_arity(),
                 class_env=ctx.static_env.class_env,
                 pass_name=pass_name,
                 cache=ctx.lint_cache)
    return True


def default_pass_manager() -> PassManager:
    """The shared pipeline: driver, snapshot builder and server all run
    through this exact sequence — and, when ``options.lint`` is set,
    the core lint checks the output of every pass from translation on."""
    return PassManager(DEFAULT_PASSES, verifier=_lint_verifier)


def pass_names() -> list:
    """Registered pass names, in execution order (CLI validation)."""
    return [p.name for p in DEFAULT_PASSES]
