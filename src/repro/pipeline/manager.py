"""The pass manager: one instrumented spine for every compilation.

A :class:`Pass` is a named unit of pipeline work with an options
predicate; a :class:`PassManager` executes a registered sequence of
passes over a :class:`~repro.pipeline.context.CompileContext`, timing
every invocation into the context's
:class:`~repro.pipeline.context.PhaseTrace`.

Two pass shapes exist:

* **per-unit** passes (``per_unit=True``) run once per source unit —
  the front end (parse, desugar, static analysis, method installation,
  inference) must process the prelude completely before the user
  program, because inference of unit *n* depends on the environments
  units ``0..n-1`` built.  Consecutive per-unit passes therefore form a
  stage that loops unit-outermost, reproducing the seed driver's
  interleaving exactly;
* **whole-program** passes run once (translation, selector generation,
  the §8/§9 core transforms).

Entry points choose how much of the sequence to run:

* ``run(ctx)`` — the whole pipeline (driver, snapshot fork);
* ``run(ctx, stop_after="translate")`` — a prefix
  (:meth:`PreludeSnapshot.build` stops before selectors and
  optimisation so forks can re-run the shared tail over the full
  program).

An *observer* — ``callable(pass_name, ctx)`` — fires after each pass
completes (after its last unit, for per-unit passes); the CLI's
``--dump-after`` hangs off it.

A *verifier* — also ``callable(pass_name, ctx)``, but installed on the
manager at construction — runs at the same points, *before* any
observer, and is expected to raise when a pass has broken an
invariant.  The core lint (``repro.coreir.lint``) is installed this
way by :func:`repro.pipeline.passes.default_pass_manager`, so with
``options.lint`` every pass boundary in every compilation (driver,
snapshot fork, server, module build) is checked.  Verifier time is
recorded in the trace under ``"lint"``, keeping pass timings honest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.limits import ensure_recursion_headroom, recursion_fence
from repro.options import CompilerOptions
from repro.pipeline.context import CompileContext, SourceUnit


def _always(_options: CompilerOptions) -> bool:
    return True


def _any_context(_ctx: CompileContext) -> bool:
    return True


class UnknownPassError(ValueError):
    """A pass name that is not in the registered sequence."""

    def __init__(self, name: str, names: Sequence[str]) -> None:
        super().__init__(
            f"unknown pass {name!r}; registered passes: {', '.join(names)}")
        self.name = name
        self.names = list(names)


@dataclass(frozen=True)
class Pass:
    """One named pipeline stage.

    ``run`` receives ``(ctx)`` for whole-program passes and
    ``(ctx, unit)`` for per-unit passes.  ``enabled`` gates the pass on
    the compilation options; ``applies`` additionally gates it on the
    live context (e.g. the link-time specializer only applies when the
    linker armed it with module origins).  Passes failing either gate
    are skipped entirely and never appear in the trace.  ``doc`` names
    the paper section the pass realises, for ``--time-passes`` readers.
    """

    name: str
    run: Callable[..., None]
    per_unit: bool = False
    enabled: Callable[[CompilerOptions], bool] = field(default=_always)
    applies: Callable[[CompileContext], bool] = field(default=_any_context)
    doc: str = ""


class PassManager:
    """Executes a pass sequence over a context, recording a trace."""

    def __init__(self, passes: Sequence[Pass],
                 verifier: Optional[
                     Callable[[str, CompileContext], object]] = None) -> None:
        names = [p.name for p in passes]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"duplicate pass names: {sorted(dupes)}")
        self.passes: List[Pass] = list(passes)
        self.verifier = verifier

    # -------------------------------------------------------- introspection

    def names(self) -> List[str]:
        return [p.name for p in self.passes]

    def describe(self) -> List[Tuple[str, str]]:
        """(name, doc) for every registered pass, in order."""
        return [(p.name, p.doc) for p in self.passes]

    # ------------------------------------------------------------ execution

    def run(self, ctx: CompileContext,
            stop_after: Optional[str] = None,
            observer: Optional[Callable[[str, CompileContext], None]] = None
            ) -> CompileContext:
        """Execute the sequence (or its prefix up to *stop_after*)."""
        ensure_recursion_headroom()
        if stop_after is not None and stop_after not in self.names():
            raise UnknownPassError(stop_after, self.names())
        for group in self._stages():
            stop_here = False
            if stop_after is not None:
                group_names = [p.name for p in group]
                if stop_after in group_names:
                    group = group[:group_names.index(stop_after) + 1]
                    stop_here = True
            enabled = [p for p in group
                       if p.enabled(ctx.options) and p.applies(ctx)]
            if group and group[0].per_unit:
                for i, unit in enumerate(ctx.units):
                    last = i == len(ctx.units) - 1
                    for p in enabled:
                        self._run_pass(p, ctx, unit)
                        if last:
                            self._verify(p.name, ctx)
                            if observer is not None:
                                observer(p.name, ctx)
            else:
                for p in enabled:
                    self._run_pass(p, ctx, None)
                    self._verify(p.name, ctx)
                    if observer is not None:
                        observer(p.name, ctx)
            if stop_here:
                break
        ctx.trace.finish(ctx.inferencer.unifier)
        return ctx

    def _stages(self) -> List[List[Pass]]:
        """The sequence as maximal runs of same-shaped passes: each run
        of consecutive per-unit passes forms one unit-outer stage."""
        stages: List[List[Pass]] = []
        for p in self.passes:
            if stages and stages[-1][0].per_unit and p.per_unit:
                stages[-1].append(p)
            else:
                stages.append([p])
        return stages

    def _run_pass(self, p: Pass, ctx: CompileContext,
                  unit: Optional[SourceUnit]) -> None:
        t0 = time.perf_counter()
        try:
            # The fence is the catch-all beneath the per-engine depth
            # budgets: whatever slips past them surfaces as a located
            # ResourceLimitError naming the pass, never a raw
            # RecursionError out of a long-lived host.
            with recursion_fence(f"the '{p.name}' pass"):
                if p.per_unit:
                    p.run(ctx, unit)
                else:
                    p.run(ctx)
        finally:
            ctx.trace.record(p.name, time.perf_counter() - t0)

    def _verify(self, pass_name: str, ctx: CompileContext) -> None:
        # The verifier returns truthy when it actually checked
        # something; a disabled or not-yet-applicable verifier leaves
        # no "lint" row in the trace.
        if self.verifier is None:
            return
        t0 = time.perf_counter()
        with recursion_fence(f"verifying the '{pass_name}' pass"):
            ran = self.verifier(pass_name, ctx)
        if ran:
            ctx.trace.record("lint", time.perf_counter() - t0)
