"""The compilation service: infrastructure that turns the one-shot
compiler into a system that can serve sustained traffic.

* :mod:`repro.service.snapshot` — compile the prelude once into an
  immutable :class:`~repro.service.snapshot.PreludeSnapshot`; fork it
  cheaply under every user compile;
* :mod:`repro.service.cache` — a content-addressed compile cache keyed
  by ``(source, options, prelude)`` digests, with LRU eviction and an
  optional on-disk tier shared across processes;
* :mod:`repro.service.server` — the asyncio front door: rate limits,
  limit ceilings, an event-loop fast path and admission control ahead
  of an inline thread-pool backend or a sharded process fleet;
* :mod:`repro.service.worker` — the worker-process pool behind the
  sharded backend and distributed module builds: content-hash
  routing, crash detection, respawn and resubmission;
* :mod:`repro.service.metrics` — counters, gauges and latency
  histograms, with count-weighted cross-process merging behind the
  server's ``stats`` request.
"""

from repro.service.cache import CacheStats, CompileCache, cache_key
from repro.service.metrics import (
    LatencyHistogram,
    Metrics,
    merge_cache_snapshots,
    merge_metric_snapshots,
    merge_summaries,
)
from repro.service.server import (
    PROTOCOL_VERSION,
    SERVER_VERSION,
    CompileServer,
    CompileService,
    PipelinedClient,
    ServiceClient,
)
from repro.service.snapshot import (
    PreludeSnapshot,
    clear_default_snapshots,
    compile_with_snapshot,
    get_default_snapshot,
    prelude_fingerprint,
)
from repro.service.worker import WorkerPool

__all__ = [
    "CacheStats",
    "CompileCache",
    "cache_key",
    "LatencyHistogram",
    "Metrics",
    "merge_cache_snapshots",
    "merge_metric_snapshots",
    "merge_summaries",
    "PROTOCOL_VERSION",
    "SERVER_VERSION",
    "CompileServer",
    "CompileService",
    "PipelinedClient",
    "ServiceClient",
    "PreludeSnapshot",
    "clear_default_snapshots",
    "compile_with_snapshot",
    "get_default_snapshot",
    "prelude_fingerprint",
    "WorkerPool",
]
