"""The compilation service: infrastructure that turns the one-shot
compiler into a system that can serve sustained traffic.

* :mod:`repro.service.snapshot` — compile the prelude once into an
  immutable :class:`~repro.service.snapshot.PreludeSnapshot`; fork it
  cheaply under every user compile;
* :mod:`repro.service.cache` — a content-addressed compile cache keyed
  by ``(source, options, prelude)`` digests, with LRU eviction and an
  optional on-disk tier;
* :mod:`repro.service.server` — a long-lived compile/eval server
  speaking line-delimited JSON over stdio or TCP;
* :mod:`repro.service.metrics` — request counters and latency
  histograms behind the server's ``stats`` request.
"""

from repro.service.cache import CacheStats, CompileCache, cache_key
from repro.service.metrics import LatencyHistogram, Metrics
from repro.service.server import (
    CompileServer,
    CompileService,
    ServiceClient,
)
from repro.service.snapshot import (
    PreludeSnapshot,
    clear_default_snapshots,
    compile_with_snapshot,
    get_default_snapshot,
    prelude_fingerprint,
)

__all__ = [
    "CacheStats",
    "CompileCache",
    "cache_key",
    "LatencyHistogram",
    "Metrics",
    "CompileServer",
    "CompileService",
    "ServiceClient",
    "PreludeSnapshot",
    "clear_default_snapshots",
    "compile_with_snapshot",
    "get_default_snapshot",
    "prelude_fingerprint",
]
