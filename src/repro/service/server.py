"""A long-lived compile/eval server: async front door, sharded workers.

The server answers requests over a line-delimited JSON protocol, either
on a TCP socket or on stdio::

    -> {"id": 1, "op": "compile", "source": "main = 1 + 2"}
    <- {"id": 1, "ok": true, "result": {"program": "ab12...", ...}}

Operations: ``compile``, ``build``, ``eval``, ``typeof``, ``info``,
``stats``, ``ping``, ``shutdown`` (see docs/SERVICE.md for the full
schema).

Architecture — an **asyncio front door** plus one of two backends:

* *inline* (``server_shards = 0``, the default): one in-process
  :class:`CompileService` — prelude snapshot, compile cache, metrics —
  with requests handled on a pool of big-stack threads;
* *sharded* (``server_shards = N``): N worker *processes*
  (:mod:`repro.service.worker`), each a full ``CompileService``,
  routed by **content hash** — the same source or program handle always
  lands on the same worker, whose in-memory caches stay hot, while the
  shared on-disk cache tier makes any worker's compile a disk hit for
  all the others.

The front door applies, in order, per request: per-connection
token-bucket **rate limiting** (``server_rate_limit``), the
client-supplied limit **ceilings** (``request_timeout_ceiling`` etc. —
out-of-range values are rejected with ``service.limit-exceeded``), an
event-loop **fast path** for cached sub-millisecond evals
(``server_fastpath_ms``), and per-shard **admission control**
(``server_queue_depth`` outstanding requests per shard; excess is shed
with ``service.overloaded``).  A per-request timeout produces a
structured ``timeout`` error while the server keeps running — in
sharded mode the stuck worker is killed and respawned, and the
requests queued behind it are resubmitted.  ``drain()`` (and SIGTERM
under ``repro serve``) stops accepting, lets in-flight work finish
within ``server_drain_grace`` seconds, then stops.

Errors never kill the process: compiler errors, malformed JSON and
unknown operations all come back as ``{"ok": false, "error": ...}``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import socket
import sys
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor, TimeoutError as FutureTimeout
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError, ServiceLimitError
from repro.options import CompilerOptions, options_fingerprint
from repro.service.cache import CompileCache, cache_key, resolve_cache_dir
from repro.service.metrics import (
    Metrics,
    merge_cache_snapshots,
    merge_metric_snapshots,
)
from repro.service.snapshot import get_default_snapshot

PROTOCOL_VERSION = 1
#: serving-stack version, reported by ``ping`` (bumped with the
#: sharded front door; the *protocol* is unchanged)
SERVER_VERSION = "2.0"


def _error(kind: str, message: str, code: Optional[str] = None,
           **extra: Any) -> Dict[str, Any]:
    """The error envelope: ``type`` (legacy, human-oriented), ``code``
    (stable, machine-readable — see docs/SERVICE.md), ``message`` and
    optionally ``pos``."""
    out: Dict[str, Any] = {"type": kind, "code": code or kind,
                           "message": message, "pos": None}
    out.update(extra)
    return out


def _repro_error_envelope(exc: ReproError) -> Dict[str, Any]:
    """``{code, message, pos}`` from the error itself; ``type`` (the
    class name) is kept for older clients."""
    error = exc.to_json()
    error["type"] = type(exc).__name__
    if getattr(exc, "limit", None):
        error["limit"] = exc.limit
    return error


class ProtocolError(Exception):
    """A malformed request (bad JSON, missing field, unknown op)."""


class CompileService:
    """Transport-independent request handling: snapshot + cache + ops.

    Shared by the TCP/stdio front doors, the sharded worker processes
    and direct in-process use (``repro batch`` drives it without any
    socket)."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options if options is not None else CompilerOptions()
        self.snapshot = get_default_snapshot(self.options)
        self.cache = CompileCache(
            capacity=self.options.cache_size,
            disk_dir=resolve_cache_dir(self.options),
            disk_budget=self.options.cache_disk_budget)
        self.metrics = Metrics()
        #: which shard this service is, inside a worker process
        self.shard_index: Optional[int] = None
        #: ``(program key, expr) -> [CompiledExpr, ema_seconds]`` —
        #: repeated evals of one expression skip the ~0.3ms
        #: parse/infer/translate entirely and reuse a warm evaluator
        self._expr_cache: "OrderedDict[Tuple[str, str], List[Any]]" = \
            OrderedDict()
        #: ``(program key, expr) -> printed type`` — ``typeof`` is pure
        #: per program, so repeats skip inference entirely
        self._typeof_cache: "OrderedDict[Tuple[str, str], str]" = \
            OrderedDict()
        self._expr_lock = threading.Lock()
        #: the fingerprints are pure functions of the options/prelude;
        #: computing them per ping would put a sha256 on the hot path
        self._options_fp = options_fingerprint(self.options)

    # ------------------------------------------------------------- programs

    def compile(self, source: str,
                filename: str = "<request>") -> Tuple[str, Any, bool]:
        """Compile *source* through the cache; returns
        ``(key, program, was_cached)``."""
        key = cache_key(source, self.options, self.snapshot.fingerprint)
        program = self.cache.get(key)
        if program is not None:
            self.metrics.incr("cache_hits")
            return key, program, True
        with self.metrics.time("compile_miss"):
            from repro.driver import compile_source
            program = compile_source(source, self.options, filename=filename,
                                     snapshot=self.snapshot)
        self.cache.put(key, program)
        self.metrics.incr("cache_misses")
        # Per-phase latency: every miss contributes one sample per
        # pipeline pass (programs unpickled from an older disk cache
        # may predate the trace — hence the getattr).
        trace = getattr(program.compile_stats, "phases", None)
        if trace is not None:
            self.metrics.record_phases(trace)
        return key, program, False

    def _resolve_program(self, request: Dict[str, Any]) -> Tuple[str, Any]:
        """The program a request targets: by ``program`` handle (cache
        key) or by ``source`` (compiled on demand)."""
        handle = request.get("program")
        if handle is not None:
            program = self.cache.get(handle)
            if program is not None:
                return handle, program
            if "source" not in request:
                raise ProtocolError(
                    f"unknown program {handle!r} (evicted or never "
                    f"compiled); re-send with its source")
        source = request.get("source")
        if source is None:
            raise ProtocolError(
                "request needs a 'program' handle or a 'source' string")
        key, program, _ = self.compile(source)
        return key, program

    def _resolve_key(self, request: Any) -> Optional[str]:
        """The cache key :meth:`_resolve_program` would resolve the
        request to, computed *without* compiling anything.

        Mirrors ``_resolve_program``'s precedence: a ``program`` handle
        wins only while it is still cached — an evicted handle falls
        back to the ``source`` content address (the key a recompile
        would produce).  The fast path keys its memo probes off this,
        so its decision always matches the key the slow-path op will
        use; probing with the raw request handle used to count a
        ``fastpath_hits`` and then miss the memo whenever the handle
        had been evicted but the request carried a source.  Returns
        None when the key cannot be known without compiling."""
        handle = request.get("program")
        if isinstance(handle, str) and self.cache.contains(handle):
            return handle
        source = request.get("source")
        if isinstance(source, str):
            return cache_key(source, self.options, self.snapshot.fingerprint)
        # Evicted handle, no source: the slow path will reject this
        # request with the canonical "unknown program" error.
        return None

    # ------------------------------------------- expression compilation memo

    def _compiled_entry(self, key: str, program: Any,
                        expr: str) -> Optional[List[Any]]:
        """The memoised ``[CompiledExpr, ema_seconds]`` entry for
        ``(key, expr)``, compiling on a miss; None when the memo is
        disabled.  ``ema_seconds`` (None until the first run) feeds the
        fast-path decision in :meth:`try_handle_fast`."""
        capacity = self.options.server_expr_cache
        if capacity <= 0:
            return None
        memo_key = (key, expr)
        with self._expr_lock:
            entry = self._expr_cache.get(memo_key)
            if entry is not None:
                self._expr_cache.move_to_end(memo_key)
                self.metrics.incr("expr_cache_hits")
                return entry
        compiled = program.compile_expr(expr)
        entry = [compiled, None]
        with self._expr_lock:
            existing = self._expr_cache.get(memo_key)
            if existing is not None:
                return existing
            self._expr_cache[memo_key] = entry
            while len(self._expr_cache) > capacity:
                self._expr_cache.popitem(last=False)
        self.metrics.incr("expr_cache_misses")
        return entry

    def _memoized_type(self, key: str, program: Any, expr: str) -> str:
        """``typeof`` through the memo — inference is pure per
        program, so one expression infers once."""
        capacity = self.options.server_expr_cache
        if capacity <= 0:
            return program.type_of(expr)
        memo_key = (key, expr)
        with self._expr_lock:
            printed = self._typeof_cache.get(memo_key)
            if printed is not None:
                self._typeof_cache.move_to_end(memo_key)
                self.metrics.incr("expr_cache_hits")
                return printed
        printed = program.type_of(expr)
        with self._expr_lock:
            self._typeof_cache[memo_key] = printed
            while len(self._typeof_cache) > capacity:
                self._typeof_cache.popitem(last=False)
        self.metrics.incr("expr_cache_misses")
        return printed

    def try_handle_fast(self, request: Any) -> Optional[Dict[str, Any]]:
        """Handle *request* synchronously if it is provably cheap: a
        ``ping``, a memoized ``typeof``, or an ``eval`` by program
        handle whose expression is already in the memo and whose
        running average completed under ``server_fastpath_ms``.  The
        front door calls this on the event loop itself, skipping the
        executor hop for the hot path.  Returns None when the request
        must take the slow path."""
        if not isinstance(request, dict):
            return None
        op = request.get("op")
        if op == "ping":
            self.metrics.incr("fastpath_hits")
            return self.handle(request)
        if op not in ("eval", "typeof", "type_of"):
            return None
        threshold = self.options.server_fastpath_ms / 1e3
        if threshold <= 0 or self.options.server_expr_cache <= 0:
            return None
        handle = request.get("program")
        expr = request.get("expr")
        if not isinstance(expr, str):
            return None
        if handle is not None and not isinstance(handle, str):
            return None
        # Probe the memos with the key the slow-path op will actually
        # use (_resolve_program's precedence), not the raw request
        # handle — a stale handle plus a source resolves to the source's
        # content address, and probing with the handle would claim a
        # fast-path hit only to miss the memo (and run inference or
        # compilation on the event loop).  Computing it is a hash at
        # worst, and a cache membership stat when a handle is given.
        key = self._resolve_key(request)
        if key is None:
            return None
        if op in ("typeof", "type_of"):
            with self._expr_lock:
                memoized = (key, expr) in self._typeof_cache
            # The memo can outlive the program itself (separate LRUs):
            # with the program gone the slow-path op would recompile,
            # which must not happen on the event loop.
            if not memoized or not self.cache.contains(key):
                return None
            self.metrics.incr("fastpath_hits")
            return self.handle(request)
        if "step_limit" in request or "max_depth" in request:
            return None
        with self._expr_lock:
            entry = self._expr_cache.get((key, expr))
        if entry is None or entry[1] is None or entry[1] > threshold:
            return None
        if not self.cache.contains(key):
            return None
        self.metrics.incr("fastpath_hits")
        return self.handle(request)

    # ------------------------------------------------------------- requests

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request dict to a response dict (never raises)."""
        request_id = request.get("id") if isinstance(request, dict) else None
        self.metrics.incr("requests_total")
        try:
            if not isinstance(request, dict):
                raise ProtocolError("request must be a JSON object")
            op = request.get("op")
            if not isinstance(op, str):
                raise ProtocolError("request needs an 'op' string")
            op = {"type_of": "typeof"}.get(op, op)
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            with self.metrics.time(op):
                result = handler(request)
            return {"id": request_id, "ok": True, "result": result}
        except ProtocolError as exc:
            return self._failure(request_id, _error("protocol", str(exc)))
        except ReproError as exc:
            return self._failure(request_id, _repro_error_envelope(exc))
        except Exception as exc:  # never let a request kill the server
            return self._failure(
                request_id, _error("internal", f"{type(exc).__name__}: {exc}"))

    def _failure(self, request_id: Any,
                 error: Dict[str, Any]) -> Dict[str, Any]:
        self.metrics.incr("errors_total")
        # Per-code counters surface in ``stats`` so operators can see
        # *what kind* of failures a fleet is eating (e.g. a spike in
        # ``errors.limit`` means someone is feeding us pathological
        # inputs).
        self.metrics.incr(f"errors.{error.get('code') or 'error'}")
        return {"id": request_id, "ok": False, "error": error}

    # ------------------------------------------------------------------ ops

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Health check: cheap enough for load balancers and the
        distributed build scheduler to probe; the fingerprints let a
        router confirm two servers are interchangeable."""
        return {
            "pong": True,
            "protocol": PROTOCOL_VERSION,
            "version": SERVER_VERSION,
            "shards": self.options.server_shards,
            "options_fingerprint": self._options_fp,
            "prelude_fingerprint": self.snapshot.fingerprint,
        }

    def _op_compile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        source = request.get("source")
        if not isinstance(source, str):
            raise ProtocolError("'compile' needs a 'source' string")
        key, program, cached = self.compile(
            source, filename=request.get("filename", "<request>"))
        result: Dict[str, Any] = {
            "program": key,
            "cached": cached,
            "warnings": [str(w) for w in program.warnings],
        }
        if request.get("schemes", True):
            result["schemes"] = {
                name: str(scheme)
                for name, scheme in sorted(program.schemes.items())
                if "$" not in name and "@" not in name}
        return result

    def _eval_overrides(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Client-supplied evaluator limits, validated against the
        server's configured ceilings.  A request may *lower* its
        budgets freely; asking for more than the operator allowed is a
        ``service.limit-exceeded`` rejection, not a silent clamp — the
        client must know its request did not run under the limits it
        asked for."""
        overrides: Dict[str, Any] = {}
        for name, ceiling in (("step_limit", self.options.eval_step_limit),
                              ("max_depth",
                               getattr(self.options, "eval_depth_limit",
                                       200_000))):
            if name not in request:
                continue
            try:
                value = int(request[name])
            except (TypeError, ValueError):
                raise ProtocolError(f"'{name}' must be an integer")
            if ceiling and value > ceiling:
                raise ServiceLimitError(name, value, ceiling)
            overrides[name] = value
        return overrides

    def _op_eval(self, request: Dict[str, Any]) -> Dict[str, Any]:
        expr = request.get("expr")
        if not isinstance(expr, str):
            raise ProtocolError("'eval' needs an 'expr' string")
        overrides = self._eval_overrides(request)
        key, program = self._resolve_program(request)
        from repro.cli import render
        entry = self._compiled_entry(key, program, expr)
        t0 = time.perf_counter()
        if entry is None:
            value = program.eval(expr, big_stack=False, **overrides)
        else:
            value = program.eval_compiled(entry[0], big_stack=False,
                                          reuse=not overrides, **overrides)
        elapsed = time.perf_counter() - t0
        if entry is not None:
            # Exponential moving average of this expression's latency;
            # the fast path trusts it to run cheap requests inline.
            # Timed across *either* branch: when eval falls back to
            # ``program.eval`` the estimate must still age, or one slow
            # fallback-path expression could keep a stale "fast"
            # verdict forever.
            entry[1] = elapsed if entry[1] is None \
                else 0.8 * entry[1] + 0.2 * elapsed
        result: Dict[str, Any] = {"program": key, "value": render(value)}
        stats = program.last_stats
        if stats is not None:
            result["stats"] = stats.snapshot()
        return result

    def _op_typeof(self, request: Dict[str, Any]) -> Dict[str, Any]:
        expr = request.get("expr")
        if not isinstance(expr, str):
            raise ProtocolError("'typeof' needs an 'expr' string")
        key, program = self._resolve_program(request)
        return {"program": key,
                "type": self._memoized_type(key, program, expr)}

    def _op_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("name")
        kinds = bool(request.get("kinds"))
        if not isinstance(name, str) and not kinds:
            raise ProtocolError("'info' needs a 'name' string and/or "
                                "'kinds': true")
        key, program = self._resolve_program(request)
        result: Dict[str, Any] = {"program": key}
        if isinstance(name, str):
            result["info"] = program.info(name)
        if kinds:
            result["kinds"] = program.kinds_listing()
        return result

    def _op_build(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Build a multi-module program from inline sources: resolve
        the import DAG, compile each module separately (through the
        shared artifact cache, so repeated builds are incremental),
        link, and cache the linked program under a content key the
        client can hand to ``eval``/``typeof``/``info``."""
        from repro.modules.build import ModuleBuilder, module_cache_key
        from repro.modules.resolve import scan_inline_modules
        modules = request.get("modules")
        if not isinstance(modules, list) or not modules:
            raise ProtocolError("'build' needs a non-empty 'modules' list")
        for spec in modules:
            if not isinstance(spec, dict) or \
                    not isinstance(spec.get("source"), str):
                raise ProtocolError(
                    "each 'modules' entry needs a 'source' string "
                    "(plus optional 'name'/'filename')")
        jobs = request.get("jobs")
        if jobs is not None:
            try:
                jobs = int(jobs)
            except (TypeError, ValueError):
                raise ProtocolError("'jobs' must be an integer")
        graph = scan_inline_modules(
            modules, max_depth=self.options.max_parse_depth)
        builder = ModuleBuilder(self.options, self.snapshot,
                                cache=self.cache)
        build = builder.build(graph, jobs=jobs)
        program = build.program
        # Address the *linked* program by the build's content.  The
        # surface fingerprint alone is NOT enough: a body-only edit
        # keeps it stable (by design — that is the rebuild cut-off) but
        # changes the linked program, so the key also pins each
        # module's source digest and unfolding digest.
        key = module_cache_key(
            "<link>", self.options, self.snapshot.fingerprint,
            [(name, "{fingerprint}:{source_sha}:{unfold_fp}".format(
                **{field: build.modules[name].get(field, "")
                   for field in ("fingerprint", "source_sha",
                                 "unfold_fp")}))
             for name in build.order])
        self.cache.put(key, program)
        trace = getattr(program.compile_stats, "phases", None)
        if trace is not None:
            self.metrics.record_phases(trace)
        result: Dict[str, Any] = {
            "program": key,
            "build": build.stats(),
            "warnings": [str(w) for w in program.warnings],
        }
        if trace is not None and hasattr(trace, "all_counters"):
            specialization = {name: dict(bucket)
                             for name, bucket in trace.all_counters().items()
                             if name.startswith("specialize")}
            if specialization:
                result["specialization"] = specialization
        if request.get("schemes", True):
            result["schemes"] = {
                name: str(scheme)
                for name, scheme in sorted(program.schemes.items())
                if "$" not in name and "@" not in name}
        return result

    def _op_check(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Type-check a module set without linking or evaluating.

        Shares :meth:`_op_build`'s artifact cache, so a warm re-check
        after editing one module body re-infers that module alone —
        every dependent's closure key is cut off at the unchanged
        interface fingerprint.  Unlike ``build`` the reply is *never*
        an error envelope for a per-module compile failure: the check
        loop is tolerant, and each failed module contributes one entry
        to ``diagnostics`` (the standard error envelope — including
        the multi-position ``positions`` list — plus the module name),
        so a client sees every independent error in one round trip.
        """
        from repro.modules.build import ModuleBuilder
        from repro.modules.resolve import scan_inline_modules
        modules = request.get("modules")
        if not isinstance(modules, list) or not modules:
            raise ProtocolError("'check' needs a non-empty 'modules' list")
        for spec in modules:
            if not isinstance(spec, dict) or \
                    not isinstance(spec.get("source"), str):
                raise ProtocolError(
                    "each 'modules' entry needs a 'source' string "
                    "(plus optional 'name'/'filename')")
        graph = scan_inline_modules(
            modules, max_depth=self.options.max_parse_depth)
        builder = ModuleBuilder(self.options, self.snapshot,
                                cache=self.cache)
        checked = builder.check(graph)
        diagnostics = [dict(_repro_error_envelope(exc), module=name)
                       for name, exc in checked.diagnostics]
        # Fleet visibility: how many diagnostics this server is
        # producing, alongside the per-verb ``check`` latency histogram
        # recorded by handle()'s timer.
        self.metrics.incr("check.requests")
        self.metrics.incr("check.diagnostics", len(diagnostics))
        return {"ok": checked.ok,
                "check": checked.stats(),
                "diagnostics": diagnostics}

    def _op_compile_module(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Compile one module against its imports' interfaces — the
        distributed-build op (:mod:`repro.modules.build` with a worker
        pool).  It carries live :class:`ModuleSource` /
        :class:`ModuleInterface` objects, so it is served only over the
        worker-pool pipe transport, never parsed from JSON."""
        from repro.modules.build import compile_module as compile_one
        from repro.modules.resolve import ModuleSource
        msrc = request.get("module")
        interfaces = request.get("interfaces") or []
        if not isinstance(msrc, ModuleSource):
            raise ProtocolError(
                "'compile_module' carries live module objects and is only "
                "available over the worker-pool transport")
        artifact = compile_one(msrc, interfaces, self.options, self.snapshot)
        return {"module": msrc.name, "artifact": artifact}

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self.stats()

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"shutting_down": True}

    def stats(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "version": SERVER_VERSION,
            "server": self.metrics.snapshot(),
            "cache": self.cache.snapshot(),
            "snapshot": {
                "fingerprint": self.snapshot.fingerprint,
                "prelude_bindings": self.snapshot.n_bindings,
            },
        }
        if self.shard_index is not None:
            out["shard"] = self.shard_index
        return out


# ---------------------------------------------------------------------------
# Front door
# ---------------------------------------------------------------------------


class _TokenBucket:
    """Per-connection request rate limiter (classic token bucket)."""

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.capacity = burst if burst > 0 else max(1.0, 2.0 * rate)
        self.tokens = self.capacity
        self._t = time.monotonic()

    def take(self) -> bool:
        now = time.monotonic()
        self.tokens = min(self.capacity,
                          self.tokens + (now - self._t) * self.rate)
        self._t = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class CompileServer:
    """Line-delimited JSON over TCP (or stdio via :meth:`serve_stdio`).

    The TCP transport is an asyncio event loop on a dedicated
    background thread: connections are cheap coroutines, requests on
    one connection pipeline freely (responses match by ``id``), and
    the loop applies rate limiting, the limit ceilings, the fast path
    and admission control before any thread or process is involved.

    ``server_shards = 0`` (default) handles requests on an in-process
    big-stack thread pool; ``server_shards = N`` routes them by content
    hash to N worker processes (see module docstring).  Passing an
    explicit *service* always selects the inline backend.
    """

    def __init__(self, options: Optional[CompilerOptions] = None,
                 service: Optional[CompileService] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None) -> None:
        if service is not None:
            self.options = service.options
        else:
            self.options = options if options is not None else \
                CompilerOptions()
        self.sharded = service is None and self.options.server_shards > 0
        self.pool = None
        self._executor: Optional[ThreadPoolExecutor] = None
        if self.sharded:
            from repro.service.worker import WorkerPool
            self.pool = WorkerPool(self.options)
            self.service: Optional[CompileService] = None
            self.snapshot_fp = self.pool.snapshot.fingerprint
            self.prelude_bindings = self.pool.snapshot.n_bindings
            self.metrics = Metrics()
        else:
            self.service = service if service is not None \
                else CompileService(self.options)
            self.snapshot_fp = self.service.snapshot.fingerprint
            self.prelude_bindings = self.service.snapshot.n_bindings
            self.metrics = self.service.metrics
            self._executor = self._make_pool(
                max(1, self.options.server_workers))
        self._options_fp = options_fingerprint(self.options)
        self.host = host if host is not None else self.options.server_host
        self.port = port if port is not None else self.options.server_port
        self._shutdown = threading.Event()
        self._stopping = threading.Lock()
        self._stopped = False
        self._draining = False
        self._outstanding = 0  # inline admission counter (loop thread only)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._aserver: Optional[asyncio.AbstractServer] = None

    @staticmethod
    def _make_pool(workers: int, stack_mb: int = 512) -> ThreadPoolExecutor:
        """A thread pool whose workers all have big stacks.

        Interpreted evaluation nests deeply (see
        :func:`repro.coreir.eval.with_big_stack`); a default-sized
        thread stack overflows — fatally, below Python — on programs the
        compiler handles fine.  Stack size is fixed at thread creation,
        and the executor spawns threads lazily, so every worker is
        forced into existence here, inside the enlarged-stack window.
        The memory is virtual: untouched pages cost nothing.
        """
        if sys.getrecursionlimit() < 1_000_000:
            sys.setrecursionlimit(1_000_000)
        old = threading.stack_size(stack_mb * 1024 * 1024)
        try:
            pool = ThreadPoolExecutor(max_workers=workers,
                                      thread_name_prefix="repro-worker")
            ready = threading.Barrier(workers + 1)
            futures = [pool.submit(ready.wait) for _ in range(workers)]
            ready.wait()
            for future in futures:
                future.result()
        finally:
            threading.stack_size(old)
        return pool

    # --------------------------------------------------------------- life

    def start(self) -> int:
        """Bind and start accepting on a background event loop; returns
        the bound port (useful with ``server_port = 0``)."""
        listener = socket.create_server((self.host, self.port))
        self.port = listener.getsockname()[1]
        loop = asyncio.new_event_loop()
        self._loop = loop
        # The loop thread gets a big stack too: fast-path evals run
        # directly on it.
        old = threading.stack_size(512 * 1024 * 1024)
        try:
            thread = threading.Thread(target=self._loop_main,
                                      name="repro-front", daemon=True)
            thread.start()
        finally:
            threading.stack_size(old)
        self._loop_thread = thread
        ready = asyncio.run_coroutine_threadsafe(
            self._start_async(listener), loop)
        try:
            ready.result(timeout=30)
        except BaseException:
            listener.close()
            self.stop()
            raise
        return self.port

    def _loop_main(self) -> None:
        if sys.getrecursionlimit() < 1_000_000:
            sys.setrecursionlimit(1_000_000)
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    #: per-line read limit — request lines carry whole module sources
    _READ_LIMIT = 32 * 1024 * 1024

    async def _start_async(self, listener: socket.socket) -> None:
        self._aserver = await asyncio.start_server(self._on_client,
                                                   sock=listener,
                                                   limit=self._READ_LIMIT)

    def stop(self) -> None:
        with self._stopping:
            if self._stopped:
                return
            self._stopped = True
        loop = self._loop
        if loop is not None and loop.is_running():
            if threading.current_thread() is self._loop_thread:
                # Called from a request handler (shutdown op): finish
                # teardown on a plain thread so the loop can unwind.
                threading.Thread(target=self._teardown, name="repro-stop",
                                 daemon=True).start()
                return
            self._teardown()
            return
        self._finalize()

    def _teardown(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            closed = asyncio.run_coroutine_threadsafe(
                self._close_listener(), loop)
            try:
                closed.result(timeout=5)
            except BaseException:
                pass
            loop.call_soon_threadsafe(loop.stop)
            thread = self._loop_thread
            if thread is not None and \
                    thread is not threading.current_thread():
                thread.join(timeout=5)
        self._finalize()

    def _finalize(self) -> None:
        self._shutdown.set()
        if self.pool is not None:
            self.pool.stop()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    async def _close_listener(self) -> None:
        server, self._aserver = self._aserver, None
        if server is not None:
            server.close()
            try:
                await asyncio.wait_for(server.wait_closed(), timeout=2.0)
            except (asyncio.TimeoutError, Exception):
                pass

    def drain(self, grace: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting connections, give
        in-flight requests up to *grace* seconds
        (``server_drain_grace``) to finish, then stop.  ``repro
        serve`` wires SIGTERM to this."""
        if grace is None:
            grace = self.options.server_drain_grace
        self._draining = True
        loop = self._loop
        if loop is not None and loop.is_running():
            closed = asyncio.run_coroutine_threadsafe(
                self._close_listener(), loop)
            try:
                closed.result(timeout=5)
            except BaseException:
                pass
            deadline = time.monotonic() + max(0.0, grace)
            while time.monotonic() < deadline:
                busy = self.pool.total_outstanding() if self.sharded \
                    else self._outstanding
                if not busy:
                    break
                time.sleep(0.05)
        self.stop()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server shuts down; True if it did."""
        return self._shutdown.wait(timeout)

    # --------------------------------------------------------- connections

    async def _on_client(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        if self._draining or self._shutdown.is_set():
            writer.close()
            return
        rate = self.options.server_rate_limit
        bucket = _TokenBucket(rate, self.options.server_rate_burst) \
            if rate > 0 else None
        tasks: set = set()
        write_lock = asyncio.Lock()

        async def write(response: Dict[str, Any]) -> None:
            data = (json.dumps(response) + "\n").encode("utf-8")
            async with write_lock:
                try:
                    writer.write(data)
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

        try:
            while not self._shutdown.is_set():
                try:
                    raw = await reader.readline()
                except (ConnectionError, OSError, ValueError):
                    break  # ValueError: line over the read limit
                if not raw:
                    break
                if not raw.strip():
                    continue
                try:
                    keep_going = await self._dispatch(raw, write, tasks,
                                                      bucket)
                except Exception as exc:  # front-door bug containment
                    await write({"id": None, "ok": False,
                                 "error": _error(
                                     "internal",
                                     f"{type(exc).__name__}: {exc}")})
                    keep_going = True
                if not keep_going:
                    break
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
            except Exception:
                pass

    async def _dispatch(self, raw: bytes, write, tasks: set,
                        bucket: Optional[_TokenBucket]) -> bool:
        """Admit and launch one request line; False ends the
        connection loop (shutdown)."""
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.metrics.incr("requests_total")
            self.metrics.incr("errors_total")
            self.metrics.incr("errors.protocol")
            await write({"id": None, "ok": False,
                         "error": _error("protocol",
                                         f"malformed JSON: {exc}")})
            return True
        request_id = request.get("id") if isinstance(request, dict) else None
        is_shutdown = isinstance(request, dict) \
            and request.get("op") == "shutdown"
        if is_shutdown:
            # Graceful: earlier requests on this connection respond
            # before the shutdown does.
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            if self.sharded:
                self.metrics.incr("requests_total")
                response = {"id": request_id, "ok": True,
                            "result": {"shutting_down": True}}
            else:
                response = self.service.handle(request)
            await write(response)
            if response.get("ok"):
                self.stop()
            return False
        if bucket is not None and not bucket.take():
            self.metrics.incr("requests_total")
            self.metrics.incr("rate_limited_total")
            self.metrics.incr("errors_total")
            self.metrics.incr("errors.service.rate-limited")
            await write({"id": request_id, "ok": False,
                         "error": _error(
                             "rate-limited",
                             f"per-connection rate limit "
                             f"({self.options.server_rate_limit:g} req/s) "
                             f"exceeded", code="service.rate-limited")})
            return True
        try:
            timeout = self._request_timeout(request)
        except ServiceLimitError as exc:
            self.metrics.incr("requests_total")
            self.metrics.incr("errors_total")
            self.metrics.incr(f"errors.{exc.code}")
            await write({"id": request_id, "ok": False,
                         "error": _repro_error_envelope(exc)})
            return True
        if not self.sharded:
            fast = self.service.try_handle_fast(request)
            if fast is not None:
                await write(fast)
                return True
        shard = self._route(request) if self.sharded else None
        if self.sharded:
            queued = self.pool.outstanding(shard) if shard is not None \
                else min(self.pool.outstanding(i)
                         for i in range(len(self.pool)))
        else:
            queued = self._outstanding
        if queued >= max(1, self.options.server_queue_depth):
            self.metrics.incr("requests_total")
            self.metrics.incr("shed_total")
            self.metrics.incr("errors_total")
            self.metrics.incr("errors.service.overloaded")
            where = f"shard {shard}" if self.sharded else "the server"
            await write({"id": request_id, "ok": False,
                         "error": _error(
                             "overloaded",
                             f"{where} has {queued} requests outstanding "
                             f"(queue depth "
                             f"{self.options.server_queue_depth}); "
                             f"retry with backoff",
                             code="service.overloaded")})
            return True
        # Count the request *now*, before yielding back to the read
        # loop: a burst of pipelined lines must see each other in the
        # queue-depth check, not all slip in before the first task runs.
        self._outstanding += 1
        task = asyncio.ensure_future(
            self._run_request(request, write, timeout, shard))
        tasks.add(task)
        task.add_done_callback(tasks.discard)
        return True

    def _route(self, request: Any) -> Optional[int]:
        """The home shard of a request: by the content address of its
        source, program handle, or module set — so one program's
        traffic always finds the worker whose caches hold it.  None
        (management ops, no content) means least-loaded."""
        if not isinstance(request, dict):
            return None
        source = request.get("source")
        if isinstance(source, str):
            return self.pool.shard_of(
                cache_key(source, self.options, self.snapshot_fp))
        handle = request.get("program")
        if isinstance(handle, str):
            return self.pool.shard_of(handle)
        modules = request.get("modules")
        if isinstance(modules, list):
            digest = hashlib.sha256()
            for spec in modules:
                if isinstance(spec, dict):
                    digest.update(
                        str(spec.get("source", "")).encode("utf-8",
                                                           "replace"))
                    digest.update(b"\x00")
            return self.pool.shard_of(digest.hexdigest())
        return None

    async def _run_request(self, request: Dict[str, Any], write,
                           timeout: Optional[float],
                           shard: Optional[int]) -> None:
        op = request.get("op") if isinstance(request, dict) else None
        request_id = request.get("id") if isinstance(request, dict) else None
        t0 = time.perf_counter()
        try:  # admission already counted this request in _dispatch
            if self.sharded:
                response = await self._run_sharded(request, request_id,
                                                   timeout, shard, op)
            else:
                loop = asyncio.get_event_loop()
                future = loop.run_in_executor(
                    self._executor, self.service.handle, request)
                try:
                    response = await asyncio.wait_for(future, timeout)
                except asyncio.TimeoutError:
                    self.metrics.incr("timeouts_total")
                    self.metrics.incr("errors.timeout")
                    response = {"id": request_id, "ok": False,
                                "error": _error(
                                    "timeout",
                                    f"request exceeded {timeout}s budget")}
        finally:
            self._outstanding -= 1
        if self.sharded and isinstance(op, str):
            elapsed = time.perf_counter() - t0
            self.metrics.observe(op, elapsed)
            if shard is not None:
                self.metrics.observe(f"shard{shard}.{op}", elapsed)
        await write(response)

    async def _run_sharded(self, request: Dict[str, Any], request_id: Any,
                           timeout: Optional[float], shard: Optional[int],
                           op: Optional[str]) -> Dict[str, Any]:
        if op == "ping":
            self.metrics.incr("requests_total")
            return {"id": request_id, "ok": True, "result": {
                "pong": True,
                "protocol": PROTOCOL_VERSION,
                "version": SERVER_VERSION,
                "shards": len(self.pool),
                "options_fingerprint": self._options_fp,
                "prelude_fingerprint": self.snapshot_fp,
            }}
        if op == "stats":
            self.metrics.incr("requests_total")
            return await self._sharded_stats(request_id)
        if shard is None:
            shard = min(range(len(self.pool)),
                        key=lambda i: self.pool.outstanding(i))
        future = asyncio.wrap_future(self.pool.submit(request, shard=shard))
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self.metrics.incr("timeouts_total")
            self.metrics.incr("errors.timeout")
            # No portable way to interrupt a compute-bound worker:
            # kill it.  The pool respawns it and resubmits the
            # requests queued behind the runaway one.
            self.pool.kill_shard(shard)
            return {"id": request_id, "ok": False,
                    "error": _error("timeout",
                                    f"request exceeded {timeout}s budget; "
                                    f"shard {shard} was recycled")}

    async def _sharded_stats(self, request_id: Any) -> Dict[str, Any]:
        """Fleet-wide ``stats``: every worker's snapshot merged with
        the front door's own metrics (counters add; merged percentiles
        are count-weighted approximations — see docs/SERVICE.md)."""
        for i in range(len(self.pool)):
            self.metrics.gauge(f"queue_depth.shard{i}",
                               self.pool.outstanding(i))
        futures = [asyncio.wrap_future(s.submit({"op": "stats"}))
                   for s in self.pool.shards]
        gathered = await asyncio.gather(
            *(asyncio.wait_for(f, timeout=30.0) for f in futures),
            return_exceptions=True)
        server_snaps = [self.metrics.snapshot()]
        cache_snaps = []
        for item in gathered:
            if isinstance(item, dict) and item.get("ok"):
                result = item["result"]
                server_snaps.append(result.get("server", {}))
                cache_snaps.append(result.get("cache", {}))
        result = {
            "protocol": PROTOCOL_VERSION,
            "version": SERVER_VERSION,
            "server": merge_metric_snapshots(server_snaps),
            "cache": merge_cache_snapshots(cache_snaps),
            "snapshot": {
                "fingerprint": self.snapshot_fp,
                "prelude_bindings": self.prelude_bindings,
            },
            "shards": self.pool.info(),
        }
        return {"id": request_id, "ok": True, "result": result}

    def _request_timeout(self, request: Any) -> Optional[float]:
        """The request's time budget, honouring the client's
        ``timeout`` field up to ``request_timeout_ceiling`` (beyond it:
        ``service.limit-exceeded``)."""
        timeout = self.options.request_timeout
        if isinstance(request, dict) and "timeout" in request:
            try:
                requested: Optional[float] = float(request["timeout"])
            except (TypeError, ValueError):
                requested = None
            if requested is not None:
                ceiling = self.options.request_timeout_ceiling
                if ceiling and requested > ceiling:
                    raise ServiceLimitError("timeout", requested, ceiling)
                timeout = requested
        return timeout if timeout and timeout > 0 else None

    # -------------------------------------------------------------- stdio

    def _submit_blocking(self, request: Dict[str, Any]):
        """Backend-neutral submission for the thread-based stdio
        transport; returns a concurrent future of the response."""
        if self.sharded:
            return self.pool.submit(request, shard=self._route(request))
        return self._executor.submit(self.service.handle, request)

    def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve line-delimited JSON on stdio until EOF or shutdown.

        Thread-based rather than asyncio: it must work against plain
        file objects (tests drive it with in-memory streams), which
        the event loop cannot poll portably."""
        stdin = stdin if stdin is not None else sys.stdin.buffer
        stdout = stdout if stdout is not None else sys.stdout
        write_lock = threading.Lock()

        def write(response: Dict[str, Any]) -> None:
            line = json.dumps(response) + "\n"
            with write_lock:
                try:
                    stdout.write(line)
                    stdout.flush()
                except (ValueError, OSError):
                    pass

        waiters: list = []
        for raw in stdin:
            if isinstance(raw, str):
                raw = raw.encode("utf-8")
            if not raw.strip():
                continue
            if not self._dispatch_line(raw, write, waiters):
                break
            if self._shutdown.is_set():
                break
        for waiter in waiters:
            waiter.join()
        self._shutdown.set()

    def _dispatch_line(self, raw: bytes, write,
                       waiters: Optional[list] = None) -> bool:
        """Parse and run one request line (stdio transport); False
        stops the loop (shutdown was requested).  Spawned waiter
        threads are appended to *waiters* so the caller can drain
        them."""
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.metrics.incr("requests_total")
            self.metrics.incr("errors_total")
            self.metrics.incr("errors.protocol")
            write({"id": None, "ok": False,
                   "error": _error("protocol", f"malformed JSON: {exc}")})
            return True
        request_id = request.get("id") if isinstance(request, dict) else None
        is_shutdown = isinstance(request, dict) \
            and request.get("op") == "shutdown"
        if is_shutdown and waiters:
            # Graceful: earlier requests on this connection respond
            # before the shutdown does.
            for waiter in waiters:
                waiter.join()
        try:
            timeout = self._request_timeout(request)
        except ServiceLimitError as exc:
            self.metrics.incr("requests_total")
            self.metrics.incr("errors_total")
            self.metrics.incr(f"errors.{exc.code}")
            write({"id": request_id, "ok": False,
                   "error": _repro_error_envelope(exc)})
            return True
        if is_shutdown and self.sharded:
            self.metrics.incr("requests_total")
            write({"id": request_id, "ok": True,
                   "result": {"shutting_down": True}})
            self.stop()
            return False
        future = self._submit_blocking(request)

        def deliver() -> None:
            try:
                response = future.result(timeout=timeout)
            except FutureTimeout:
                self.metrics.incr("timeouts_total")
                self.metrics.incr("errors.timeout")
                write({"id": request_id, "ok": False,
                       "error": _error(
                           "timeout",
                           f"request exceeded {timeout}s budget")})
                future.cancel()
                if not future.cancelled():
                    future.add_done_callback(lambda f: f.exception())
                return
            except Exception as exc:  # pool shutdown races, etc.
                write({"id": request_id, "ok": False,
                       "error": _error("internal", str(exc))})
                return
            write(response)
            if is_shutdown and response.get("ok"):
                self.stop()

        if is_shutdown or timeout is None:
            deliver()  # nothing to time out; keep ordering simple
        else:
            waiter = threading.Thread(target=deliver, name="repro-waiter",
                                      daemon=True)
            waiter.start()
            if waiters is not None:
                waiters.append(waiter)
        return not is_shutdown


# ---------------------------------------------------------------------------
# Clients (tests, benchmarks, simple tooling)
# ---------------------------------------------------------------------------

class ServiceClient:
    """A minimal synchronous client: one request in flight at a time."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            self._next_id += 1
            payload: Dict[str, Any] = {"id": self._next_id, "op": op}
            payload.update(fields)
            self._sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            while True:
                raw = self._reader.readline()
                if not raw:
                    raise ConnectionError("server closed the connection")
                response = json.loads(raw.decode("utf-8"))
                if response.get("id") == self._next_id:
                    return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


class PipelinedClient:
    """A load-generation client: many requests in flight on one
    connection, responses collected out of band and matched by ``id``.
    This is how the protocol is meant to be driven at rate — the
    synchronous :class:`ServiceClient` serialises on round trips."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._buffer: List[bytes] = []

    def send(self, op: str, **fields: Any) -> int:
        """Queue one request locally; returns its id.  Call
        :meth:`flush` to put queued requests on the wire."""
        self._next_id += 1
        payload: Dict[str, Any] = {"id": self._next_id, "op": op}
        payload.update(fields)
        self._buffer.append((json.dumps(payload) + "\n").encode("utf-8"))
        return self._next_id

    def flush(self) -> None:
        if self._buffer:
            self._sock.sendall(b"".join(self._buffer))
            self._buffer.clear()

    def recv(self) -> Dict[str, Any]:
        """The next response on the wire (any id)."""
        raw = self._reader.readline()
        if not raw:
            raise ConnectionError("server closed the connection")
        return json.loads(raw.decode("utf-8"))

    def collect(self, n: int) -> List[Dict[str, Any]]:
        self.flush()
        return [self.recv() for _ in range(n)]

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Synchronous convenience for setup traffic."""
        request_id = self.send(op, **fields)
        self.flush()
        while True:
            response = self.recv()
            if response.get("id") == request_id:
                return response

    def check(self, modules: List[Dict[str, Any]],
              **fields: Any) -> Dict[str, Any]:
        """Type-check *modules* (``[{source, name?, filename?}, ...]``)
        without linking or evaluating.  Returns the ``check`` result —
        per-module status plus a ``diagnostics`` list whose entries are
        full error envelopes (code, message, ``positions``) tagged with
        the failing module's name.  Raises on transport or protocol
        failure; per-module compile errors do NOT raise."""
        response = self.request("check", modules=modules, **fields)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise RuntimeError(
                f"check failed [{error.get('code', 'error')}]: "
                f"{error.get('message', 'unknown error')}")
        return response["result"]

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "PipelinedClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
