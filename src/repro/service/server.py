"""A long-lived compile/eval server.

The server keeps one prelude snapshot and one content-addressed compile
cache in memory and answers requests over a line-delimited JSON
protocol, either on a TCP socket or on stdio::

    -> {"id": 1, "op": "compile", "source": "main = 1 + 2"}
    <- {"id": 1, "ok": true, "result": {"program": "ab12...", ...}}

Operations: ``compile``, ``build``, ``eval``, ``typeof``, ``info``,
``stats``, ``ping``, ``shutdown`` (see docs/SERVICE.md for the full
schema).

Design points:

* every request is handled on a thread pool; a per-request timeout
  (``request_timeout`` option, overridable per request) produces a
  structured ``timeout`` error while the server keeps running;
* errors never kill the process: compiler errors, malformed JSON and
  unknown operations all come back as ``{"ok": false, "error": ...}``;
* concurrent requests against one cached program are safe — a program
  serialises its expression *compilation* internally while evaluation
  itself runs concurrently (each request gets its own evaluator).
"""

from __future__ import annotations

import json
import socket
import sys
import threading
from concurrent.futures import ThreadPoolExecutor, TimeoutError as FutureTimeout
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.options import CompilerOptions
from repro.service.cache import CompileCache, cache_key, resolve_cache_dir
from repro.service.metrics import Metrics
from repro.service.snapshot import get_default_snapshot

PROTOCOL_VERSION = 1


def _error(kind: str, message: str, code: Optional[str] = None,
           **extra: Any) -> Dict[str, Any]:
    """The error envelope: ``type`` (legacy, human-oriented), ``code``
    (stable, machine-readable — see docs/SERVICE.md), ``message`` and
    optionally ``pos``."""
    out: Dict[str, Any] = {"type": kind, "code": code or kind,
                           "message": message, "pos": None}
    out.update(extra)
    return out


class ProtocolError(Exception):
    """A malformed request (bad JSON, missing field, unknown op)."""


class CompileService:
    """Transport-independent request handling: snapshot + cache + ops.

    Shared by the TCP and stdio servers and usable directly in-process
    (``repro batch`` drives it without any socket)."""

    def __init__(self, options: Optional[CompilerOptions] = None) -> None:
        self.options = options if options is not None else CompilerOptions()
        self.snapshot = get_default_snapshot(self.options)
        self.cache = CompileCache(
            capacity=self.options.cache_size,
            disk_dir=resolve_cache_dir(self.options),
            disk_budget=self.options.cache_disk_budget)
        self.metrics = Metrics()

    # ------------------------------------------------------------- programs

    def compile(self, source: str,
                filename: str = "<request>") -> Tuple[str, Any, bool]:
        """Compile *source* through the cache; returns
        ``(key, program, was_cached)``."""
        key = cache_key(source, self.options, self.snapshot.fingerprint)
        program = self.cache.get(key)
        if program is not None:
            self.metrics.incr("cache_hits")
            return key, program, True
        with self.metrics.time("compile_miss"):
            from repro.driver import compile_source
            program = compile_source(source, self.options, filename=filename,
                                     snapshot=self.snapshot)
        self.cache.put(key, program)
        self.metrics.incr("cache_misses")
        # Per-phase latency: every miss contributes one sample per
        # pipeline pass (programs unpickled from an older disk cache
        # may predate the trace — hence the getattr).
        trace = getattr(program.compile_stats, "phases", None)
        if trace is not None:
            self.metrics.record_phases(trace)
        return key, program, False

    def _resolve_program(self, request: Dict[str, Any]) -> Tuple[str, Any]:
        """The program a request targets: by ``program`` handle (cache
        key) or by ``source`` (compiled on demand)."""
        handle = request.get("program")
        if handle is not None:
            program = self.cache.get(handle)
            if program is not None:
                return handle, program
            if "source" not in request:
                raise ProtocolError(
                    f"unknown program {handle!r} (evicted or never "
                    f"compiled); re-send with its source")
        source = request.get("source")
        if source is None:
            raise ProtocolError(
                "request needs a 'program' handle or a 'source' string")
        key, program, _ = self.compile(source)
        return key, program

    # ------------------------------------------------------------- requests

    def handle(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request dict to a response dict (never raises)."""
        request_id = request.get("id") if isinstance(request, dict) else None
        self.metrics.incr("requests_total")
        try:
            if not isinstance(request, dict):
                raise ProtocolError("request must be a JSON object")
            op = request.get("op")
            if not isinstance(op, str):
                raise ProtocolError("request needs an 'op' string")
            op = {"type_of": "typeof"}.get(op, op)
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise ProtocolError(f"unknown op {op!r}")
            with self.metrics.time(op):
                result = handler(request)
            return {"id": request_id, "ok": True, "result": result}
        except ProtocolError as exc:
            return self._failure(request_id, _error("protocol", str(exc)))
        except ReproError as exc:
            # {code, message, pos} from the error itself; "type" (the
            # class name) is kept for older clients.
            error = exc.to_json()
            error["type"] = type(exc).__name__
            if getattr(exc, "limit", None):
                error["limit"] = exc.limit
            return self._failure(request_id, error)
        except Exception as exc:  # never let a request kill the server
            return self._failure(
                request_id, _error("internal", f"{type(exc).__name__}: {exc}"))

    def _failure(self, request_id: Any,
                 error: Dict[str, Any]) -> Dict[str, Any]:
        self.metrics.incr("errors_total")
        # Per-code counters surface in ``stats`` so operators can see
        # *what kind* of failures a fleet is eating (e.g. a spike in
        # ``errors.limit`` means someone is feeding us pathological
        # inputs).
        self.metrics.incr(f"errors.{error.get('code') or 'error'}")
        return {"id": request_id, "ok": False, "error": error}

    # ------------------------------------------------------------------ ops

    def _op_ping(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "protocol": PROTOCOL_VERSION}

    def _op_compile(self, request: Dict[str, Any]) -> Dict[str, Any]:
        source = request.get("source")
        if not isinstance(source, str):
            raise ProtocolError("'compile' needs a 'source' string")
        key, program, cached = self.compile(
            source, filename=request.get("filename", "<request>"))
        result: Dict[str, Any] = {
            "program": key,
            "cached": cached,
            "warnings": [str(w) for w in program.warnings],
        }
        if request.get("schemes", True):
            result["schemes"] = {
                name: str(scheme)
                for name, scheme in sorted(program.schemes.items())
                if "$" not in name and "@" not in name}
        return result

    def _op_eval(self, request: Dict[str, Any]) -> Dict[str, Any]:
        expr = request.get("expr")
        if not isinstance(expr, str):
            raise ProtocolError("'eval' needs an 'expr' string")
        key, program = self._resolve_program(request)
        from repro.cli import render
        overrides: Dict[str, Any] = {}
        if "step_limit" in request:
            try:
                overrides["step_limit"] = int(request["step_limit"])
            except (TypeError, ValueError):
                raise ProtocolError("'step_limit' must be an integer")
        if "max_depth" in request:
            try:
                overrides["max_depth"] = int(request["max_depth"])
            except (TypeError, ValueError):
                raise ProtocolError("'max_depth' must be an integer")
        value = program.eval(expr, big_stack=False, **overrides)
        result: Dict[str, Any] = {"program": key, "value": render(value)}
        stats = program.last_stats
        if stats is not None:
            result["stats"] = stats.snapshot()
        return result

    def _op_typeof(self, request: Dict[str, Any]) -> Dict[str, Any]:
        expr = request.get("expr")
        if not isinstance(expr, str):
            raise ProtocolError("'typeof' needs an 'expr' string")
        key, program = self._resolve_program(request)
        return {"program": key, "type": program.type_of(expr)}

    def _op_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = request.get("name")
        if not isinstance(name, str):
            raise ProtocolError("'info' needs a 'name' string")
        key, program = self._resolve_program(request)
        return {"program": key, "info": program.info(name)}

    def _op_build(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Build a multi-module program from inline sources: resolve
        the import DAG, compile each module separately (through the
        shared artifact cache, so repeated builds are incremental),
        link, and cache the linked program under a content key the
        client can hand to ``eval``/``typeof``/``info``."""
        from repro.modules.build import ModuleBuilder, module_cache_key
        from repro.modules.resolve import scan_inline_modules
        modules = request.get("modules")
        if not isinstance(modules, list) or not modules:
            raise ProtocolError("'build' needs a non-empty 'modules' list")
        for spec in modules:
            if not isinstance(spec, dict) or \
                    not isinstance(spec.get("source"), str):
                raise ProtocolError(
                    "each 'modules' entry needs a 'source' string "
                    "(plus optional 'name'/'filename')")
        jobs = request.get("jobs")
        if jobs is not None:
            try:
                jobs = int(jobs)
            except (TypeError, ValueError):
                raise ProtocolError("'jobs' must be an integer")
        graph = scan_inline_modules(
            modules, max_depth=self.options.max_parse_depth)
        builder = ModuleBuilder(self.options, self.snapshot,
                                cache=self.cache)
        build = builder.build(graph, jobs=jobs)
        program = build.program
        # Address the *linked* program by the build's content.  The
        # surface fingerprint alone is NOT enough: a body-only edit
        # keeps it stable (by design — that is the rebuild cut-off) but
        # changes the linked program, so the key also pins each
        # module's source digest and unfolding digest.
        key = module_cache_key(
            "<link>", self.options, self.snapshot.fingerprint,
            [(name, "{fingerprint}:{source_sha}:{unfold_fp}".format(
                **{field: build.modules[name].get(field, "")
                   for field in ("fingerprint", "source_sha",
                                 "unfold_fp")}))
             for name in build.order])
        self.cache.put(key, program)
        trace = getattr(program.compile_stats, "phases", None)
        if trace is not None:
            self.metrics.record_phases(trace)
        result: Dict[str, Any] = {
            "program": key,
            "build": build.stats(),
            "warnings": [str(w) for w in program.warnings],
        }
        if trace is not None and hasattr(trace, "all_counters"):
            specialization = {name: dict(bucket)
                             for name, bucket in trace.all_counters().items()
                             if name.startswith("specialize")}
            if specialization:
                result["specialization"] = specialization
        if request.get("schemes", True):
            result["schemes"] = {
                name: str(scheme)
                for name, scheme in sorted(program.schemes.items())
                if "$" not in name and "@" not in name}
        return result

    def _op_stats(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return self.stats()

    def _op_shutdown(self, request: Dict[str, Any]) -> Dict[str, Any]:
        return {"shutting_down": True}

    def stats(self) -> Dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "server": self.metrics.snapshot(),
            "cache": self.cache.snapshot(),
            "snapshot": {
                "fingerprint": self.snapshot.fingerprint,
                "prelude_bindings": self.snapshot.n_bindings,
            },
        }


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------

class _Once:
    """First-writer-wins guard so a timed-out request that later
    completes does not emit a second response."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._done = False

    def claim(self) -> bool:
        with self._lock:
            if self._done:
                return False
            self._done = True
            return True


class CompileServer:
    """Line-delimited JSON over TCP (or stdio via :meth:`serve_stdio`)."""

    def __init__(self, options: Optional[CompilerOptions] = None,
                 service: Optional[CompileService] = None,
                 host: Optional[str] = None,
                 port: Optional[int] = None) -> None:
        self.service = service if service is not None \
            else CompileService(options)
        opts = self.service.options
        self.host = host if host is not None else opts.server_host
        self.port = port if port is not None else opts.server_port
        self._pool = self._make_pool(max(1, opts.server_workers))
        self._shutdown = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._threads: list = []

    @staticmethod
    def _make_pool(workers: int, stack_mb: int = 512) -> ThreadPoolExecutor:
        """A thread pool whose workers all have big stacks.

        Interpreted evaluation nests deeply (see
        :func:`repro.coreir.eval.with_big_stack`); a default-sized
        thread stack overflows — fatally, below Python — on programs the
        compiler handles fine.  Stack size is fixed at thread creation,
        and the executor spawns threads lazily, so every worker is
        forced into existence here, inside the enlarged-stack window.
        The memory is virtual: untouched pages cost nothing.
        """
        if sys.getrecursionlimit() < 1_000_000:
            sys.setrecursionlimit(1_000_000)
        old = threading.stack_size(stack_mb * 1024 * 1024)
        try:
            pool = ThreadPoolExecutor(max_workers=workers,
                                      thread_name_prefix="repro-worker")
            ready = threading.Barrier(workers + 1)
            futures = [pool.submit(ready.wait) for _ in range(workers)]
            ready.wait()
            for future in futures:
                future.result()
        finally:
            threading.stack_size(old)
        return pool

    # --------------------------------------------------------------- life

    def start(self) -> int:
        """Bind and start accepting in a background thread; returns the
        bound port (useful with ``server_port = 0``)."""
        listener = socket.create_server((self.host, self.port))
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="repro-acceptor", daemon=True)
        acceptor.start()
        self._acceptor = acceptor
        self._threads.append(acceptor)
        return self.port

    def stop(self) -> None:
        # Tear the listener down before signalling: anyone woken by
        # ``wait()`` may immediately probe the port and must find it
        # closed.  ``close()`` alone is not enough — the acceptor
        # thread blocked in ``accept()`` keeps the kernel socket alive
        # (and accepting!) until its poll window expires, so shut the
        # socket down to wake it and join it out.
        listener, self._listener = self._listener, None
        if listener is not None:
            for teardown in (lambda: listener.shutdown(socket.SHUT_RDWR),
                             listener.close):
                try:
                    teardown()
                except OSError:
                    pass
        acceptor = self._acceptor
        if acceptor is not None and acceptor is not threading.current_thread():
            acceptor.join(timeout=2.0)
        self._shutdown.set()
        self._pool.shutdown(wait=False, cancel_futures=True)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server shuts down; True if it did."""
        return self._shutdown.wait(timeout)

    # ------------------------------------------------------------- accept

    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._shutdown.is_set():
            try:
                conn, _addr = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(target=self._client_loop, args=(conn,),
                                      name="repro-client", daemon=True)
            thread.start()
            self._threads.append(thread)

    def _client_loop(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        waiters: list = []
        try:
            reader = conn.makefile("rb")

            def write(response: Dict[str, Any]) -> None:
                data = (json.dumps(response) + "\n").encode("utf-8")
                with write_lock:
                    try:
                        conn.sendall(data)
                    except OSError:
                        pass

            for raw in reader:
                if self._shutdown.is_set():
                    break
                if not raw.strip():
                    continue
                if not self._dispatch_line(raw, write, waiters):
                    break
        finally:
            # Requests still in flight get to write their responses
            # before the connection goes away; each waiter is bounded
            # by its request timeout.
            for waiter in waiters:
                waiter.join()
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------ requests

    def _dispatch_line(self, raw: bytes, write,
                       waiters: Optional[list] = None) -> bool:
        """Parse and run one request line; False stops the connection
        loop (shutdown was requested).  Spawned waiter threads are
        appended to *waiters* so the caller can drain them."""
        try:
            request = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.service.metrics.incr("requests_total")
            self.service.metrics.incr("errors_total")
            self.service.metrics.incr("errors.protocol")
            write({"id": None, "ok": False,
                   "error": _error("protocol", f"malformed JSON: {exc}")})
            return True
        is_shutdown = isinstance(request, dict) \
            and request.get("op") == "shutdown"
        if is_shutdown and waiters:
            # Graceful: earlier requests on this connection respond
            # before the shutdown does (stop() cancels queued work).
            for waiter in waiters:
                waiter.join()
        timeout = self._request_timeout(request)
        future = self._pool.submit(self.service.handle, request)
        once = _Once()
        request_id = request.get("id") if isinstance(request, dict) else None

        def deliver() -> None:
            try:
                response = future.result(timeout=timeout)
            except FutureTimeout:
                if once.claim():
                    self.service.metrics.incr("timeouts_total")
                    self.service.metrics.incr("errors.timeout")
                    write({"id": request_id, "ok": False,
                           "error": _error(
                               "timeout",
                               f"request exceeded {timeout}s budget")})
                # Discard the eventual result: the response slot is used.
                future.add_done_callback(lambda f: f.exception())
                return
            except Exception as exc:  # pool shutdown races, etc.
                if once.claim():
                    write({"id": request_id, "ok": False,
                           "error": _error("internal", str(exc))})
                return
            if once.claim():
                write(response)
                if is_shutdown and response.get("ok"):
                    self.stop()

        if is_shutdown or timeout is None:
            deliver()  # nothing to time out; keep ordering simple
        else:
            waiter = threading.Thread(target=deliver, name="repro-waiter",
                                      daemon=True)
            waiter.start()
            if waiters is not None:
                waiters.append(waiter)
        return not (is_shutdown and self._shutdown.is_set())

    def _request_timeout(self, request: Any) -> Optional[float]:
        timeout = self.service.options.request_timeout
        if isinstance(request, dict) and "timeout" in request:
            try:
                timeout = float(request["timeout"])
            except (TypeError, ValueError):
                pass
        return timeout if timeout and timeout > 0 else None

    # -------------------------------------------------------------- stdio

    def serve_stdio(self, stdin=None, stdout=None) -> None:
        """Serve line-delimited JSON on stdio until EOF or shutdown."""
        stdin = stdin if stdin is not None else sys.stdin.buffer
        stdout = stdout if stdout is not None else sys.stdout
        write_lock = threading.Lock()

        def write(response: Dict[str, Any]) -> None:
            line = json.dumps(response) + "\n"
            with write_lock:
                try:
                    stdout.write(line)
                    stdout.flush()
                except (ValueError, OSError):
                    pass

        waiters: list = []
        for raw in stdin:
            if isinstance(raw, str):
                raw = raw.encode("utf-8")
            if not raw.strip():
                continue
            if not self._dispatch_line(raw, write, waiters):
                break
            if self._shutdown.is_set():
                break
        for waiter in waiters:
            waiter.join()
        self._shutdown.set()


# ---------------------------------------------------------------------------
# Client (tests, benchmarks, simple tooling)
# ---------------------------------------------------------------------------

class ServiceClient:
    """A minimal synchronous client: one request in flight at a time."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        with self._lock:
            self._next_id += 1
            payload: Dict[str, Any] = {"id": self._next_id, "op": op}
            payload.update(fields)
            self._sock.sendall((json.dumps(payload) + "\n").encode("utf-8"))
            while True:
                raw = self._reader.readline()
                if not raw:
                    raise ConnectionError("server closed the connection")
                response = json.loads(raw.decode("utf-8"))
                if response.get("id") == self._next_id:
                    return response

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
