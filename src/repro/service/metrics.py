"""Request counters and latency histograms for the compile service.

Latencies are recorded per operation (``compile``, ``eval``, ...) into
a bounded ring of recent samples; percentiles (p50/p95/p99) are
computed over that window on demand.  Everything is thread safe and
cheap enough to sit on the request hot path — recording is a counter
bump and a ring-slot write under a short lock.

Compilations additionally report *per-phase* latency: every cache-miss
compile feeds its pipeline :class:`~repro.pipeline.PhaseTrace` into
per-pass histograms (``phase.<pass>``), so the server's ``stats``
request and the CLI's ``--stats-json`` dump show where compile time
goes across requests — parse vs infer vs the §8/§9 transforms — not
just the end-to-end number.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional

#: histogram-name prefix under which pipeline passes are aggregated
PHASE_PREFIX = "phase."


class LatencyHistogram:
    """Running latency summary over a bounded window of samples."""

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._samples: List[float] = []
        self._next = 0  # ring cursor once the window is full
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if len(self._samples) < self.window:
            self._samples.append(seconds)
        else:
            self._samples[self._next] = seconds
            self._next = (self._next + 1) % self.window

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100) of the recent window, by the
        nearest-rank method; 0.0 when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_ms": round(mean * 1e3, 3),
            "p50_ms": round(self.percentile(50) * 1e3, 3),
            "p95_ms": round(self.percentile(95) * 1e3, 3),
            "p99_ms": round(self.percentile(99) * 1e3, 3),
            "max_ms": round(self.max * 1e3, 3),
        }


class Metrics:
    """Thread-safe counters, gauges and per-operation latency
    histograms."""

    def __init__(self, window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._window = window
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self.started_at = time.time()

    # ------------------------------------------------------------ recording

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (queue depth, pool occupancy)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, op: str, seconds: float) -> None:
        with self._lock:
            hist = self._histograms.get(op)
            if hist is None:
                hist = self._histograms[op] = LatencyHistogram(self._window)
            hist.record(seconds)

    def time(self, op: str) -> "_Timer":
        """``with metrics.time("compile"): ...`` — records the elapsed
        wall clock whether or not the body raises."""
        return _Timer(self, op)

    def record_phases(self, trace: Any) -> None:
        """Fold one compilation's :class:`~repro.pipeline.PhaseTrace`
        into the per-pass histograms (one sample per pass per
        compile).  Per-pass work counters (e.g. the specializer's
        clone count) aggregate into ``phase.<pass>.<counter>``
        counters (older pickled traces may predate them)."""
        for timing in trace.timings:
            self.observe(f"{PHASE_PREFIX}{timing.name}", timing.seconds)
        all_counters = getattr(trace, "all_counters", None)
        if all_counters is not None:
            for pass_name, bucket in all_counters().items():
                for key, n in bucket.items():
                    self.incr(f"{PHASE_PREFIX}{pass_name}.{key}", n)

    # -------------------------------------------------------- introspection

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            latency: Dict[str, Any] = {}
            phases: Dict[str, Any] = {}
            for op, hist in sorted(self._histograms.items()):
                if op.startswith(PHASE_PREFIX):
                    phases[op[len(PHASE_PREFIX):]] = hist.summary()
                else:
                    latency[op] = hist.summary()
            out: Dict[str, Any] = {
                "uptime_s": round(time.time() - self.started_at, 3),
                "counters": dict(self._counters),
                "latency": latency,
                "phases": phases,
            }
            if self._gauges:
                out["gauges"] = dict(self._gauges)
            return out

    def dump_json(self, path: str,
                  extra: Optional[Dict[str, Any]] = None) -> None:
        payload = self.snapshot()
        if extra:
            payload.update(extra)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


class _Timer:
    def __init__(self, metrics: Metrics, op: str) -> None:
        self._metrics = metrics
        self._op = op

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        self._metrics.observe(self._op, time.perf_counter() - self._t0)


# ---------------------------------------------------------------------------
# Cross-worker aggregation
# ---------------------------------------------------------------------------
#
# The sharded front door holds one Metrics per *process* — its own plus
# one inside every worker.  ``stats`` must present a fleet-wide view, so
# worker snapshots are merged: counters add, histogram summaries merge
# count-weighted.  Percentiles of percentiles are not exact; the merged
# p50/p95/p99 are count-weighted means of the per-worker values (the
# max is exact).  That is the standard approximation for pre-aggregated
# histograms and is documented in docs/SERVICE.md.

def merge_summaries(summaries: "List[Dict[str, float]]") -> Dict[str, float]:
    """Merge per-worker :meth:`LatencyHistogram.summary` dicts."""
    total = sum(s.get("count", 0) for s in summaries)
    if not total:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    out: Dict[str, float] = {"count": total}
    for key in ("mean_ms", "p50_ms", "p95_ms", "p99_ms"):
        weighted = sum(s.get(key, 0.0) * s.get("count", 0)
                       for s in summaries)
        out[key] = round(weighted / total, 3)
    out["max_ms"] = round(max(s.get("max_ms", 0.0) for s in summaries), 3)
    return out


def merge_metric_snapshots(snapshots: "List[Dict[str, Any]]"
                           ) -> Dict[str, Any]:
    """Merge :meth:`Metrics.snapshot` dicts from several workers into
    one fleet-wide view (counters summed, histograms count-weighted,
    gauges summed — every gauge the workers export is additive)."""
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    latency_parts: Dict[str, List[Dict[str, float]]] = {}
    phase_parts: Dict[str, List[Dict[str, float]]] = {}
    uptime = 0.0
    for snap in snapshots:
        uptime = max(uptime, snap.get("uptime_s", 0.0))
        for name, n in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + n
        for name, v in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + v
        for name, summary in snap.get("latency", {}).items():
            latency_parts.setdefault(name, []).append(summary)
        for name, summary in snap.get("phases", {}).items():
            phase_parts.setdefault(name, []).append(summary)
    out: Dict[str, Any] = {
        "uptime_s": round(uptime, 3),
        "counters": counters,
        "latency": {name: merge_summaries(parts)
                    for name, parts in sorted(latency_parts.items())},
        "phases": {name: merge_summaries(parts)
                   for name, parts in sorted(phase_parts.items())},
    }
    if gauges:
        out["gauges"] = gauges
    return out


def merge_cache_snapshots(snapshots: "List[Dict[str, Any]]"
                          ) -> Dict[str, Any]:
    """Merge per-worker :meth:`CompileCache.snapshot` dicts: counters
    and occupancy add; capacity is per worker (reported as the max);
    the hit rate is recomputed from the merged counters."""
    if not snapshots:
        return {}
    out: Dict[str, Any] = {}
    for snap in snapshots:
        for key, value in snap.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                out.setdefault(key, value)
            elif key in ("capacity",):
                out[key] = max(out.get(key, 0), value)
            elif key == "hit_rate":
                continue
            else:
                out[key] = out.get(key, 0) + value
    total = out.get("hits", 0) + out.get("misses", 0)
    out["hit_rate"] = round(out.get("hits", 0) / total, 4) if total else 0.0
    return out
