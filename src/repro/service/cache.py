"""A content-addressed compile cache.

Programs are cached under a key derived from *content*, never identity:

    key = sha256(source) x options_fingerprint x prelude_fingerprint

so a hit is only possible when the source text, every
compilation-relevant option, and the prelude the program was compiled
against are all byte-identical.  Because compilation is deterministic
(dictionary parameter order is fixed by the §8.6 interface ordering and
instance resolution is coherent), a cached program is indistinguishable
from a fresh compile.

The in-memory tier is a bounded LRU; an optional on-disk tier persists
pickled programs under a cache directory (default
``~/.cache/repro/``) keyed by the same digest, surviving process
restarts.  Hit/miss/eviction counters are kept for the server's
``stats`` request.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

try:  # POSIX advisory file locks for the cross-process GC mutex
    import fcntl
except ImportError:  # pragma: no cover — non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro.options import CompilerOptions, options_fingerprint

#: default on-disk location (used when ``cache_dir`` is the sentinel
#: string ``"default"``; an explicit path wins; ``""`` disables disk)
DEFAULT_CACHE_DIR = os.path.join(os.path.expanduser("~"), ".cache", "repro")


def source_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def cache_key(source: str, options: CompilerOptions,
              prelude_fp: str) -> str:
    """The content address of one compilation."""
    h = hashlib.sha256()
    h.update(source_hash(source).encode("ascii"))
    h.update(b"\x00")
    h.update(options_fingerprint(options).encode("ascii"))
    h.update(b"\x00")
    h.update(prelude_fp.encode("ascii"))
    return h.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    disk_errors: int = 0
    disk_evictions: int = 0
    #: GC passes skipped because another process held the advisory
    #: lock (that process is already collecting on our behalf)
    disk_gc_skipped: int = 0

    def snapshot(self) -> Dict[str, int]:
        return dict(vars(self))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CompileCache:
    """Bounded LRU over compiled programs, optionally disk-backed.

    Thread safe: the structure is guarded by a lock; the cached
    programs themselves serialise their mutable operations internally
    (see :class:`repro.driver.CompiledProgram`).
    """

    def __init__(self, capacity: int = 64,
                 disk_dir: Optional[str] = None,
                 disk_budget: int = 0) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.disk_dir = disk_dir
        #: max total bytes for the disk tier; 0 disables the bound.
        #: Enforced after every write by an mtime-ordered GC (oldest
        #: entries go first; a disk hit refreshes the entry's mtime).
        self.disk_budget = disk_budget
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._gc_lock = threading.Lock()
        if disk_dir:
            os.makedirs(disk_dir, exist_ok=True)

    # -------------------------------------------------------------- lookup

    def get(self, key: str) -> Optional[Any]:
        """The program cached under *key*, or None.  A memory miss
        falls through to the disk tier (when enabled) and promotes the
        loaded program back into memory."""
        with self._lock:
            program = self._entries.get(key)
            if program is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return program
        program = self._disk_get(key)
        if program is not None:
            with self._lock:
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self._insert(key, program)
            return program
        with self._lock:
            self.stats.misses += 1
        return None

    def contains(self, key: str) -> bool:
        """Whether *key* would resolve via :meth:`get` — memory first,
        then a disk-tier existence check (a stat, no unpickle).  Unlike
        ``get`` it neither promotes the entry nor counts a hit or miss,
        so probes (the server's fast-path key resolution) do not skew
        the LRU order or the cache statistics."""
        with self._lock:
            if key in self._entries:
                return True
        if not self.disk_dir:
            return False
        return os.path.exists(self._disk_path(key))

    def put(self, key: str, program: Any) -> None:
        with self._lock:
            self._insert(key, program)
            self.stats.inserts += 1
        self._disk_put(key, program)

    def _insert(self, key: str, program: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = program
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = program

    # ------------------------------------------------------------ disk tier

    def _disk_path(self, key: str) -> str:
        assert self.disk_dir
        return os.path.join(self.disk_dir, f"{key}.pkl")

    def _disk_get(self, key: str) -> Optional[Any]:
        if not self.disk_dir:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "rb") as handle:
                program = pickle.load(handle)
            try:
                # Refresh the mtime so the budget GC evicts in LRU
                # rather than insertion order.
                os.utime(path)
            except OSError:
                pass
            return program
        except FileNotFoundError:
            return None
        except Exception:
            # A corrupt or version-skewed entry is equivalent to a miss;
            # drop it so it is rebuilt.
            with self._lock:
                self.stats.disk_errors += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, program: Any) -> None:
        if not self.disk_dir:
            return
        path = self._disk_path(key)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(program, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)  # atomic publish
            except BaseException:
                os.unlink(tmp)
                raise
            with self._lock:
                self.stats.disk_writes += 1
        except Exception:
            with self._lock:
                self.stats.disk_errors += 1
            return
        self._disk_gc()

    @contextlib.contextmanager
    def _gc_process_lock(self) -> Iterator[bool]:
        """A *cross-process* advisory mutex over the cache directory.

        Exactly one process GCs the shared tier at a time: the lock is
        a non-blocking ``flock`` on ``<dir>/.gc.lock``, so two workers
        publishing simultaneously cannot both walk the directory,
        double-count ``disk_evictions``, or race each other's unlinks.
        A contended lock yields ``False`` — the loser skips its pass
        (the holder is already collecting the same directory).  On
        platforms without ``fcntl`` the in-process ``_gc_lock`` is the
        only mutex, as before.
        """
        if fcntl is None:
            yield True
            return
        lock_path = os.path.join(self.disk_dir, ".gc.lock")
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        except OSError:
            yield True  # cannot lock — proceed, as the pre-lock code did
            return
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                yield False
                return
            try:
                yield True
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    def _disk_gc(self) -> None:
        """Evict oldest-mtime entries until the disk tier fits the
        budget.  The newest entry always survives, so one oversized
        program cannot empty the cache it was just written to.

        Safe under concurrent multi-process eviction: the pass runs
        under :meth:`_gc_process_lock`, and every candidate is
        re-stat'ed immediately before its unlink — an entry republished
        (or freshened by a disk hit) after the directory walk is
        spared rather than deleted with its new contents."""
        if not self.disk_dir or self.disk_budget <= 0:
            return
        with self._gc_lock:
            with self._gc_process_lock() as acquired:
                if not acquired:
                    with self._lock:
                        self.stats.disk_gc_skipped += 1
                    return
                self._disk_gc_locked()

    def _disk_gc_locked(self) -> None:
        entries = []
        total = 0
        for name in os.listdir(self.disk_dir):
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.disk_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        if total <= self.disk_budget:
            return
        entries.sort()  # oldest mtime first
        evicted = 0
        for mtime, size, path in entries[:-1]:  # keep the newest
            if total <= self.disk_budget:
                break
            try:
                st = os.stat(path)
                if st.st_mtime != mtime:
                    continue  # republished since the walk — spare it
                os.unlink(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            with self._lock:
                self.stats.disk_evictions += evicted

    # ------------------------------------------------------- introspection

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self):
        with self._lock:
            return list(self._entries)

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
        if disk and self.disk_dir and os.path.isdir(self.disk_dir):
            for name in os.listdir(self.disk_dir):
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(self.disk_dir, name))
                    except OSError:
                        pass

    def snapshot(self) -> Dict[str, Any]:
        """Counters plus occupancy, for the ``stats`` request."""
        with self._lock:
            out: Dict[str, Any] = self.stats.snapshot()
            out["size"] = len(self._entries)
        out["capacity"] = self.capacity
        out["hit_rate"] = round(self.stats.hit_rate, 4)
        out["disk_dir"] = self.disk_dir or None
        return out


def resolve_cache_dir(options: CompilerOptions) -> Optional[str]:
    """Map the ``cache_dir`` option to a directory: empty string means
    memory-only, the sentinel ``"default"`` means ``~/.cache/repro``,
    anything else is used as given."""
    raw = options.cache_dir
    if not raw:
        return None
    if raw == "default":
        return DEFAULT_CACHE_DIR
    return raw
