"""Prelude snapshots: compile the prelude once, reuse it forever.

Every cold :func:`repro.driver.compile_source` call re-lexes, re-parses
and re-infers the whole prelude before it reaches the user program.  A
:class:`PreludeSnapshot` performs that work exactly once and freezes
the result:

* the static environment (data types, constructors, kinds, the class
  environment with every prelude class and instance);
* the inferencer state after ``infer_program(<prelude>)`` — the global
  :class:`~repro.core.infer.TypeEnv`, the scheme table, the compiled
  (dictionary-converted) prelude bindings;
* the translated (but *unoptimised*, selector-free) prelude core.

A snapshot is immutable.  :meth:`PreludeSnapshot.fork` produces a
cheap, independent copy of the *mutable containers* (dictionaries and
lists) while sharing the immutable compiled structures — schemes,
kernel ASTs and core bindings are never mutated after the prelude has
been compiled, so sharing them is sound.  Forking costs microseconds
where re-compiling the prelude costs hundreds of milliseconds.

:func:`compile_with_snapshot` then runs the ordinary pipeline on the
user program only, stacked on a fork.  The binding order, schemes and
optimised core are identical to a cold compile: selectors are
regenerated for *all* classes after the user program (exactly where the
one-shot path emits them) and the optimisation passes run over the full
concatenated core.  Determinism of the result is what makes the compile
cache sound — the paper's §8.6 interface ordering fixes dictionary
parameter order, and instance resolution is coherent (Bottu et al.),
so equal inputs give equal elaborations.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, List, Optional, Tuple

from repro.core.classes import ClassEnv
from repro.core.dictionary import generate_selectors
from repro.core.infer import (
    CompiledBinding,
    Inferencer,
    InferResult,
    SchemeEntry,
    TypeEnv,
)
from repro.core.kinds import KindEnv
from repro.core.static import StaticEnv, analyze_program
from repro.coreir.syntax import CoreBinding, CoreProgram
from repro.coreir.translate import translate_bindings
from repro.lang.desugar import desugar_program
from repro.lang.parser import parse_program
from repro.options import CompilerOptions, options_fingerprint
from repro.prelude import PRELUDE_SOURCE, primitive_schemes


def prelude_fingerprint(options: Optional[CompilerOptions] = None,
                        prelude_source: str = PRELUDE_SOURCE) -> str:
    """Digest identifying one prelude compilation: the prelude text plus
    every compilation-relevant option.  A component of every compile
    cache key — editing the prelude or flipping a compiler flag yields a
    new fingerprint and therefore a cache miss."""
    options = options if options is not None else CompilerOptions()
    h = hashlib.sha256()
    h.update(prelude_source.encode("utf-8"))
    h.update(b"\x00")
    h.update(options_fingerprint(options).encode("ascii"))
    return h.hexdigest()


def _fork_class_env(src: ClassEnv) -> ClassEnv:
    out = ClassEnv(layout=src.layout, single_slot_opt=src.single_slot_opt)
    out.classes = dict(src.classes)
    out.instances = dict(src.instances)
    out.method_owner = dict(src.method_owner)
    out.default_types = list(src.default_types)
    return out


def _fork_static_env(src: StaticEnv, class_env: ClassEnv) -> StaticEnv:
    # Bypass __init__ (it would rebuild the builtins we are about to
    # copy anyway); copy every mutable container one level deep.  The
    # *values* (DataConInfo, ClassInfo, schemes, declaration ASTs) are
    # not mutated after their defining program has been compiled.
    out = StaticEnv.__new__(StaticEnv)
    out.kind_env = KindEnv()
    out.kind_env.kinds = dict(src.kind_env.kinds)
    out.class_env = class_env
    out.data_types = dict(src.data_types)
    out.data_cons = dict(src.data_cons)
    out._tycons = dict(src._tycons)
    out.instance_bodies = list(src.instance_bodies)
    out.class_bodies = dict(src.class_bodies)
    out.synonyms = dict(src.synonyms)
    return out


class PreludeSnapshot:
    """The prelude, compiled once, frozen, and cheap to build upon."""

    def __init__(self, options: CompilerOptions, static_env: StaticEnv,
                 inferencer: Inferencer,
                 core_bindings: Tuple[CoreBinding, ...],
                 fingerprint: str) -> None:
        self.options = options
        self._static_env = static_env
        self._inferencer = inferencer
        #: translated prelude core: unoptimised and selector-free, so a
        #: forked compile can reproduce the one-shot pipeline exactly
        self.core_bindings = core_bindings
        #: number of compiled prelude bindings (the fork's outputs
        #: beyond this index belong to the user program)
        self.n_bindings = len(inferencer.output)
        self.fingerprint = fingerprint
        self.options_fp = options_fingerprint(options)
        self.class_names = frozenset(static_env.class_env.classes)
        u = inferencer.unifier
        self._unifier_counts = (u.unify_count, u.context_reduction_count,
                                u.constraint_propagations)

    # ----------------------------------------------------------- building

    @classmethod
    def build(cls, options: Optional[CompilerOptions] = None,
              prelude_source: str = PRELUDE_SOURCE) -> "PreludeSnapshot":
        """Compile *prelude_source* through the front end (parse,
        desugar, static analysis, inference, translation) and freeze the
        result."""
        options = options if options is not None else CompilerOptions()
        class_env = ClassEnv(layout=options.dict_layout,
                             single_slot_opt=options.single_slot_opt)
        static_env = StaticEnv(class_env)
        global_env = TypeEnv()
        for name, scheme in primitive_schemes().items():
            global_env.bind(name, SchemeEntry(scheme))
        inferencer = Inferencer(static_env, options, global_env)
        program = parse_program(prelude_source, "<prelude>")
        program = desugar_program(program, options.overload_literals)
        analyze_program(program, env=static_env)
        inferencer._install_methods()
        result = inferencer.infer_program(program)
        con_arity = {name: info.arity
                     for name, info in static_env.data_cons.items()}
        core = translate_bindings(result.bindings, con_arity)
        return cls(options, static_env, inferencer, tuple(core.bindings),
                   prelude_fingerprint(options, prelude_source))

    # ------------------------------------------------------------ forking

    def fork(self) -> Tuple[StaticEnv, Inferencer]:
        """An independent compilation state seeded with the prelude.

        The returned environments may be mutated freely (user data
        types, classes, instances, bindings); the snapshot itself is
        never affected, so forks are isolated from each other.
        """
        class_env = _fork_class_env(self._static_env.class_env)
        static_env = _fork_static_env(self._static_env, class_env)
        # A child TypeEnv layer receives every global binding the user
        # program makes; the prelude's own layer below it stays frozen.
        inferencer = Inferencer(static_env, self.options,
                                global_env=self._inferencer.env.child())
        inferencer.names._counters = dict(self._inferencer.names._counters)
        inferencer.warnings = list(self._inferencer.warnings)
        inferencer.output = list(self._inferencer.output)
        inferencer.schemes = dict(self._inferencer.schemes)
        inferencer._compiled_instances = set(
            self._inferencer._compiled_instances)
        inferencer._compiled_defaults = set(
            self._inferencer._compiled_defaults)
        # Carry the prelude's unifier counters so CompileStats reports
        # the same totals as a cold compile.
        (inferencer.unifier.unify_count,
         inferencer.unifier.context_reduction_count,
         inferencer.unifier.constraint_propagations) = self._unifier_counts
        return static_env, inferencer


def compile_with_snapshot(source: str, snapshot: PreludeSnapshot,
                          options: Optional[CompilerOptions] = None,
                          filename: str = "<input>"):
    """Compile *source* on top of *snapshot* — the fast path behind
    ``compile_source(..., snapshot=...)``.

    Produces a :class:`repro.driver.CompiledProgram` with the same
    schemes, warnings, binding order and optimised core as a cold
    ``compile_source(source, options)``.
    """
    from repro.driver import CompiledProgram, _optimize

    if options is None:
        options = snapshot.options
    elif options_fingerprint(options) != snapshot.options_fp:
        raise ValueError(
            "snapshot was built with different compiler options; build a "
            "snapshot for these options (PreludeSnapshot.build(options))")
    static_env, inferencer = snapshot.fork()
    program = parse_program(source, filename)
    program = desugar_program(program, options.overload_literals)
    analyze_program(program, env=static_env)
    inferencer._install_methods()
    result = inferencer.infer_program(program)
    user_compiled: List[CompiledBinding] = \
        result.bindings[snapshot.n_bindings:]
    con_arity = {name: info.arity
                 for name, info in static_env.data_cons.items()}
    user_core = translate_bindings(user_compiled, con_arity)
    # Same tail as the one-shot pipeline: prelude core, user core, then
    # selectors for every class, then whole-program optimisation.
    core = CoreProgram(list(snapshot.core_bindings) + user_core.bindings)
    core.bindings.extend(generate_selectors(static_env.class_env))
    core = _optimize(core, options, static_env.class_env)
    final = InferResult(result.bindings, inferencer.schemes,
                        inferencer.warnings, inferencer.env,
                        inferencer.unifier)
    return CompiledProgram(core, final, static_env, options, inferencer)


# ---------------------------------------------------------------------------
# Process-wide default snapshots (one per option fingerprint)
# ---------------------------------------------------------------------------

_default_snapshots: Dict[str, PreludeSnapshot] = {}
_default_lock = threading.Lock()


def get_default_snapshot(options: Optional[CompilerOptions] = None
                         ) -> PreludeSnapshot:
    """The shared snapshot for *options*, built on first use.

    Snapshots are keyed by :func:`prelude_fingerprint`, so every option
    set that changes compilation output gets its own; service-only
    options (cache sizing, server transport) share one.
    """
    options = options if options is not None else CompilerOptions()
    key = prelude_fingerprint(options)
    with _default_lock:
        snap = _default_snapshots.get(key)
    if snap is None:
        # Built outside the lock: compilation is slow and reentrant
        # (other threads may want other option sets meanwhile).
        snap = PreludeSnapshot.build(options)
        with _default_lock:
            snap = _default_snapshots.setdefault(key, snap)
    return snap


def clear_default_snapshots() -> None:
    """Drop all process-wide snapshots (tests)."""
    with _default_lock:
        _default_snapshots.clear()
