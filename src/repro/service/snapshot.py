"""Prelude snapshots: compile the prelude once, reuse it forever.

Every cold :func:`repro.driver.compile_source` call re-lexes, re-parses
and re-infers the whole prelude before it reaches the user program.  A
:class:`PreludeSnapshot` performs that work exactly once and freezes
the result:

* the static environment (data types, constructors, kinds, the class
  environment with every prelude class and instance);
* the inferencer state after ``infer_program(<prelude>)`` — the global
  :class:`~repro.core.infer.TypeEnv`, the scheme table, the compiled
  (dictionary-converted) prelude bindings;
* the translated (but *unoptimised*, selector-free) prelude core.

A snapshot is immutable.  :meth:`PreludeSnapshot.fork` produces a
cheap, independent copy of the *mutable containers* (dictionaries and
lists) while sharing the immutable compiled structures — schemes,
kernel ASTs and core bindings are never mutated after the prelude has
been compiled, so sharing them is sound.  Forking costs microseconds
where re-compiling the prelude costs hundreds of milliseconds.

:func:`compile_with_snapshot` then runs the ordinary pipeline on the
user program only, stacked on a fork.  Both the prelude build and the
per-fork user compile are :class:`~repro.pipeline.PassManager` runs —
the same registered sequence the cold driver executes, with the
prelude prefix skipped (the build stops after ``translate``; the fork
carries the frozen prelude core as the translate pass's prefix).  The
binding order, schemes and optimised core are identical to a cold
compile: selectors are regenerated for *all* classes after the user
program (exactly where the one-shot path emits them) and the
optimisation passes run over the full concatenated core.  Determinism
of the result is what makes the compile cache sound — the paper's §8.6
interface ordering fixes dictionary parameter order, and instance
resolution is coherent (Bottu et al.), so equal inputs give equal
elaborations.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable, Dict, Optional, Tuple

from repro.core.classes import ClassEnv
from repro.core.infer import Inferencer
from repro.core.kinds import KindEnv
from repro.core.static import StaticEnv
from repro.coreir.syntax import CoreBinding
from repro.options import CompilerOptions, options_fingerprint
from repro.pipeline import (
    TRANSLATE,
    CompileContext,
    default_pass_manager,
)
from repro.prelude import PRELUDE_SOURCE


def prelude_fingerprint(options: Optional[CompilerOptions] = None,
                        prelude_source: str = PRELUDE_SOURCE) -> str:
    """Digest identifying one prelude compilation: the prelude text plus
    every compilation-relevant option.  A component of every compile
    cache key — editing the prelude or flipping a compiler flag yields a
    new fingerprint and therefore a cache miss."""
    options = options if options is not None else CompilerOptions()
    h = hashlib.sha256()
    h.update(prelude_source.encode("utf-8"))
    h.update(b"\x00")
    h.update(options_fingerprint(options).encode("ascii"))
    return h.hexdigest()


def _fork_class_env(src: ClassEnv) -> ClassEnv:
    out = ClassEnv(layout=src.layout, single_slot_opt=src.single_slot_opt,
                   solver=src.solver)
    out.classes = dict(src.classes)
    out.instances = dict(src.instances)
    out.mp_instances = {cls: list(infos)
                        for cls, infos in src.mp_instances.items()}
    out.method_owner = dict(src.method_owner)
    out.default_types = list(src.default_types)
    return out


def _fork_static_env(src: StaticEnv, class_env: ClassEnv) -> StaticEnv:
    # Bypass __init__ (it would rebuild the builtins we are about to
    # copy anyway); copy every mutable container one level deep.  The
    # *values* (DataConInfo, ClassInfo, schemes, declaration ASTs) are
    # not mutated after their defining program has been compiled.
    out = StaticEnv.__new__(StaticEnv)
    out.kind_env = KindEnv()
    out.kind_env.kinds = dict(src.kind_env.kinds)
    out.class_env = class_env
    out.data_types = dict(src.data_types)
    out.data_cons = dict(src.data_cons)
    out._tycons = dict(src._tycons)
    out.instance_bodies = list(src.instance_bodies)
    out.mp_instance_bodies = list(src.mp_instance_bodies)
    out.class_bodies = dict(src.class_bodies)
    out.synonyms = dict(src.synonyms)
    return out


class PreludeSnapshot:
    """The prelude, compiled once, frozen, and cheap to build upon."""

    def __init__(self, options: CompilerOptions, static_env: StaticEnv,
                 inferencer: Inferencer,
                 core_bindings: Tuple[CoreBinding, ...],
                 fingerprint: str) -> None:
        self.options = options
        self._static_env = static_env
        self._inferencer = inferencer
        #: translated prelude core: unoptimised and selector-free, so a
        #: forked compile can reproduce the one-shot pipeline exactly
        self.core_bindings = core_bindings
        #: number of compiled prelude bindings (the fork's outputs
        #: beyond this index belong to the user program)
        self.n_bindings = len(inferencer.output)
        self.fingerprint = fingerprint
        self.options_fp = options_fingerprint(options)
        self.class_names = frozenset(static_env.class_env.classes)
        u = inferencer.unifier
        self._unifier_counts = (u.unify_count, u.context_reduction_count,
                                u.constraint_propagations)
        solver = getattr(u, "solver", None)
        self._solver_counts = (
            (solver.firings, solver.simplifications, solver.store_peak)
            if getattr(solver, "name", "") == "chr" else None)

    # ----------------------------------------------------------- building

    @classmethod
    def build(cls, options: Optional[CompilerOptions] = None,
              prelude_source: str = PRELUDE_SOURCE) -> "PreludeSnapshot":
        """Compile *prelude_source* through the shared pipeline's
        front-end prefix (parse .. infer .. translate; no selectors, no
        optimisation — those run per fork over the full program) and
        freeze the result."""
        options = options if options is not None else CompilerOptions()
        ctx = CompileContext.fresh(options, [(prelude_source, "<prelude>")])
        default_pass_manager().run(ctx, stop_after=TRANSLATE)
        return cls(options, ctx.static_env, ctx.inferencer,
                   tuple(ctx.core.bindings),
                   prelude_fingerprint(options, prelude_source))

    # ------------------------------------------------------------ forking

    def fork(self) -> Tuple[StaticEnv, Inferencer]:
        """An independent compilation state seeded with the prelude.

        The returned environments may be mutated freely (user data
        types, classes, instances, bindings); the snapshot itself is
        never affected, so forks are isolated from each other.
        """
        class_env = _fork_class_env(self._static_env.class_env)
        static_env = _fork_static_env(self._static_env, class_env)
        # A child TypeEnv layer receives every global binding the user
        # program makes; the prelude's own layer below it stays frozen.
        inferencer = Inferencer(static_env, self.options,
                                global_env=self._inferencer.env.child())
        inferencer.names._counters = dict(self._inferencer.names._counters)
        inferencer.warnings = list(self._inferencer.warnings)
        inferencer.output = list(self._inferencer.output)
        inferencer.schemes = dict(self._inferencer.schemes)
        inferencer._compiled_instances = set(
            self._inferencer._compiled_instances)
        inferencer._compiled_defaults = set(
            self._inferencer._compiled_defaults)
        # Carry the prelude's unifier counters so CompileStats reports
        # the same totals as a cold compile.
        (inferencer.unifier.unify_count,
         inferencer.unifier.context_reduction_count,
         inferencer.unifier.constraint_propagations) = self._unifier_counts
        if self._solver_counts is not None:
            solver = inferencer.unifier.solver
            (solver.firings, solver.simplifications,
             solver.store_peak) = self._solver_counts
        return static_env, inferencer


def compile_with_snapshot(source: str, snapshot: PreludeSnapshot,
                          options: Optional[CompilerOptions] = None,
                          filename: str = "<input>",
                          observer: Optional[
                              Callable[[str, CompileContext], None]] = None):
    """Compile *source* on top of *snapshot* — the fast path behind
    ``compile_source(..., snapshot=...)``.

    Runs the same pass sequence as a cold compile, with the prelude
    prefix skipped: the forked environments stand in for the prelude's
    front-end passes, and the frozen prelude core rides in as the
    translate pass's prefix, so selectors and the §8/§9 transforms see
    the full concatenated program.  Produces a
    :class:`repro.driver.CompiledProgram` with the same schemes,
    warnings, binding order and optimised core as a cold
    ``compile_source(source, options)``.
    """
    from repro.driver import program_from_context

    if options is None:
        options = snapshot.options
    elif options_fingerprint(options) != snapshot.options_fp:
        raise ValueError(
            "snapshot was built with different compiler options; build a "
            "snapshot for these options (PreludeSnapshot.build(options))")
    static_env, inferencer = snapshot.fork()
    ctx = CompileContext.forked(options, [(source, filename)],
                                static_env, inferencer,
                                prefix_core=snapshot.core_bindings,
                                n_prefix_bindings=snapshot.n_bindings)
    default_pass_manager().run(ctx, observer=observer)
    return program_from_context(ctx)


# ---------------------------------------------------------------------------
# Process-wide default snapshots (one per option fingerprint)
# ---------------------------------------------------------------------------

_default_snapshots: Dict[str, PreludeSnapshot] = {}
_default_lock = threading.Lock()


def get_default_snapshot(options: Optional[CompilerOptions] = None
                         ) -> PreludeSnapshot:
    """The shared snapshot for *options*, built on first use.

    Snapshots are keyed by :func:`prelude_fingerprint`, so every option
    set that changes compilation output gets its own; service-only
    options (cache sizing, server transport) share one.
    """
    options = options if options is not None else CompilerOptions()
    key = prelude_fingerprint(options)
    with _default_lock:
        snap = _default_snapshots.get(key)
    if snap is None:
        # Built outside the lock: compilation is slow and reentrant
        # (other threads may want other option sets meanwhile).
        snap = PreludeSnapshot.build(options)
        with _default_lock:
            snap = _default_snapshots.setdefault(key, snap)
    return snap


def clear_default_snapshots() -> None:
    """Drop all process-wide snapshots (tests)."""
    with _default_lock:
        _default_snapshots.clear()
