"""The multiprocess worker pool behind the sharded compile server.

One :class:`WorkerPool` owns N worker *processes*, each running a full
:class:`~repro.service.server.CompileService` — its own prelude
snapshot, in-memory compile cache and metrics — over a pipe speaking
``(seq, request) -> (seq, response)``.  All workers share the
content-addressed *disk* cache tier (publishes are atomic renames, GC
is cross-process locked; see :mod:`repro.service.cache`), so a program
compiled by one worker is a disk hit for every other.

Protocol invariant: each worker is **serial FIFO** — it processes its
pipe in order and answers in order.  That single invariant makes
failure handling exact:

* the *head* of a shard's pending deque is always the request the
  worker is executing right now;
* a worker crash (EOF on the pipe) therefore fails exactly the head
  with a structured ``service.worker-crashed`` error — the request
  that was likely the poison pill is not retried — while every queued
  request behind it is transparently resubmitted to the respawned
  worker;
* a front-door timeout kills the worker (there is no portable way to
  interrupt a compute-bound request) and the same crash path respawns
  and resubmits, so one runaway request costs one worker restart, not
  the queue behind it.

Workers are started with the ``fork`` start method where available:
the parent builds the prelude snapshot *once* before forking, so
children inherit it by page sharing instead of each paying the
~100ms+ prelude compile — and, because ``fork`` also inherits the
parent's hash seed, per-module compiles are bit-identical to the ones
the parent would have produced locally (the distributed-build
determinism test pins this).
"""

from __future__ import annotations

import itertools
import multiprocessing
import sys
import threading
from collections import deque
from concurrent.futures import Future
from typing import Any, Dict, List, Optional

from repro.options import CompilerOptions

#: fallback request budget for pool management traffic (stats, drain)
_MGMT_TIMEOUT = 30.0


def _crash_error(message: str) -> Dict[str, Any]:
    return {"type": "worker-crashed", "code": "service.worker-crashed",
            "message": message, "pos": None}


def _worker_main(conn, options: CompilerOptions, index: int) -> None:
    """Child-process entry point: serve requests off *conn* serially.

    The pipe is read on the child's main thread; requests execute on a
    single dedicated big-stack thread (interpreted evaluation nests
    deeply — see :func:`repro.coreir.eval.with_big_stack`), which also
    writes the responses so they leave in sequence order.  A ``None``
    sentinel drains: queued requests finish, then the process exits.
    """
    import queue as queue_mod

    from repro.service.server import CompileService

    if sys.getrecursionlimit() < 1_000_000:
        sys.setrecursionlimit(1_000_000)
    service = CompileService(options)
    service.shard_index = index
    work: "queue_mod.Queue" = queue_mod.Queue()

    def run() -> None:
        while True:
            item = work.get()
            if item is None:
                return
            seq, request = item
            try:
                response = service.handle(request)
            except BaseException as exc:  # handle() never raises; belt
                response = {"id": None, "ok": False,
                            "error": _crash_error(
                                f"worker handler failed: {exc}")}
            try:
                conn.send((seq, response))
            except (BrokenPipeError, OSError):
                return

    old = threading.stack_size(512 * 1024 * 1024)
    try:
        handler = threading.Thread(target=run, name=f"repro-shard{index}",
                                   daemon=True)
        handler.start()
    finally:
        threading.stack_size(old)
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        work.put(item)
    work.put(None)
    handler.join(timeout=_MGMT_TIMEOUT)


class _Shard:
    """One worker process plus its parent-side bookkeeping.

    ``_pending`` holds ``(seq, request, future)`` in submission order;
    because the worker is serial FIFO, its head is the in-flight
    request.  A background reader thread per process moves responses
    into futures and drives crash recovery on EOF.
    """

    def __init__(self, index: int, options: CompilerOptions, ctx) -> None:
        self.index = index
        self.options = options
        self._ctx = ctx
        self._lock = threading.Lock()
        self._pending: "deque" = deque()
        self._seq = itertools.count(1)
        self._closed = False
        self.crashes = 0
        self.requests = 0
        self.process = None
        self.conn = None
        self._spawn_locked()

    # ----------------------------------------------------------- lifecycle

    def _spawn_locked(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.options, self.index),
            name=f"repro-shard{self.index}", daemon=True)
        process.start()
        child_conn.close()
        self.conn = parent_conn
        self.process = process
        reader = threading.Thread(target=self._read_loop,
                                  args=(parent_conn, process),
                                  name=f"repro-shard{self.index}-reader",
                                  daemon=True)
        reader.start()

    def submit(self, request: Dict[str, Any]) -> "Future":
        """Queue *request* on this shard; the future resolves to the
        response dict (including structured errors — it never raises
        for request-level failures)."""
        future: "Future" = Future()
        with self._lock:
            if self._closed:
                future.set_result({
                    "id": request.get("id")
                    if isinstance(request, dict) else None,
                    "ok": False,
                    "error": _crash_error("worker pool is stopped")})
                return future
            seq = next(self._seq)
            self._pending.append((seq, request, future))
            self.requests += 1
            try:
                self.conn.send((seq, request))
            except (BrokenPipeError, OSError):
                pass  # the reader's EOF path recovers the queue
        return future

    def outstanding(self) -> int:
        with self._lock:
            return len(self._pending)

    def kill(self) -> None:
        """Kill the worker process (timeout handling, crash tests).
        The reader's EOF path fails the in-flight head, respawns the
        process, and resubmits everything queued behind it."""
        process = self.process
        if process is not None and process.is_alive():
            process.kill()

    def stop(self, grace: float = 1.0) -> None:
        """Drain and stop: queued requests finish within *grace*
        seconds, then the process is killed if still alive."""
        with self._lock:
            self._closed = True
            conn = self.conn
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        process = self.process
        if process is not None:
            process.join(timeout=grace)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        try:
            conn.close()
        except OSError:
            pass

    # -------------------------------------------------------------- reader

    def _read_loop(self, conn, process) -> None:
        while True:
            try:
                seq, response = conn.recv()
            except (EOFError, OSError):
                break
            with self._lock:
                future = None
                if self._pending and self._pending[0][0] == seq:
                    _seq, _request, future = self._pending.popleft()
            if future is not None and not future.done():
                future.set_result(response)
        self._on_worker_exit(conn, process)

    def _on_worker_exit(self, conn, process) -> None:
        """EOF on the pipe: planned (stop) or a crash.  On a crash,
        fail the in-flight head, respawn, resubmit the queue."""
        head = None
        with self._lock:
            if self._closed or conn is not self.conn:
                return  # planned shutdown, or a stale reader
            exitcode = process.exitcode
            self.crashes += 1
            if self._pending:
                head = self._pending.popleft()
            queued = list(self._pending)
            self._pending.clear()
            try:
                conn.close()
            except OSError:
                pass
            self._spawn_locked()
            for _old_seq, request, future in queued:
                seq = next(self._seq)
                self._pending.append((seq, request, future))
                try:
                    self.conn.send((seq, request))
                except (BrokenPipeError, OSError):
                    pass
        if head is not None:
            _seq, request, future = head
            if not future.done():
                future.set_result({
                    "id": request.get("id")
                    if isinstance(request, dict) else None,
                    "ok": False,
                    "error": _crash_error(
                        f"worker process died mid-request "
                        f"(exit code {exitcode}); it was respawned and "
                        f"queued requests were resubmitted")})


class WorkerPool:
    """N sharded worker processes over one shared disk cache.

    Routing: content-addressed requests go to ``shard_of(key)`` —
    stable, so repeated requests for one program always hit the worker
    whose in-memory cache holds it; load-balanced work (distributed
    module builds) uses :meth:`submit_any`, which picks the least
    loaded shard.
    """

    def __init__(self, options: Optional[CompilerOptions] = None,
                 shards: Optional[int] = None) -> None:
        self.options = options if options is not None else CompilerOptions()
        n = shards if shards is not None else self.options.server_shards
        if n < 1:
            raise ValueError("WorkerPool needs at least one shard")
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        # Build the snapshot in the parent *before* forking: children
        # inherit the compiled prelude (and the parent's hash seed,
        # which makes their compiles bit-identical to local ones).
        from repro.service.snapshot import get_default_snapshot
        self.snapshot = get_default_snapshot(self.options)
        self.shards: List[_Shard] = [
            _Shard(i, self.options, ctx) for i in range(n)]
        self._stopped = False

    def __len__(self) -> int:
        return len(self.shards)

    # ------------------------------------------------------------- routing

    def shard_of(self, key: str) -> int:
        """The home shard of a content key (hex digest)."""
        try:
            return int(key[:8], 16) % len(self.shards)
        except ValueError:
            return hash(key) % len(self.shards)

    def submit(self, request: Dict[str, Any],
               shard: Optional[int] = None) -> "Future":
        if shard is None:
            shard = min(range(len(self.shards)),
                        key=lambda i: self.shards[i].outstanding())
        return self.shards[shard].submit(request)

    def submit_any(self, request: Dict[str, Any]) -> "Future":
        """Least-loaded submission, for work without a content home."""
        return self.submit(request, shard=None)

    def outstanding(self, shard: int) -> int:
        return self.shards[shard].outstanding()

    def total_outstanding(self) -> int:
        return sum(s.outstanding() for s in self.shards)

    # ------------------------------------------------------------ lifecycle

    def kill_shard(self, shard: int) -> None:
        self.shards[shard].kill()

    def stop(self, grace: Optional[float] = None) -> None:
        if self._stopped:
            return
        self._stopped = True
        if grace is None:
            grace = self.options.server_drain_grace
        per_shard = max(0.1, grace)
        threads = [threading.Thread(target=s.stop, args=(per_shard,),
                                    daemon=True)
                   for s in self.shards]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=per_shard + 2.0)

    def info(self) -> List[Dict[str, Any]]:
        """Per-shard management view for the ``stats`` response."""
        out = []
        for s in self.shards:
            process = s.process
            out.append({
                "index": s.index,
                "pid": process.pid if process is not None else None,
                "alive": bool(process is not None and process.is_alive()),
                "requests": s.requests,
                "outstanding": s.outstanding(),
                "crashes": s.crashes,
            })
        return out

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.stop()
