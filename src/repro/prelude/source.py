'''The standard prelude, in Mini-Haskell.

This is compiled by the same pipeline as user programs.  It defines the
paper's running examples in their natural habitat: the ``Eq`` class
with instances for ``Int`` and lists (section 2), the ``Text`` class
whose ``reads`` is overloaded *on the result type* (the case tags
cannot handle, section 3), the ``Num`` hierarchy with superclasses
(section 8.1) and default methods (section 8.2).
'''

PRELUDE_SOURCE = r"""
-- Operator fixities (must precede use).
infixr 9 .
infixl 9 !!
infixr 8 ^
infixl 7 *, /, `div`, `mod`
infixl 6 +, -
infixr 5 :, ++
infix  4 ==, /=, <, <=, >, >=
infixl 4 <$>, <*>
infixr 3 &&
infixr 2 ||
infixl 1 >>=, >>
infixr 0 $

-- Core data types.  Bool and Ordering derive their classes, which
-- exercises the 'deriving' expansion inside the prelude itself.
data Bool = False | True deriving (Eq, Ord, Text, Bounded, Enum)
data Ordering = LT | EQ | GT deriving (Eq, Ord, Text, Bounded, Enum)
data Maybe a = Nothing | Just a deriving (Eq, Ord, Text)
data Either a b = Left a | Right b deriving (Eq, Ord, Text)

type String = [Char]

-- ---------------------------------------------------------------------
-- Classes
-- ---------------------------------------------------------------------

class Eq a where
  (==) :: a -> a -> Bool
  (/=) :: a -> a -> Bool
  x /= y = not (x == y)
  x == y = not (x /= y)

class Eq a => Ord a where
  compare :: a -> a -> Ordering
  (<)  :: a -> a -> Bool
  (<=) :: a -> a -> Bool
  (>)  :: a -> a -> Bool
  (>=) :: a -> a -> Bool
  max  :: a -> a -> a
  min  :: a -> a -> a
  x <  y = case compare x y of { LT -> True;  q -> False }
  x <= y = case compare x y of { GT -> False; q -> True }
  x >  y = case compare x y of { GT -> True;  q -> False }
  x >= y = case compare x y of { LT -> False; q -> True }
  max x y = if x <= y then y else x
  min x y = if x <= y then x else y

class Text a where
  show  :: a -> String
  reads :: String -> [(a, String)]

class (Eq a, Text a) => Num a where
  (+) :: a -> a -> a
  (-) :: a -> a -> a
  (*) :: a -> a -> a
  negate :: a -> a
  abs    :: a -> a
  signum :: a -> a
  fromInteger :: Int -> a
  negate x = fromInteger 0 - x
  x - y    = x + negate y

class Num a => Fractional a where
  (/) :: a -> a -> a

class Bounded a where
  minBound :: a
  maxBound :: a

class Enum a where
  toEnum   :: Int -> a
  fromEnum :: a -> Int
  succ     :: a -> a
  pred     :: a -> a
  succ x = toEnum (primAddInt (fromEnum x) 1)
  pred x = toEnum (primSubInt (fromEnum x) 1)

-- Higher-kinded classes (docs/CLASSES.md): the class variable's kind
-- is inferred from the method signatures — 'f' below comes out at
-- * -> * with no annotation syntax.

class Functor f where
  fmap :: (a -> b) -> f a -> f b

class Functor f => Applicative f where
  pure  :: a -> f a
  (<*>) :: f (a -> b) -> f a -> f b

class Applicative m => Monad m where
  return :: a -> m a
  (>>=)  :: m a -> (a -> m b) -> m b
  (>>)   :: m a -> m b -> m b
  return = pure
  m >> k = m >>= \u -> k

-- ---------------------------------------------------------------------
-- Boolean functions
-- ---------------------------------------------------------------------

not :: Bool -> Bool
not True  = False
not False = True

otherwise :: Bool
otherwise = True

(&&) :: Bool -> Bool -> Bool
True  && x = x
False && x = False

(||) :: Bool -> Bool -> Bool
True  || x = True
False || x = x

-- ---------------------------------------------------------------------
-- Basic combinators
-- ---------------------------------------------------------------------

id :: a -> a
id x = x

const :: a -> b -> a
const x y = x

flip :: (a -> b -> c) -> b -> a -> c
flip f x y = f y x

(.) :: (b -> c) -> (a -> b) -> a -> c
f . g = \x -> f (g x)

($) :: (a -> b) -> a -> b
f $ x = f x

fst :: (a, b) -> a
fst (x, y) = x

snd :: (a, b) -> b
snd (x, y) = y

curry :: ((a, b) -> c) -> a -> b -> c
curry f x y = f (x, y)

uncurry :: (a -> b -> c) -> (a, b) -> c
uncurry f (x, y) = f x y

until :: (a -> Bool) -> (a -> a) -> a -> a
until p f x = if p x then x else until p f (f x)

maybe :: b -> (a -> b) -> Maybe a -> b
maybe d f Nothing  = d
maybe d f (Just x) = f x

either :: (a -> c) -> (b -> c) -> Either a b -> c
either f g (Left x)  = f x
either f g (Right y) = g y

-- ---------------------------------------------------------------------
-- Lists
-- ---------------------------------------------------------------------

head :: [a] -> a
head (x:xs) = x
head []     = error "head: empty list"

tail :: [a] -> [a]
tail (x:xs) = xs
tail []     = error "tail: empty list"

null :: [a] -> Bool
null [] = True
null xs = False

length :: [a] -> Int
length []     = 0
length (x:xs) = 1 + length xs

(++) :: [a] -> [a] -> [a]
[]     ++ ys = ys
(x:xs) ++ ys = x : (xs ++ ys)

map :: (a -> b) -> [a] -> [b]
map f []     = []
map f (x:xs) = f x : map f xs

filter :: (a -> Bool) -> [a] -> [a]
filter p [] = []
filter p (x:xs) | p x       = x : filter p xs
                | otherwise = filter p xs

foldr :: (a -> b -> b) -> b -> [a] -> b
foldr f z []     = z
foldr f z (x:xs) = f x (foldr f z xs)

foldl :: (b -> a -> b) -> b -> [a] -> b
foldl f z []     = z
foldl f z (x:xs) = foldl f (f z x) xs

reverse :: [a] -> [a]
reverse xs = foldl (flip (:)) [] xs

concat :: [[a]] -> [a]
concat = foldr (++) []

concatMap :: (a -> [b]) -> [a] -> [b]
concatMap f xs = concat (map f xs)

-- The paper's running example (section 2).
member :: Eq a => a -> [a] -> Bool
member x []     = False
member x (y:ys) = x == y || member x ys

elem :: Eq a => a -> [a] -> Bool
elem = member

notElem :: Eq a => a -> [a] -> Bool
notElem x xs = not (member x xs)

lookup :: Eq a => a -> [(a, b)] -> Maybe b
lookup k []          = Nothing
lookup k ((x, v):xs) = if k == x then Just v else lookup k xs

zip :: [a] -> [b] -> [(a, b)]
zip (x:xs) (y:ys) = (x, y) : zip xs ys
zip xs     ys     = []

zipWith :: (a -> b -> c) -> [a] -> [b] -> [c]
zipWith f (x:xs) (y:ys) = f x y : zipWith f xs ys
zipWith f xs     ys     = []

unzip :: [(a, b)] -> ([a], [b])
unzip [] = ([], [])
unzip ((x, y):ps) = case unzip ps of
                      (xs, ys) -> (x : xs, y : ys)

take :: Int -> [a] -> [a]
take n []     = []
take n (x:xs) = if n <= 0 then [] else x : take (n - 1) xs

drop :: Int -> [a] -> [a]
drop n []     = []
drop n (x:xs) = if n <= 0 then x : xs else drop (n - 1) xs

splitAt :: Int -> [a] -> ([a], [a])
splitAt n xs = (take n xs, drop n xs)

(!!) :: [a] -> Int -> a
[]     !! n = error "(!!): index too large"
(x:xs) !! n = if n == 0 then x else xs !! (n - 1)

takeWhile :: (a -> Bool) -> [a] -> [a]
takeWhile p [] = []
takeWhile p (x:xs) | p x       = x : takeWhile p xs
                   | otherwise = []

dropWhile :: (a -> Bool) -> [a] -> [a]
dropWhile p [] = []
dropWhile p (x:xs) | p x       = dropWhile p xs
                   | otherwise = x : xs

any :: (a -> Bool) -> [a] -> Bool
any p []     = False
any p (x:xs) = p x || any p xs

all :: (a -> Bool) -> [a] -> Bool
all p []     = True
all p (x:xs) = p x && all p xs

and :: [Bool] -> Bool
and = foldr (&&) True

or :: [Bool] -> Bool
or = foldr (||) False

sum :: Num a => [a] -> a
sum xs = foldl (+) (fromInteger 0) xs

product :: Num a => [a] -> a
product xs = foldl (*) (fromInteger 1) xs

maximum :: Ord a => [a] -> a
maximum []     = error "maximum: empty list"
maximum (x:xs) = foldl max x xs

minimum :: Ord a => [a] -> a
minimum []     = error "minimum: empty list"
minimum (x:xs) = foldl min x xs

iterate :: (a -> a) -> a -> [a]
iterate f x = x : iterate f (f x)

repeat :: a -> [a]
repeat x = x : repeat x

replicate :: Int -> a -> [a]
replicate n x = take n (repeat x)

enumFromTo :: Int -> Int -> [Int]
enumFromTo a b = if a > b then [] else a : enumFromTo (a + 1) b

last :: [a] -> a
last [x]    = x
last (x:xs) = last xs
last []     = error "last: empty list"

init :: [a] -> [a]
init [x]    = []
init (x:xs) = x : init xs
init []     = error "init: empty list"

nub :: Eq a => [a] -> [a]
nub []     = []
nub (x:xs) = x : nub (filter (\y -> not (x == y)) xs)

insert :: Ord a => a -> [a] -> [a]
insert x []     = [x]
insert x (y:ys) = if x <= y then x : y : ys else y : insert x ys

sort :: Ord a => [a] -> [a]
sort = foldr insert []

-- Generic enumeration (the class-polymorphic sibling of enumFromTo).
range :: Enum a => a -> a -> [a]
range a b = map toEnum (enumFromTo (fromEnum a) (fromEnum b))

allValues :: (Bounded a, Enum a) => [a]
allValues = range minBound maxBound

-- ---------------------------------------------------------------------
-- Functor / Applicative / Monad combinators
-- ---------------------------------------------------------------------

(<$>) :: Functor f => (a -> b) -> f a -> f b
f <$> x = fmap f x

liftA2 :: Applicative f => (a -> b -> c) -> f a -> f b -> f c
liftA2 f x y = f <$> x <*> y

mapM :: Monad m => (a -> m b) -> [a] -> m [b]
mapM f []     = return []
mapM f (x:xs) = f x >>= \y -> mapM f xs >>= \ys -> return (y : ys)

sequence :: Monad m => [m a] -> m [a]
sequence = mapM id

foldM :: Monad m => (b -> a -> m b) -> b -> [a] -> m b
foldM f z []     = return z
foldM f z (x:xs) = f z x >>= \z2 -> foldM f z2 xs

-- ---------------------------------------------------------------------
-- Maybe and list utilities
-- ---------------------------------------------------------------------

fromMaybe :: a -> Maybe a -> a
fromMaybe d Nothing  = d
fromMaybe d (Just x) = x

isJust :: Maybe a -> Bool
isJust Nothing = False
isJust (Just x) = True

isNothing :: Maybe a -> Bool
isNothing m = not (isJust m)

catMaybes :: [Maybe a] -> [a]
catMaybes []             = []
catMaybes (Nothing : ms) = catMaybes ms
catMaybes (Just x : ms)  = x : catMaybes ms

mapMaybe :: (a -> Maybe b) -> [a] -> [b]
mapMaybe f xs = catMaybes (map f xs)

partition :: (a -> Bool) -> [a] -> ([a], [a])
partition p xs = (filter p xs, filter (\x -> not (p x)) xs)

intersperse :: a -> [a] -> [a]
intersperse sep []     = []
intersperse sep [x]    = [x]
intersperse sep (x:xs) = x : sep : intersperse sep xs

foldl1 :: (a -> a -> a) -> [a] -> a
foldl1 f (x:xs) = foldl f x xs
foldl1 f []     = error "foldl1: empty list"

foldr1 :: (a -> a -> a) -> [a] -> a
foldr1 f [x]    = x
foldr1 f (x:xs) = f x (foldr1 f xs)
foldr1 f []     = error "foldr1: empty list"

scanl :: (b -> a -> b) -> b -> [a] -> [b]
scanl f z []     = [z]
scanl f z (x:xs) = z : scanl f (f z x) xs

zip3 :: [a] -> [b] -> [c] -> [(a, b, c)]
zip3 (x:xs) (y:ys) (z:zs) = (x, y, z) : zip3 xs ys zs
zip3 xs ys zs = []

lookupAll :: Eq a => a -> [(a, b)] -> [b]
lookupAll k ps = map snd (filter (\p -> fst p == k) ps)

deleteBy :: Eq a => a -> [a] -> [a]
deleteBy x []     = []
deleteBy x (y:ys) = if x == y then ys else y : deleteBy x ys

groupRuns :: Eq a => [a] -> [[a]]
groupRuns []     = []
groupRuns (x:xs) = case span (\y -> y == x) xs of
                     (run, rest) -> (x : run) : groupRuns rest

-- ---------------------------------------------------------------------
-- Numeric helpers
-- ---------------------------------------------------------------------

div :: Int -> Int -> Int
div = primDivInt

mod :: Int -> Int -> Int
mod = primModInt

even :: Int -> Bool
even n = mod n 2 == 0

odd :: Int -> Bool
odd n = not (even n)

(^) :: Num a => a -> Int -> a
x ^ n = if n <= 0 then fromInteger 1 else x * (x ^ (n - 1))

subtract :: Num a => a -> a -> a
subtract x y = y - x

gcd :: Int -> Int -> Int
gcd a b = if b == 0 then abs a else gcd b (mod a b)

fromIntegral :: Num a => Int -> a
fromIntegral = fromInteger

truncate :: Float -> Int
truncate = primFloatToInt

-- ---------------------------------------------------------------------
-- Characters and strings
-- ---------------------------------------------------------------------

ord :: Char -> Int
ord = primOrd

chr :: Int -> Char
chr = primChr

isDigit :: Char -> Bool
isDigit c = primLeChar '0' c && primLeChar c '9'

isSpace :: Char -> Bool
isSpace c = c == ' ' || c == '\t' || c == '\n' || c == '\r'

isUpper :: Char -> Bool
isUpper c = primLeChar 'A' c && primLeChar c 'Z'

isLower :: Char -> Bool
isLower c = primLeChar 'a' c && primLeChar c 'z'

isAlpha :: Char -> Bool
isAlpha c = isUpper c || isLower c

digitToInt :: Char -> Int
digitToInt c = primOrd c - primOrd '0'

intToDigit :: Int -> Char
intToDigit n = primChr (n + primOrd '0')

dropSpace :: String -> String
dropSpace []     = []
dropSpace (c:cs) = if isSpace c then dropSpace cs else c : cs

stripPrefix :: String -> String -> Maybe String
stripPrefix []     s      = Just s
stripPrefix (c:cs) []     = Nothing
stripPrefix (c:cs) (d:ds) = if c == d then stripPrefix cs ds else Nothing

-- Parsing combinators used by 'reads' instances and derived readers.
readToken :: String -> String -> [((), String)]
readToken t s = case stripPrefix t (dropSpace s) of
                  Nothing -> []
                  Just r  -> [((), r)]

bindReads :: [(a, String)] -> (a -> String -> [(b, String)]) -> [(b, String)]
bindReads []            f = []
bindReads ((x, r):rest) f = f x r ++ bindReads rest f

-- The return-type-overloaded reader of section 3: tags cannot express
-- this, dictionaries can.
read :: Text a => String -> a
read s = case filter (\p -> null (dropSpace (snd p))) (reads s) of
           []           -> error "read: no parse"
           ((x, r):ps)  -> x

readsInt :: String -> [(Int, String)]
readsInt s =
  let go n cs = case cs of
                  []     -> [(n, [])]
                  (c:ds) -> if isDigit c
                              then go (primAddInt (primMulInt n 10)
                                                  (digitToInt c)) ds
                              else [(n, c : ds)]
      first cs = case cs of
                   []     -> []
                   (c:ds) -> if isDigit c then go 0 (c : ds) else []
  in case dropSpace s of
       ('-':cs) -> map (\p -> (primNegInt (fst p), snd p)) (first cs)
       cs       -> first cs

shows :: Text a => a -> String -> String
shows x s = show x ++ s

showString :: String -> String -> String
showString = (++)

unwords :: [String] -> String
unwords []     = ""
unwords [w]    = w
unwords (w:ws) = w ++ " " ++ unwords ws

lines :: String -> [String]
lines [] = []
lines s  = case span (\c -> not (c == '\n')) s of
             (l, rest) -> case rest of
                            []      -> [l]
                            (c:cs)  -> l : lines cs

span :: (a -> Bool) -> [a] -> ([a], [a])
span p [] = ([], [])
span p (x:xs) | p x = case span p xs of
                        (ys, zs) -> (x : ys, zs)
              | otherwise = ([], x : xs)

words :: String -> [String]
words s = case dropWhile isSpace s of
            []  -> []
            s2  -> case span (\c -> not (isSpace c)) s2 of
                     (w, rest) -> w : words rest

unlines :: [String] -> String
unlines []     = ""
unlines (l:ls) = l ++ "\n" ++ unlines ls

-- ---------------------------------------------------------------------
-- Instances for the built-in types
-- ---------------------------------------------------------------------

instance Eq Int where
  (==) = primEqInt

instance Ord Int where
  compare x y = if primEqInt x y then EQ
                else if primLtInt x y then LT else GT
  (<)  = primLtInt
  (<=) = primLeInt
  x >  y = primLtInt y x
  x >= y = primLeInt y x

instance Text Int where
  show  = primShowInt
  reads = readsInt

instance Num Int where
  (+) = primAddInt
  (-) = primSubInt
  (*) = primMulInt
  negate = primNegInt
  abs x = if primLtInt x 0 then primNegInt x else x
  signum x = if primLtInt x 0 then primNegInt 1
             else if primEqInt x 0 then 0 else 1
  fromInteger x = x

instance Eq Float where
  (==) = primEqFloat

instance Ord Float where
  compare x y = if primEqFloat x y then EQ
                else if primLtFloat x y then LT else GT
  (<)  = primLtFloat
  (<=) = primLeFloat
  x >  y = primLtFloat y x
  x >= y = primLeFloat y x

instance Text Float where
  show  = primShowFloat
  reads = primReadsFloat

instance Num Float where
  (+) = primAddFloat
  (-) = primSubFloat
  (*) = primMulFloat
  negate = primNegFloat
  abs x = if primLtFloat x (primIntToFloat 0) then primNegFloat x else x
  signum x = if primLtFloat x (primIntToFloat 0) then primIntToFloat (primNegInt 1)
             else if primEqFloat x (primIntToFloat 0) then primIntToFloat 0
             else primIntToFloat 1
  fromInteger = primIntToFloat

instance Fractional Float where
  (/) = primDivFloat

instance Enum Int where
  toEnum x = x
  fromEnum x = x

instance Bounded Char where
  minBound = primChr 0
  maxBound = primChr 1114111

instance Enum Char where
  toEnum = primChr
  fromEnum = primOrd

instance Eq Char where
  (==) = primEqChar

instance Ord Char where
  compare x y = if primEqChar x y then EQ
                else if primLtChar x y then LT else GT
  (<)  = primLtChar
  (<=) = primLeChar

instance Text Char where
  show c  = '\'' : c : '\'' : []
  reads s = case dropSpace s of
              ('\'' : rest) -> case rest of
                                 (c : more) -> case more of
                                                 ('\'' : r) -> [(c, r)]
                                                 ms         -> []
                                 ms         -> []
              cs            -> []

instance Eq () where
  x == y = True

instance Text () where
  show x  = "()"
  reads s = bindReads (readToken "(" s) (\u r ->
              bindReads (readToken ")" r) (\v r2 -> [((), r2)]))

-- The paper's list instance (section 2), plus Ord and Text.
instance Eq a => Eq [a] where
  []     == []     = True
  (x:xs) == (y:ys) = x == y && xs == ys
  xs     == ys     = False

instance Ord a => Ord [a] where
  compare []     []     = EQ
  compare []     (y:ys) = LT
  compare (x:xs) []     = GT
  compare (x:xs) (y:ys) = case compare x y of
                            EQ -> compare xs ys
                            r  -> r

instance Text a => Text [a] where
  show xs = let go zs = case zs of
                          []     -> ""
                          (w:ws) -> ", " ++ show w ++ go ws
            in case xs of
                 []     -> "[]"
                 (y:ys) -> "[" ++ show y ++ go ys ++ "]"
  reads s = let items r = bindReads (reads r) (\x r1 ->
                            bindReads (readToken "," r1) (\u r2 ->
                              bindReads (items r2) (\xs r3 ->
                                [(x : xs, r3)]))
                            ++ bindReads (readToken "]" r1) (\u r2 ->
                                 [([x], r2)]))
            in bindReads (readToken "[" s) (\u r ->
                 bindReads (readToken "]" r) (\v r2 -> [([], r2)])
                 ++ items r)

-- Higher-kinded instances: Maybe, Either a (a *partial* application
-- of the * -> * -> * constructor), lists, and functions.

instance Functor Maybe where
  fmap f Nothing  = Nothing
  fmap f (Just x) = Just (f x)

instance Applicative Maybe where
  pure = Just
  Nothing  <*> x = Nothing
  (Just f) <*> x = fmap f x

instance Monad Maybe where
  Nothing  >>= k = Nothing
  (Just x) >>= k = k x

instance Functor (Either a) where
  fmap f (Left x)  = Left x
  fmap f (Right y) = Right (f y)

instance Applicative (Either a) where
  pure = Right
  (Left x)  <*> v = Left x
  (Right f) <*> v = fmap f v

instance Monad (Either a) where
  (Left x)  >>= k = Left x
  (Right y) >>= k = k y

instance Functor [] where
  fmap = map

instance Applicative [] where
  pure x    = [x]
  fs <*> xs = concatMap (\f -> map f xs) fs

instance Monad [] where
  xs >>= k = concatMap k xs

-- The reader: functions from a fixed argument type form a monad.
instance Functor ((->) r) where
  fmap = (.)

instance Applicative ((->) r) where
  pure  = const
  f <*> g = \x -> f x (g x)

instance Monad ((->) r) where
  f >>= k = \x -> k (f x) x

-- Pairs: the paper's print-tuple2 example (section 7).
instance (Eq a, Eq b) => Eq (a, b) where
  (x1, y1) == (x2, y2) = x1 == x2 && y1 == y2

instance (Ord a, Ord b) => Ord (a, b) where
  compare (x1, y1) (x2, y2) = case compare x1 x2 of
                                EQ -> compare y1 y2
                                r  -> r

instance (Text a, Text b) => Text (a, b) where
  show (x, y) = "(" ++ show x ++ ", " ++ show y ++ ")"
  reads s = bindReads (readToken "(" s) (\u r0 ->
              bindReads (reads r0) (\x r1 ->
                bindReads (readToken "," r1) (\v r2 ->
                  bindReads (reads r2) (\y r3 ->
                    bindReads (readToken ")" r3) (\w r4 ->
                      [((x, y), r4)])))))

instance (Eq a, Eq b, Eq c) => Eq (a, b, c) where
  (x1, y1, z1) == (x2, y2, z2) = x1 == x2 && y1 == y2 && z1 == z2

instance (Ord a, Ord b, Ord c) => Ord (a, b, c) where
  compare (x1, y1, z1) (x2, y2, z2) =
    case compare x1 x2 of
      EQ -> case compare y1 y2 of
              EQ -> compare z1 z2
              r  -> r
      r  -> r

instance (Eq a, Eq b, Eq c, Eq d) => Eq (a, b, c, d) where
  (x1, y1, z1, w1) == (x2, y2, z2, w2) =
    x1 == x2 && y1 == y2 && z1 == z2 && w1 == w2

instance (Text a, Text b, Text c) => Text (a, b, c) where
  show (x, y, z) = "(" ++ show x ++ ", " ++ show y ++ ", " ++ show z ++ ")"
  reads s = bindReads (readToken "(" s) (\u r0 ->
              bindReads (reads r0) (\x r1 ->
                bindReads (readToken "," r1) (\v r2 ->
                  bindReads (reads r2) (\y r3 ->
                    bindReads (readToken "," r3) (\v2 r4 ->
                      bindReads (reads r4) (\z r5 ->
                        bindReads (readToken ")" r5) (\w r6 ->
                          [((x, y, z), r6)])))))))
"""
