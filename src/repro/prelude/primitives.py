"""Primitive operations.

Primitives are the leaves the prelude builds on: machine arithmetic,
comparisons, character codes, and ``error``.  Each primitive has

* a run-time implementation over evaluator values (strict in the
  arguments it inspects), and
* a type scheme, used to seed the initial type environment.

Everything else — Bool, lists, show/reads, even integer parsing — is
written in Mini-Haskell in the prelude source and compiled by the
normal pipeline, exactly the layering a real Haskell system uses
("instance Eq Int where (==) = primEqInt", section 2).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import EvalError
from repro.core.types import (
    Scheme,
    T_BOOL,
    T_CHAR,
    T_FLOAT,
    T_INT,
    T_STRING,
    TyGen,
    fn_types,
)
from repro.coreir.eval import (
    Evaluator,
    Value,
    VChar,
    VCon,
    VFloat,
    VInt,
    VPrim,
    value_to_python,
)


def _bool(b: bool) -> Value:
    return VCon("True" if b else "False", [])


def _int_bin(op: Callable[[int, int], int]):
    def prim(ev: Evaluator, a, b) -> Value:
        return VInt(op(ev.force(a).value, ev.force(b).value))
    return prim


def _int_cmp(op: Callable[[int, int], bool]):
    def prim(ev: Evaluator, a, b) -> Value:
        return _bool(op(ev.force(a).value, ev.force(b).value))
    return prim


def _float_bin(op: Callable[[float, float], float]):
    def prim(ev: Evaluator, a, b) -> Value:
        return VFloat(op(ev.force(a).value, ev.force(b).value))
    return prim


def _float_cmp(op: Callable[[float, float], bool]):
    def prim(ev: Evaluator, a, b) -> Value:
        return _bool(op(ev.force(a).value, ev.force(b).value))
    return prim


def _div_int(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("division by zero")
    # Haskell's div truncates toward negative infinity, like Python.
    return a // b


def _mod_int(a: int, b: int) -> int:
    if b == 0:
        raise EvalError("division by zero")
    return a % b


def _div_float(a: float, b: float) -> float:
    if b == 0.0:
        raise EvalError("division by zero")
    return a / b


def _prim_error(ev: Evaluator, msg) -> Value:
    text = value_to_python(ev, msg)
    if not isinstance(text, str):
        text = str(text)
    raise EvalError(f"error: {text}")


def _prim_show_int(ev: Evaluator, a) -> Value:
    return _string(str(ev.force(a).value))


def _prim_show_float(ev: Evaluator, a) -> Value:
    v = ev.force(a).value
    text = repr(float(v))
    return _string(text)


def _string(text: str) -> Value:
    out: Value = VCon("[]", [])
    for ch in reversed(text):
        out = VCon(":", [VChar(ch), out])
    return out


def _prim_reads_float(ev: Evaluator, s) -> Value:
    """Parse a leading Float from a string: [(Float, rest)] or []."""
    text = value_to_python(ev, s)
    if not isinstance(text, str):
        text = "".join(text) if text else ""
    stripped = text.lstrip()
    i = 0
    n = len(stripped)
    if i < n and stripped[i] in "+-":
        i += 1
    start_digits = i
    while i < n and stripped[i].isdigit():
        i += 1
    if i == start_digits:
        return VCon("[]", [])
    if i < n and stripped[i] == "." and i + 1 < n and stripped[i + 1].isdigit():
        i += 1
        while i < n and stripped[i].isdigit():
            i += 1
    if i < n and stripped[i] in "eE":
        j = i + 1
        if j < n and stripped[j] in "+-":
            j += 1
        if j < n and stripped[j].isdigit():
            i = j
            while i < n and stripped[i].isdigit():
                i += 1
    try:
        value = float(stripped[:i])
    except ValueError:
        return VCon("[]", [])
    from repro.coreir.eval import VTuple
    pair = VTuple([VFloat(value), _string(stripped[i:])])
    return VCon(":", [pair, VCon("[]", [])])


def _prim_ord(ev: Evaluator, c) -> Value:
    return VInt(ord(ev.force(c).value))


def _prim_chr(ev: Evaluator, n) -> Value:
    v = ev.force(n).value
    if not 0 <= v <= 0x10FFFF:
        raise EvalError(f"chr: code point {v} out of range")
    return VChar(chr(v))


def _prim_int_to_float(ev: Evaluator, n) -> Value:
    return VFloat(float(ev.force(n).value))


def _prim_float_to_int(ev: Evaluator, x) -> Value:
    return VInt(int(ev.force(x).value))


def _prim_seq(ev: Evaluator, a, b):
    ev.force(a)
    return b


_A = TyGen(0)
_B = TyGen(1)


def _mono(*types) -> Scheme:
    return Scheme([], [], fn_types(list(types[:-1]), types[-1]))


#: name -> (arity, implementation, scheme)
_TABLE = {
    # Int arithmetic
    "primAddInt": (2, _int_bin(lambda a, b: a + b), _mono(T_INT, T_INT, T_INT)),
    "primSubInt": (2, _int_bin(lambda a, b: a - b), _mono(T_INT, T_INT, T_INT)),
    "primMulInt": (2, _int_bin(lambda a, b: a * b), _mono(T_INT, T_INT, T_INT)),
    "primDivInt": (2, _int_bin(_div_int), _mono(T_INT, T_INT, T_INT)),
    "primModInt": (2, _int_bin(_mod_int), _mono(T_INT, T_INT, T_INT)),
    "primNegInt": (1, lambda ev, a: VInt(-ev.force(a).value),
                   _mono(T_INT, T_INT)),
    "primEqInt": (2, _int_cmp(lambda a, b: a == b),
                  _mono(T_INT, T_INT, T_BOOL)),
    "primLtInt": (2, _int_cmp(lambda a, b: a < b),
                  _mono(T_INT, T_INT, T_BOOL)),
    "primLeInt": (2, _int_cmp(lambda a, b: a <= b),
                  _mono(T_INT, T_INT, T_BOOL)),
    "primShowInt": (1, _prim_show_int, _mono(T_INT, T_STRING)),
    # Float arithmetic
    "primAddFloat": (2, _float_bin(lambda a, b: a + b),
                     _mono(T_FLOAT, T_FLOAT, T_FLOAT)),
    "primSubFloat": (2, _float_bin(lambda a, b: a - b),
                     _mono(T_FLOAT, T_FLOAT, T_FLOAT)),
    "primMulFloat": (2, _float_bin(lambda a, b: a * b),
                     _mono(T_FLOAT, T_FLOAT, T_FLOAT)),
    "primDivFloat": (2, _float_bin(_div_float),
                     _mono(T_FLOAT, T_FLOAT, T_FLOAT)),
    "primNegFloat": (1, lambda ev, a: VFloat(-ev.force(a).value),
                     _mono(T_FLOAT, T_FLOAT)),
    "primEqFloat": (2, _float_cmp(lambda a, b: a == b),
                    _mono(T_FLOAT, T_FLOAT, T_BOOL)),
    "primLtFloat": (2, _float_cmp(lambda a, b: a < b),
                    _mono(T_FLOAT, T_FLOAT, T_BOOL)),
    "primLeFloat": (2, _float_cmp(lambda a, b: a <= b),
                    _mono(T_FLOAT, T_FLOAT, T_BOOL)),
    "primShowFloat": (1, _prim_show_float, _mono(T_FLOAT, T_STRING)),
    "primReadsFloat": (1, _prim_reads_float, None),  # scheme set below
    "primIntToFloat": (1, _prim_int_to_float, _mono(T_INT, T_FLOAT)),
    "primFloatToInt": (1, _prim_float_to_int, _mono(T_FLOAT, T_INT)),
    # Char
    "primEqChar": (2, lambda ev, a, b: _bool(
        ev.force(a).value == ev.force(b).value),
        _mono(T_CHAR, T_CHAR, T_BOOL)),
    "primLeChar": (2, lambda ev, a, b: _bool(
        ev.force(a).value <= ev.force(b).value),
        _mono(T_CHAR, T_CHAR, T_BOOL)),
    "primLtChar": (2, lambda ev, a, b: _bool(
        ev.force(a).value < ev.force(b).value),
        _mono(T_CHAR, T_CHAR, T_BOOL)),
    "primOrd": (1, _prim_ord, _mono(T_CHAR, T_INT)),
    "primChr": (1, _prim_chr, _mono(T_INT, T_CHAR)),
    # Control
    "error": (1, _prim_error, None),  # scheme set below
    "seq": (2, _prim_seq, None),      # scheme set below
}

# Schemes that need polymorphism or structured types are built here to
# keep the table readable.
from repro.core.kinds import STAR  # noqa: E402
from repro.core.types import list_type, tuple_type  # noqa: E402

_TABLE["error"] = (
    1, _prim_error,
    Scheme([STAR], [], fn_types([T_STRING], _A)))
_TABLE["seq"] = (
    2, _prim_seq,
    Scheme([STAR, STAR], [], fn_types([_A, _B], _B)))
_TABLE["primReadsFloat"] = (
    1, _prim_reads_float,
    Scheme([], [], fn_types(
        [T_STRING], list_type(tuple_type([T_FLOAT, T_STRING])))))


def PRIMITIVES() -> Dict[str, VPrim]:
    """Fresh primitive values for one evaluator instance."""
    return {name: VPrim(name, arity, fn)
            for name, (arity, fn, _scheme) in _TABLE.items()}


def primitive_schemes() -> Dict[str, Scheme]:
    return {name: scheme for name, (_a, _f, scheme) in _TABLE.items()}
