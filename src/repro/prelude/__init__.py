"""The standard prelude: primitive operations (Python-implemented) and
the Mini-Haskell prelude source (classes Eq, Ord, Text, Num,
Fractional; instances for the built-in types; list and character
utilities).

The paper's running examples — ``==`` with instances for ``Int`` and
lists, ``member``, numeric overloading for ``double``, ``print`` /
``read`` on the ``Text`` class — all live here in source form and are
compiled by the same pipeline as user programs.
"""

from repro.prelude.primitives import PRIMITIVES, primitive_schemes
from repro.prelude.source import PRELUDE_SOURCE

__all__ = ["PRIMITIVES", "primitive_schemes", "PRELUDE_SOURCE"]
