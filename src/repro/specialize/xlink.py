"""The link-time cross-module specializer.

Runs as the ``specialize-xmodule`` pipeline pass, after
:func:`repro.modules.build.link_modules` has concatenated the module
cores.  The linker supplies two maps the whole-program pass does not
have:

* ``origins`` — which module defined each top-level binding (prelude
  bindings and link-generated selectors map to
  :data:`~repro.transform.specialize.PRELUDE_ORIGIN`);
* ``unfoldings`` — the merged ``name -> Unfolding`` from every linked
  interface.

Only call sites whose caller and callee origins differ become clone
roots, and callee bodies from user modules come from the unfoldings —
so the rewrite is exactly the one a linker working from ``.ri`` files
alone could perform.  Clone provenance is recorded on each generated
binding and shows in ``--dump-after=specialize-xmodule``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.coreir.syntax import CoreProgram
from repro.transform.specialize import (
    CLONE_BUDGET,
    SpecializeReport,
    Specializer,
)


def xmodule_specialize(program: CoreProgram,
                       origins: Mapping[str, str],
                       unfoldings: Optional[Mapping[str, object]] = None,
                       budget: int = CLONE_BUDGET
                       ) -> Tuple[CoreProgram, SpecializeReport]:
    """Clone cross-module overloaded calls at constant dictionaries;
    returns the rewritten program and a report (clone count, budget
    exhaustion) for the phase trace and warnings."""
    spec = Specializer(program, budget=budget, origin=origins,
                       unfoldings=unfoldings, xmodule_only=True)
    rewritten = spec.run()
    return rewritten, spec.report
