"""Unfoldings: exportable core bodies for cross-module specialisation.

A module interface (§8.6) deliberately hides bodies — that is what
makes rebuilds cut off on body-only edits.  But §9 specialisation needs
the body of the function it clones, so each interface additionally
carries the bodies of its *specialisable* bindings: the overloaded
user functions plus the generated instance-method implementations and
compiled defaults (``dict_arity > 0`` and a lambda shape the cloner can
shed dictionary parameters from).  Dictionary constructors and
selectors need no unfolding — their bindings are regenerated in every
link from the replayed interfaces.

Unfoldings ride in the pickled payload but stay **out of the surface
fingerprint**: a body edit still leaves dependents' compiles cut off
(they compile against schemes, not bodies).  They get their own
digest, :func:`unfold_fingerprint`, over a canonical pretty-printed
rendering — two interfaces with equal ``unfold_fp`` specialise
identically, which is what the link cache keys on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.coreir.syntax import CLam, CoreBinding

#: binding kinds whose bodies are worth shipping — the same set the
#: specializer will clone (repro.transform.specialize.Specializer)
SPECIALIZABLE_KINDS = ("user", "impl", "default")


@dataclass
class Unfolding:
    """The serialized body of one specialisable binding."""

    name: str
    #: the binding's kind ("user" | "impl" | "default")
    kind: str
    #: leading lambda parameters that are dictionary parameters
    dict_arity: int
    #: class constrained by each dictionary parameter (may be None)
    dict_classes: Optional[Tuple[str, ...]]
    #: the full core body (a ``CLam`` taking the dictionaries first)
    expr: object

    def render(self) -> str:
        """Canonical text for fingerprinting — position-free and
        deterministic (the pretty-printer has no source positions to
        leak)."""
        from repro.coreir.pretty import pp_core
        classes = ",".join(self.dict_classes) if self.dict_classes else ""
        return (f"{self.name} [{self.kind}/{self.dict_arity}/{classes}] "
                f"= {pp_core(self.expr)}")


def specializable(binding: CoreBinding) -> bool:
    """Would the specializer clone this binding at a constant
    dictionary vector?  (Mirror of the guard in
    ``Specializer.rewrite``/``clone_of``.)"""
    return (binding.dict_arity > 0
            and binding.kind in SPECIALIZABLE_KINDS
            and isinstance(binding.expr, CLam)
            and len(binding.expr.params) >= binding.dict_arity)


def collect_unfoldings(core: Sequence[CoreBinding]
                       ) -> Dict[str, Unfolding]:
    """The unfoldings a module's own translated core exports.

    Every specialisable binding is included — generated implementations
    and defaults as well as non-exported user helpers, because a clone
    of an exported function cascades into whatever it calls."""
    out: Dict[str, Unfolding] = {}
    for binding in core:
        if specializable(binding):
            out[binding.name] = Unfolding(
                name=binding.name,
                kind=binding.kind,
                dict_arity=binding.dict_arity,
                dict_classes=binding.dict_classes,
                expr=binding.expr,
            )
    return out


def unfold_fingerprint(unfoldings: Dict[str, Unfolding]) -> str:
    """Digest of the canonical renderings, order-free.  Changes exactly
    when some specialisable body (or its dictionary signature)
    changes — the link-level analogue of the interface surface
    fingerprint."""
    h = hashlib.sha256()
    h.update(b"repro-unfoldings\x00")
    for name in sorted(unfoldings):
        h.update(unfoldings[name].render().encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()
