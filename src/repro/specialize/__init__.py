"""Cross-module specialisation (§9 across separate compilation).

Two layers:

* :mod:`repro.specialize.unfold` — **unfoldings**: the serialized core
  bodies of a module's specialisable bindings, shipped inside its
  ``.ri`` interface so importers can clone them without the source;
* :mod:`repro.specialize.xlink` — the **link-time specializer**: after
  :func:`repro.modules.build.link_modules` merges the module cores, it
  clones overloaded calls at constant dictionary vectors that cross a
  module boundary, taking callee bodies from the imported unfoldings.

See docs/SPECIALIZE.md for the format and semantics.
"""

from repro.specialize.unfold import (
    Unfolding,
    collect_unfoldings,
    unfold_fingerprint,
)
from repro.specialize.xlink import xmodule_specialize

__all__ = [
    "Unfolding",
    "collect_unfoldings",
    "unfold_fingerprint",
    "xmodule_specialize",
]
