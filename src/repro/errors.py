"""Diagnostics for every stage of the compiler.

All compiler-raised conditions derive from :class:`ReproError` so that a
driver (or a test) can catch the whole family at once.  Errors carry an
optional source location; :meth:`ReproError.pretty` renders a message
with the offending source line and a caret, in the style users expect
from a production compiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class SourcePos:
    """A position in a source file: 1-based line and column."""

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for every error raised by the compiler."""

    def __init__(self, message: str, pos: Optional[SourcePos] = None) -> None:
        super().__init__(message)
        self.message = message
        self.pos = pos

    def __str__(self) -> str:
        if self.pos is not None:
            return f"{self.pos}: {self.message}"
        return self.message

    def pretty(self, source: Optional[str] = None) -> str:
        """Render the error, quoting the offending line when available."""
        header = str(self)
        if source is None or self.pos is None:
            return header
        lines = source.splitlines()
        if not 1 <= self.pos.line <= len(lines):
            return header
        src_line = lines[self.pos.line - 1]
        caret = " " * (self.pos.column - 1) + "^"
        return f"{header}\n  {src_line}\n  {caret}"


class LexError(ReproError):
    """Raised by the lexer: bad character, unterminated literal, bad layout."""


class ParseError(ReproError):
    """Raised by the parser on malformed syntax."""


class StaticError(ReproError):
    """Raised during static analysis (section 4): malformed or duplicate
    data/class/instance declarations, unknown names, arity errors."""


class DuplicateInstanceError(StaticError):
    """Two instance declarations for the same (class, type constructor)
    pair — section 4 requires instances to be unique."""


class KindError(ReproError):
    """Raised by kind inference when a type expression is ill-kinded."""


class TypeCheckError(ReproError):
    """Base class for errors raised during type inference proper."""


class UnificationError(TypeCheckError):
    """Two types cannot be made equal."""


class OccursCheckError(UnificationError):
    """A type variable would have to contain itself (infinite type)."""


class NoInstanceError(TypeCheckError):
    """Context reduction failed: an overloaded operator is used at a type
    that is not an instance of the corresponding class (section 5)."""

    def __init__(self, class_name: str, type_str: str,
                 pos: Optional[SourcePos] = None) -> None:
        super().__init__(
            f"no instance for {class_name} {type_str}: the overloaded "
            f"operation is used at a type that is not an instance of "
            f"class {class_name}",
            pos,
        )
        self.class_name = class_name
        self.type_str = type_str


class AmbiguityError(TypeCheckError):
    """Placeholder resolution case 4 (section 6.3): a class constraint
    mentions a type variable that appears neither in the parameter
    environment nor in an enclosing binding, and defaulting failed."""

    def __init__(self, class_names: List[str], type_str: str,
                 pos: Optional[SourcePos] = None) -> None:
        classes = ", ".join(class_names)
        super().__init__(
            f"ambiguous overloading: constraint(s) ({classes}) on type "
            f"{type_str} cannot be resolved from the context of use and "
            f"no default applies",
            pos,
        )
        self.class_names = list(class_names)
        self.type_str = type_str


class SignatureError(TypeCheckError):
    """A user-supplied signature (section 8.6) is violated: the inferred
    type is more constrained or less general than the declared one."""


class MonomorphismWarning:
    """Not an error: a letrec binder whose own type does not mention the
    full context of its group (section 8.3) — callable inside the group
    but ambiguous from outside.  Collected, not raised."""

    def __init__(self, name: str, missing: List[str]) -> None:
        self.name = name
        self.missing = list(missing)

    def __str__(self) -> str:
        return (
            f"warning: {self.name} shares a recursive group whose context "
            f"mentions {', '.join(self.missing)} not reflected in its own "
            f"type; it can be called within the group but not from outside"
        )

    def __repr__(self) -> str:
        return f"MonomorphismWarning({self.name!r}, {self.missing!r})"


class EvalError(ReproError):
    """Raised by the core evaluator: pattern match failure, bad primitive
    application, user `error` calls."""


class TagDispatchError(ReproError):
    """Raised by the tag-dispatch baseline (section 3), notably when asked
    to resolve overloading that is determined only by the *result* type
    (e.g. `read`), which tags cannot express."""
