"""Diagnostics for every stage of the compiler.

All compiler-raised conditions derive from :class:`ReproError` so that a
driver (or a test) can catch the whole family at once.  Errors carry an
optional source location; :meth:`ReproError.pretty` renders a message
with the offending source line and a caret, in the style users expect
from a production compiler.

Every error class also carries a stable, machine-readable ``code``
(dotted, most-general segment first: ``type.unify``, ``limit.depth``)
and renders itself to a JSON-able dict via :meth:`ReproError.to_json`.
The compile server's error envelope and the fuzz harness both key off
these codes, so they are part of the public protocol: changing one is a
breaking change (see docs/SERVICE.md for the taxonomy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: Tab stop used when quoting source lines (matches the lexer's layout
#: rule and every mainstream terminal).
TAB_WIDTH = 8


@dataclass(frozen=True)
class SourcePos:
    """A position in a source file: 1-based line and column."""

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def to_json(self) -> Dict[str, Any]:
        return {"filename": self.filename, "line": self.line,
                "column": self.column}


@dataclass(frozen=True)
class Provenance:
    """One source span that contributed to a diagnostic, with the
    *reason* the constraint at that span exists (``application``,
    ``annotation``, ``instance``, ``superclass``, ``defaulting``, ...).

    A type error's :attr:`ReproError.positions` is a list of these —
    ideally the minimal unsatisfiable subset of the constraints the
    inferencer recorded, so every listed span is actually needed to
    reproduce the conflict."""

    pos: SourcePos
    reason: str = "constraint"

    def to_json(self) -> Dict[str, Any]:
        return {"filename": self.pos.filename, "line": self.pos.line,
                "column": self.pos.column, "reason": self.reason}


class ReproError(Exception):
    """Base class for every error raised by the compiler."""

    #: Stable machine-readable error code; subclasses override.
    code = "error"

    def __init__(self, message: str, pos: Optional[SourcePos] = None) -> None:
        super().__init__(message)
        self.message = message
        self.pos = pos
        #: Secondary source spans with reasons (:class:`Provenance`),
        #: e.g. the minimal unsatisfiable constraint set of a type
        #: error.  The primary ``pos`` stays authoritative for callers
        #: that predate multi-location diagnostics.
        self.positions: List[Provenance] = []

    def __str__(self) -> str:
        if self.pos is not None:
            return f"{self.pos}: {self.message}"
        return self.message

    def to_json(self) -> Dict[str, Any]:
        """A JSON-able rendering: ``{code, message, pos, positions}``
        with ``pos`` either ``{filename, line, column}`` or ``None`` and
        ``positions`` a list of ``{filename, line, column, reason}``.
        The compile server sends exactly this shape in its error
        envelope."""
        return {
            "code": self.code,
            "message": str(self),
            "pos": self.pos.to_json() if self.pos is not None else None,
            "positions": [p.to_json() for p in self.positions],
        }

    @staticmethod
    def _caret_block(src_line: str, column: int, indent: str) -> str:
        # Expand tabs in both the quoted line and the caret pad with the
        # same tab stops, so the caret lands under the offending column
        # even when the line mixes tabs and spaces.
        prefix = src_line[:column - 1].expandtabs(TAB_WIDTH)
        caret = " " * len(prefix) + "^"
        return (f"{indent}{src_line.expandtabs(TAB_WIDTH)}\n"
                f"{indent}{caret}")

    def pretty(self, source: Optional[str] = None) -> str:
        """Render the error, quoting the offending line when available.

        When :attr:`positions` is non-empty, each secondary span is
        rendered after the primary one as a ``note:`` with its own
        quoted line and caret (multi-caret output), provided *source*
        holds the file it points into."""
        header = str(self)
        lines = source.splitlines() if source is not None else []
        out = [header]
        if lines and self.pos is not None \
                and 1 <= self.pos.line <= len(lines):
            out.append(self._caret_block(lines[self.pos.line - 1],
                                         self.pos.column, "  "))
        primary_file = self.pos.filename if self.pos is not None else None
        for prov in self.positions:
            p = prov.pos
            if self.pos is not None and p == self.pos:
                continue  # the primary caret already shows this span
            out.append(f"  note: {p}: {prov.reason}")
            same_file = primary_file is None or p.filename == primary_file
            if lines and same_file and 1 <= p.line <= len(lines):
                out.append(self._caret_block(lines[p.line - 1],
                                             p.column, "    "))
        return "\n".join(out)


class LexError(ReproError):
    """Raised by the lexer: bad character, unterminated literal, bad layout."""

    code = "lex"


class ParseError(ReproError):
    """Raised by the parser on malformed syntax."""

    code = "parse"


class StaticError(ReproError):
    """Raised during static analysis (section 4): malformed or duplicate
    data/class/instance declarations, unknown names, arity errors."""

    code = "static"


class DuplicateInstanceError(StaticError):
    """Two instance declarations for the same (class, type constructor)
    pair — section 4 requires instances to be unique."""

    code = "static.duplicate-instance"


class MultiParamError(StaticError):
    """A multi-parameter class declaration under a solver that cannot
    resolve it.  The paper's §5 reduce path is inherently one-parameter;
    MPTCs require ``--set solver=chr`` (docs/SOLVER.md)."""

    code = "static.multi-param"


class SolverOverlapError(StaticError):
    """Two instance simplification rules for the same class overlap:
    some constraint would match both, so CHR resolution loses confluence
    (Bottu et al.).  Single-parameter overlap is caught earlier as
    :class:`DuplicateInstanceError`; this covers the multi-parameter
    head space."""

    code = "solver.overlap"


class SolverNonterminatingError(StaticError):
    """An instance simplification rule does not shrink its goal: every
    head position is a bare variable while the context is non-empty, so
    repeated application of the rule can run forever.  Rejected
    statically so the CHR solver's fuel budget is a backstop, not a
    semantics."""

    code = "solver.nonterminating"


class ModuleError(ReproError):
    """Base class for module-system errors: unresolved imports, name
    conflicts between modules, export-list problems."""

    code = "module"


class UnknownModuleError(ModuleError):
    """An ``import M`` names a module the build cannot find (or any
    import in single-file compilation, which has no module search)."""

    code = "module.unknown"


class ModuleCycleError(ModuleError):
    """The import graph is cyclic (including self-imports); separate
    compilation needs a DAG."""

    code = "module.cycle"

    def __init__(self, modules: List[str],
                 pos: Optional[SourcePos] = None) -> None:
        chain = " -> ".join(modules + modules[:1]) if modules else "?"
        super().__init__(f"import cycle between modules: {chain}", pos)
        self.modules = list(modules)


class StaleInterfaceError(ModuleError):
    """A ``.ri`` interface file on disk has the wrong magic, an older
    format version, or an unreadable payload.  Callers that can rebuild
    the module treat the file as absent instead
    (``load_interface(..., stale_ok=True)``); this error surfaces only
    when a fresh interface cannot be produced."""

    code = "module.interface.stale"


class LinkError(ModuleError):
    """Merging module interfaces failed: the same top-level name, class
    or type is defined in two modules."""

    code = "module.link"


class DuplicateInstanceLinkError(LinkError):
    """Two modules define instances for the same (class, type
    constructor) pair — rejected at link time for coherence, naming both
    defining modules."""

    code = "module.link.duplicate-instance"

    def __init__(self, class_name: str, tycon_name: str,
                 first_module: str, second_module: str,
                 pos: Optional[SourcePos] = None) -> None:
        super().__init__(
            f"duplicate instance {class_name} {tycon_name}: defined in "
            f"module '{first_module}' and again in module "
            f"'{second_module}'; instances must be globally coherent",
            pos,
        )
        self.class_name = class_name
        self.tycon_name = tycon_name
        self.first_module = first_module
        self.second_module = second_module


class KindError(ReproError):
    """Raised by kind inference when a type expression is ill-kinded."""

    code = "kind"


class TypeCheckError(ReproError):
    """Base class for errors raised during type inference proper."""

    code = "type"


class UnificationError(TypeCheckError):
    """Two types cannot be made equal."""

    code = "type.unify"


class OccursCheckError(UnificationError):
    """A type variable would have to contain itself (infinite type)."""

    code = "type.occurs"


class NoInstanceError(TypeCheckError):
    """Context reduction failed: an overloaded operator is used at a type
    that is not an instance of the corresponding class (section 5)."""

    code = "type.no-instance"

    def __init__(self, class_name: str, type_str: str,
                 pos: Optional[SourcePos] = None) -> None:
        super().__init__(
            f"no instance for {class_name} {type_str}: the overloaded "
            f"operation is used at a type that is not an instance of "
            f"class {class_name}",
            pos,
        )
        self.class_name = class_name
        self.type_str = type_str


class AmbiguityError(TypeCheckError):
    """Placeholder resolution case 4 (section 6.3): a class constraint
    mentions a type variable that appears neither in the parameter
    environment nor in an enclosing binding, and defaulting failed."""

    code = "type.ambiguous"

    def __init__(self, class_names: List[str], type_str: str,
                 pos: Optional[SourcePos] = None) -> None:
        classes = ", ".join(class_names)
        super().__init__(
            f"ambiguous overloading: constraint(s) ({classes}) on type "
            f"{type_str} cannot be resolved from the context of use and "
            f"no default applies",
            pos,
        )
        self.class_names = list(class_names)
        self.type_str = type_str


class SignatureError(TypeCheckError):
    """A user-supplied signature (section 8.6) is violated: the inferred
    type is more constrained or less general than the declared one."""

    code = "type.signature"


class MonomorphismWarning:
    """Not an error: a letrec binder whose own type does not mention the
    full context of its group (section 8.3) — callable inside the group
    but ambiguous from outside.  Collected, not raised."""

    def __init__(self, name: str, missing: List[str]) -> None:
        self.name = name
        self.missing = list(missing)

    def __str__(self) -> str:
        return (
            f"warning: {self.name} shares a recursive group whose context "
            f"mentions {', '.join(self.missing)} not reflected in its own "
            f"type; it can be called within the group but not from outside"
        )

    def __repr__(self) -> str:
        return f"MonomorphismWarning({self.name!r}, {self.missing!r})"


class SpecializeBudgetWarning:
    """Not an error: a specialisation pass ran out of its clone budget
    (``options.specialize_budget``) and stopped creating clones; the
    program is still correct, just less specialised.  Collected, not
    raised.  Carries a stable machine-readable ``code`` like the error
    classes so the server can expose it structurally."""

    code = "spec.budget-exhausted"

    def __init__(self, pass_name: str, budget: int) -> None:
        self.pass_name = pass_name
        self.budget = budget

    def to_json(self) -> dict:
        return {"code": self.code, "pass": self.pass_name,
                "budget": self.budget, "message": str(self)}

    def __str__(self) -> str:
        return (f"warning: {self.pass_name} exhausted its clone budget "
                f"({self.budget}); some overloaded calls keep dictionary "
                f"dispatch (raise --set specialize_budget=N to clone more)")

    def __repr__(self) -> str:
        return (f"SpecializeBudgetWarning({self.pass_name!r}, "
                f"{self.budget!r})")


class EvalError(ReproError):
    """Raised by the core evaluator: pattern match failure, bad primitive
    application, user `error` calls."""

    code = "eval"


class TagDispatchError(ReproError):
    """Raised by the tag-dispatch baseline (section 3), notably when asked
    to resolve overloading that is determined only by the *result* type
    (e.g. `read`), which tags cannot express."""

    code = "tags"


class CoreLintError(ReproError):
    """The core lint found an ill-formed program after a pipeline pass.

    A lint failure means a compiler bug — some pass broke scoping, an
    arity, a dictionary shape or an annotation invariant — never a user
    error, so the message names the offending pass and binding.  The
    concrete checks are subclasses with stable ``lint.*`` codes (see
    docs/CORE.md for the full table)."""

    code = "lint"

    def __init__(self, message: str, pos: Optional[SourcePos] = None,
                 pass_name: Optional[str] = None,
                 binding: Optional[str] = None) -> None:
        where = []
        if binding is not None:
            where.append(f"in binding '{binding}'")
        if pass_name is not None:
            where.append(f"after pass '{pass_name}'")
        if where:
            message = f"core lint {' '.join(where)}: {message}"
        else:
            message = f"core lint: {message}"
        super().__init__(message, pos)
        #: the pipeline pass whose output failed the lint, when known
        self.pass_name = pass_name
        #: the top-level binding the failure was found in, when known
        self.binding = binding

    def to_json(self) -> Dict[str, Any]:
        out = super().to_json()
        out["pass"] = self.pass_name
        out["binding"] = self.binding
        return out


class LintScopeError(CoreLintError):
    """A variable occurrence has no enclosing binder or top-level
    definition (and is not a primitive)."""

    code = "lint.scope"


class LintShadowError(CoreLintError):
    """Duplicate binders inside one binding group (lambda parameter
    list, let group, case alternative) or duplicate top-level names —
    ordinary nested shadowing is legal, ambiguity within a single group
    is not."""

    code = "lint.shadow"


class LintConArityError(CoreLintError):
    """A constructor value or case alternative disagrees with the
    constructor's declared arity."""

    code = "lint.con-arity"


class LintSelError(CoreLintError):
    """A tuple/dictionary selection is out of bounds: index outside
    ``[0, arity)`` or arity disagreeing with a literal tuple or
    dictionary operand."""

    code = "lint.sel"


class LintDictShapeError(CoreLintError):
    """A dictionary tuple has the wrong number of slots for the class
    its tag names (layout-aware; see ClassEnv.dict_slots)."""

    code = "lint.dict-shape"


class LintAnnotationError(CoreLintError):
    """A binder annotation is inconsistent: annotation list not
    parallel to the binder list, ``dict_classes`` length disagreeing
    with ``dict_arity``, or a dictionary-parameter annotation naming a
    different class than the binding declares."""

    code = "lint.annotation"


class LintTypeError(CoreLintError):
    """An annotated type is violated where the lint can check it: a
    binding's scheme predicates disagree with its dictionary
    parameters, or a dictionary-arity binding is not the lambda its
    arity promises."""

    code = "lint.type"


class ResourceLimitError(ReproError):
    """A compiler or evaluator resource budget was exhausted: parser or
    type-checker depth guard, evaluator depth budget, or a Python
    ``RecursionError`` caught at a phase boundary.  Deliberately a
    `ReproError` so long-lived hosts (the compile server, the REPL) treat
    pathological inputs like any other diagnostic instead of dying."""

    code = "limit"

    def __init__(self, message: str, pos: Optional[SourcePos] = None,
                 limit: Optional[str] = None) -> None:
        super().__init__(message, pos)
        #: Name of the exhausted budget (e.g. ``"max_parse_depth"``),
        #: when known — lets callers tell users which knob to raise.
        self.limit = limit


class ServiceLimitError(ReproError):
    """A client-supplied per-request limit (``timeout``, ``max_depth``,
    ``step_limit``) exceeds the server-configured ceiling.  The service
    rejects the request rather than trusting the envelope — a
    misbehaving client must not be able to grant itself a bigger
    resource budget than the operator allowed."""

    code = "service.limit-exceeded"

    def __init__(self, param: str, given: Any, ceiling: Any) -> None:
        super().__init__(
            f"request {param}={given!r} exceeds the server ceiling "
            f"{ceiling!r}")
        self.param = param
        self.given = given
        self.ceiling = ceiling
        #: mirrors ResourceLimitError.limit so the server envelope's
        #: ``limit`` field names the offending knob uniformly
        self.limit = param
