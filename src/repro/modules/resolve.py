"""Module discovery and the import DAG.

The resolver does a *header scan* of each source — real lexer, real
parser productions, but only as far as the ``module``/``import``
prefix — so dependency analysis never depends on fixities or other
cross-module context the full parse needs.  The body is parsed later,
by the per-module compile, with imported fixities in hand.

The import graph must be a DAG: strongly connected components of size
greater than one (and self-imports) are rejected with a located
:class:`~repro.errors.ModuleCycleError`, reusing
:func:`repro.util.graph.strongly_connected_components`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ModuleCycleError, ModuleError, UnknownModuleError
from repro.lang import ast
from repro.lang.lexer import lex
from repro.lang.parser import Parser
from repro.lang.tokens import TokenType
from repro.limits import DEFAULT_PARSE_DEPTH
from repro.util.graph import Digraph, strongly_connected_components

#: extension of module source files
MODULE_SUFFIX = ".mhs"


@dataclass
class ModuleSource:
    """One module's source text plus its scanned header."""

    name: str
    filename: str
    source: str
    imports: List[ast.ImportDecl] = field(default_factory=list)
    exports: Optional[List[str]] = None

    @property
    def import_names(self) -> List[str]:
        return [imp.module for imp in self.imports]


def scan_module_source(source: str, filename: str = "<input>",
                       name: Optional[str] = None,
                       max_depth: int = DEFAULT_PARSE_DEPTH) -> ModuleSource:
    """Scan the ``module``/``import`` prefix of *source*.

    The module's name comes from the header when present, else from
    *name*, else from the file name's stem.  A header that contradicts
    the file name is rejected — the resolver maps names to files, so
    they must agree.
    """
    tokens = lex(source, filename)
    parser = Parser(tokens, source, max_depth=max_depth)
    module_name: Optional[str] = None
    exports: Optional[List[str]] = None
    if parser.peek().is_keyword("module"):
        module_name, exports = parser.parse_module_header()
    imports: List[ast.ImportDecl] = []
    if parser.peek().is_special("{"):
        parser.advance()
        parser.skip_semis()
        while parser.peek().is_keyword("import"):
            imports.append(parser.parse_import_decl())
            if parser.peek().is_special(";"):
                parser.skip_semis()
            else:
                break
    stem = _stem(filename)
    if module_name is None:
        module_name = name or stem
        if not _valid_module_name(module_name):
            raise ModuleError(
                f"cannot derive a module name from '{filename}': add a "
                f"'module M where' header or name the file like the "
                f"module (Name{MODULE_SUFFIX})")
    elif name is not None and name != module_name:
        raise ModuleError(
            f"module header says '{module_name}' but the build request "
            f"names it '{name}'")
    elif stem is not None and stem != module_name:
        raise ModuleError(
            f"module '{module_name}' is defined in '{filename}'; the "
            f"file must be named {module_name}{MODULE_SUFFIX} so imports "
            f"can find it")
    return ModuleSource(module_name, filename, source, imports, exports)


def _stem(filename: str) -> Optional[str]:
    """The file-name stem when *filename* looks like a real module file
    (``Foo.mhs`` -> ``Foo``); None for synthetic names like ``<input>``."""
    base = os.path.basename(filename)
    if not base.endswith(MODULE_SUFFIX):
        return None
    return base[:-len(MODULE_SUFFIX)]


def _valid_module_name(name: Optional[str]) -> bool:
    return bool(name) and name[0].isupper() and \
        all(c.isalnum() or c in "_'" for c in name)


class ModuleGraph:
    """The import DAG over a set of modules, topologically ordered."""

    def __init__(self, modules: Dict[str, ModuleSource],
                 order: List[str]) -> None:
        #: module name -> source, insertion-ordered by discovery
        self.modules = modules
        #: topological order: every module after all of its imports
        self.order = order
        self.deps: Dict[str, List[str]] = {
            name: list(dict.fromkeys(src.import_names))
            for name, src in modules.items()}
        self.dependents: Dict[str, List[str]] = {name: [] for name in modules}
        for name, deps in self.deps.items():
            for dep in deps:
                self.dependents[dep].append(name)

    def closure(self, name: str) -> List[str]:
        """The transitive imports of *name* (not including itself), in
        topological order — the interfaces a compile of *name* sees."""
        seen = set()
        stack = list(self.deps[name])
        while stack:
            dep = stack.pop()
            if dep in seen:
                continue
            seen.add(dep)
            stack.extend(self.deps[dep])
        return [m for m in self.order if m in seen]

    def dependents_closure(self, name: str) -> List[str]:
        """Every module that (transitively) imports *name*."""
        seen = set()
        stack = list(self.dependents[name])
        while stack:
            dep = stack.pop()
            if dep in seen:
                continue
            seen.add(dep)
            stack.extend(self.dependents[dep])
        return [m for m in self.order if m in seen]


def resolve_graph(sources: Sequence[ModuleSource]) -> ModuleGraph:
    """Form the import DAG, rejecting duplicates, unknown imports,
    self-imports and cycles with located errors."""
    modules: Dict[str, ModuleSource] = {}
    for src in sources:
        other = modules.get(src.name)
        if other is not None:
            raise ModuleError(
                f"module '{src.name}' is defined twice: in "
                f"'{other.filename}' and '{src.filename}'")
        modules[src.name] = src
    graph = Digraph()
    for name in modules:
        graph.add_node(name)
    for name, src in modules.items():
        for imp in src.imports:
            if imp.module not in modules:
                raise UnknownModuleError(
                    f"import of unknown module '{imp.module}' (known "
                    f"modules: {', '.join(sorted(modules)) or 'none'})",
                    imp.pos)
            if imp.module == name:
                raise ModuleCycleError([name], imp.pos)
            graph.add_edge(name, imp.module)
    order: List[str] = []
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            cycle = sorted(component)
            pos = None
            for member in cycle:
                for imp in modules[member].imports:
                    if imp.module in component:
                        pos = imp.pos
                        break
                if pos is not None:
                    break
            raise ModuleCycleError(cycle, pos)
        order.append(component[0])
    return ModuleGraph(modules, order)


def discover_modules(paths: Sequence[str],
                     max_depth: int = DEFAULT_PARSE_DEPTH) -> ModuleGraph:
    """Scan *paths* (directories searched recursively for ``*.mhs``
    files, or explicit files) into a resolved module graph."""
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs.sort()
                for fname in sorted(names):
                    if fname.endswith(MODULE_SUFFIX):
                        files.append(os.path.join(root, fname))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise ModuleError(f"no such file or directory: '{path}'")
    if not files:
        raise ModuleError(
            f"no module sources found under {', '.join(paths)} "
            f"(module files end in {MODULE_SUFFIX})")
    sources = []
    for fname in dict.fromkeys(files):
        with open(fname, "r", encoding="utf-8") as handle:
            text = handle.read()
        sources.append(scan_module_source(text, fname, max_depth=max_depth))
    return resolve_graph(sources)


def scan_inline_modules(
        specs: Sequence[Union[Tuple[Optional[str], str], Dict[str, str]]],
        max_depth: int = DEFAULT_PARSE_DEPTH) -> ModuleGraph:
    """Resolve modules supplied as in-memory sources (the server's
    ``build`` verb): each spec is ``{"source": ..., "filename"?: ...,
    "name"?: ...}`` or a ``(name, source)`` pair."""
    sources = []
    for spec in specs:
        if isinstance(spec, dict):
            name = spec.get("name")
            text = spec.get("source", "")
            filename = spec.get("filename") or \
                (f"<{name}>" if name else "<module>")
        else:
            name, text = spec
            filename = f"<{name}>" if name else "<module>"
        sources.append(scan_module_source(text, filename, name=name,
                                          max_depth=max_depth))
    return resolve_graph(sources)
