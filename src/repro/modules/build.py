"""Separate compilation, caching, scheduling and linking.

The heart of the module subsystem.  Each module compiles as an
independent :class:`~repro.pipeline.PassManager` run on a fork of the
prelude snapshot: its imports' *interfaces* (never their sources) are
applied to the forked environments, the module's own source runs
through the front-end passes up to ``translate``, and everything the
run added beyond the snapshot becomes a :class:`ModuleArtifact` —
interface, unoptimised core, schemes, warnings, per-phase timings.

Artifacts are content-addressed: the cache key covers the module
source, the compilation-relevant options, the prelude fingerprint and
the interface fingerprints of the module's *transitive* imports.
Interface fingerprints digest only the exported surface, so a
body-only edit leaves its dependents' keys unchanged — rebuilds are
*cut off* and an edit recompiles O(dependents), not O(modules).

The link step replays every interface onto one fresh fork (with
provenance, so a duplicate instance is reported naming **both**
defining modules — the global coherence check of §4), concatenates the
module cores in topological order after the prelude core, and runs the
back half of the pipeline (selectors + the §8/§9 transforms) over the
whole program, producing a :class:`~repro.driver.CompiledProgram`
indistinguishable from a whole-program compile of the concatenated
sources.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.infer import Inferencer, SchemeEntry
from repro.core.static import StaticEnv
from repro.coreir.syntax import CoreBinding
from repro.errors import (
    DuplicateInstanceLinkError,
    LinkError,
    ModuleError,
    ReproError,
)
from repro.lang.parser import Fixity
from repro.modules.interface import (
    ModuleInterface,
    interface_path,
    load_interface,
    save_interface,
)
from repro.modules.resolve import ModuleGraph, ModuleSource, discover_modules
from repro.options import CompilerOptions, options_fingerprint
from repro.pipeline import TRANSLATE, CompileContext, default_pass_manager
from repro.service.cache import CompileCache, resolve_cache_dir, source_hash
from repro.service.snapshot import PreludeSnapshot, get_default_snapshot

_GENERATED_MARK = "$"


def _generated(name: str) -> bool:
    """Compiler-generated top level (dictionaries, method impls,
    defaults) — never part of a module's importable surface."""
    return _GENERATED_MARK in name


# ---------------------------------------------------------------------------
# Cache keys
# ---------------------------------------------------------------------------


def module_cache_key(source: str, options: CompilerOptions,
                     prelude_fp: str,
                     dep_fingerprints: Sequence[Tuple[str, str]]) -> str:
    """Content address of one module compilation: the source, every
    compilation-relevant option, the prelude, and the interface
    fingerprint of every module in the import *closure*.  Deep
    interface changes reach all transitive dependents through the
    closure; body-only edits change no fingerprint and are cut off."""
    h = hashlib.sha256()
    h.update(b"module-artifact\x00")
    h.update(source_hash(source).encode("ascii"))
    h.update(b"\x00")
    h.update(options_fingerprint(options).encode("ascii"))
    h.update(b"\x00")
    h.update(prelude_fp.encode("ascii"))
    for name, fp in sorted(dep_fingerprints):
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
        h.update(b"=")
        h.update(fp.encode("ascii"))
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Interface application
# ---------------------------------------------------------------------------


class _Provenance:
    """Which module contributed each type-level entity — the memory
    that lets conflicts name *both* sides.  Entities already present in
    the forked environments before any interface is applied belong to
    the prelude."""

    def __init__(self) -> None:
        self.types: Dict[str, str] = {}
        self.classes: Dict[str, str] = {}
        self.synonyms: Dict[str, str] = {}
        self.instances: Dict[Tuple[str, str], str] = {}
        self.methods: Dict[str, str] = {}

    def owner(self, table: Dict[str, str], name: str) -> str:
        return table.get(name, "the prelude")


def _apply_interface(static_env: StaticEnv, inferencer: Inferencer,
                     iface: ModuleInterface, prov: _Provenance) -> None:
    """Install one interface's type-level surface into forked
    environments: kinds, type constructors, data types + constructors,
    synonyms, classes (with method ownership) and instances.  Value
    schemes are *not* bound here — visibility of values follows the
    import declarations, handled by the caller; types, classes and
    instances are global across the import closure (instances must be,
    for coherence)."""
    ce = static_env.class_env
    for name, kind in iface.kinds.items():
        if name not in static_env.kind_env.kinds:
            static_env.kind_env.bind(name, kind)
    for name, tycon in iface.tycons.items():
        static_env._tycons.setdefault(name, tycon)
    for name, info in iface.data_types.items():
        if name in static_env.data_types:
            raise LinkError(
                f"data type '{name}' is defined in "
                f"{_in_module(prov.owner(prov.types, name))} and again in "
                f"module '{iface.module}'")
        static_env.data_types[name] = info
        prov.types[name] = iface.module
        for con in info.constructors:
            if con.name in static_env.data_cons:
                raise LinkError(
                    f"data constructor '{con.name}' is defined in "
                    f"{_in_module(prov.owner(prov.types, con.name))} and "
                    f"again in module '{iface.module}'")
            static_env.data_cons[con.name] = con
            prov.types[con.name] = iface.module
    for name, synonym in iface.synonyms.items():
        if name in static_env.synonyms:
            raise LinkError(
                f"type synonym '{name}' is defined in "
                f"{_in_module(prov.owner(prov.synonyms, name))} and again "
                f"in module '{iface.module}'")
        static_env.synonyms[name] = synonym
        prov.synonyms[name] = iface.module
    for name, cinfo in iface.classes.items():
        if name in ce.classes:
            raise LinkError(
                f"class '{name}' is defined in "
                f"{_in_module(prov.owner(prov.classes, name))} and again "
                f"in module '{iface.module}'")
        ce.classes[name] = cinfo
        prov.classes[name] = iface.module
        for method in cinfo.methods:
            if method.name in ce.method_owner:
                other = ce.method_owner[method.name]
                raise LinkError(
                    f"class method '{method.name}' of class '{name}' "
                    f"(module '{iface.module}') collides with the method "
                    f"of class '{other}' defined in "
                    f"{_in_module(prov.owner(prov.methods, method.name))}")
            ce.method_owner[method.name] = name
            prov.methods[method.name] = iface.module
    for inst in iface.instances:
        key = (inst.tycon_name, inst.class_name)
        if key in ce.instances:
            raise DuplicateInstanceLinkError(
                inst.class_name, inst.tycon_name,
                prov.instances.get(key, "the prelude"), iface.module,
                inst.pos)
        ce.instances[key] = inst
        prov.instances[key] = iface.module


def _in_module(owner: str) -> str:
    return owner if owner == "the prelude" else f"module '{owner}'"


def _extern_names(dep_interfaces: Sequence[ModuleInterface],
                  visible: Dict[str, Tuple[Any, str]],
                  class_env: Any) -> Tuple[str, ...]:
    """Every name a module's core may reference that lives in another
    module's core: the imported values, plus the generated bindings
    behind imported classes and instances — dictionary constructors,
    per-method implementations, and compiled default methods.  The
    core lint treats these as in scope (they are bound at link time)."""
    from repro.util.names import (
        default_method_name,
        dict_var_name,
        method_impl_name,
    )
    names = set(visible)
    for iface in dep_interfaces:
        for cls_name, cinfo in iface.classes.items():
            for m in cinfo.methods:
                names.add(default_method_name(cls_name, m.name))
        for inst in iface.instances:
            names.add(dict_var_name(inst.class_name, inst.tycon_name))
            cinfo = class_env.classes.get(inst.class_name)
            if cinfo is not None:
                for m in cinfo.methods:
                    names.add(method_impl_name(
                        inst.class_name, inst.tycon_name, m.name))
    return tuple(sorted(names))


def _visible_values(msrc: ModuleSource,
                    ifaces: Dict[str, ModuleInterface]
                    ) -> Dict[str, Tuple[Any, str]]:
    """The value bindings *msrc*'s import declarations bring into
    scope: ``name -> (scheme, providing module)``.  An explicit import
    list filters (and is checked against) the provider's exports; a
    bare import takes them all.  The same name from two providers is an
    error unless it is the same entity re-exported (identical printed
    scheme — the diamond-import case)."""
    visible: Dict[str, Tuple[Any, str]] = {}
    for imp in msrc.imports:
        iface = ifaces[imp.module]
        if imp.names is not None:
            for name in imp.names:
                if name not in iface.schemes:
                    raise ModuleError(
                        f"module '{imp.module}' does not export '{name}'",
                        imp.pos)
            names = imp.names
        else:
            names = sorted(iface.schemes)
        for name in names:
            scheme = iface.schemes[name]
            prev = visible.get(name)
            if prev is not None and prev[1] != imp.module:
                if str(prev[0]) != str(scheme):
                    raise ModuleError(
                        f"ambiguous import: '{name}' comes from both "
                        f"module '{prev[1]}' and module '{imp.module}'",
                        imp.pos)
                continue  # the same entity via a diamond — keep the first
            visible[name] = (scheme, imp.module)
    return visible


# ---------------------------------------------------------------------------
# Per-module compilation
# ---------------------------------------------------------------------------


@dataclass
class ModuleArtifact:
    """Everything one module compilation produced.  Immutable once
    built (the cache hands the same artifact to concurrent builds)."""

    interface: ModuleInterface
    #: the module's own translated core (unoptimised, selector-free),
    #: prelude and imports excluded
    core: Tuple[CoreBinding, ...]
    #: every scheme the module's compile added — exported or not,
    #: user-written or generated — rebound at link time
    schemes: Dict[str, Any]
    #: the module's own user-visible top-level names (link-time
    #: duplicate detection)
    own_names: Tuple[str, ...]
    warnings: Tuple[Any, ...] = ()
    #: per-pass wall time of the compile that built this artifact
    phases: Dict[str, Any] = field(default_factory=dict)


def compile_module(msrc: ModuleSource,
                   dep_interfaces: Sequence[ModuleInterface],
                   options: Optional[CompilerOptions] = None,
                   snapshot: Optional[PreludeSnapshot] = None
                   ) -> ModuleArtifact:
    """Compile one module against its imports' interfaces alone.

    *dep_interfaces* must be the module's transitive import closure in
    topological order (:meth:`ModuleGraph.closure`); the sources behind
    those interfaces are never consulted.
    """
    if snapshot is None:
        snapshot = get_default_snapshot(options)
    if options is None:
        options = snapshot.options
    static_env, inferencer = snapshot.fork()
    prov = _Provenance()
    ifaces = {iface.module: iface for iface in dep_interfaces}
    for iface in dep_interfaces:
        _apply_interface(static_env, inferencer, iface, prov)
    visible = _visible_values(msrc, ifaces)
    for name, (scheme, _origin) in visible.items():
        inferencer.env.bind(name, SchemeEntry(scheme))
    inferencer.install_methods()

    fixities: Dict[str, Fixity] = {}
    for iface in dep_interfaces:
        for op, (prec, assoc) in iface.fixities.items():
            fixities[op] = Fixity(prec, assoc)

    base_schemes = set(inferencer.schemes)
    base_warnings = len(inferencer.warnings)
    base_types = set(static_env.data_types)
    base_cons = set(static_env.data_cons)
    base_synonyms = set(static_env.synonyms)
    base_classes = set(static_env.class_env.classes)
    base_instances = set(static_env.class_env.instances)
    base_kinds = set(static_env.kind_env.kinds)
    base_tycons = set(static_env._tycons)

    ctx = CompileContext.forked(options, [(msrc.source, msrc.filename)],
                                static_env, inferencer,
                                prefix_core=snapshot.core_bindings,
                                n_prefix_bindings=snapshot.n_bindings)
    ctx.fixities = fixities or None
    ctx.imports_resolved = True
    ctx.extern_names = _extern_names(dep_interfaces, visible,
                                     static_env.class_env)
    default_pass_manager().run(ctx, stop_after=TRANSLATE)

    program = ctx.units[0].program
    own_core = tuple(ctx.core.bindings[len(snapshot.core_bindings):])
    own_schemes = {name: scheme
                   for name, scheme in inferencer.schemes.items()
                   if name not in base_schemes}
    own_names = tuple(n for n in own_schemes if not _generated(n))
    for name in own_names:
        if name in visible:
            raise ModuleError(
                f"module '{msrc.name}' defines '{name}', which it also "
                f"imports from module '{visible[name][1]}'; rename one or "
                f"drop it from the import list")

    data_types = {n: static_env.data_types[n]
                  for n in static_env.data_types if n not in base_types}
    data_cons = {n: static_env.data_cons[n]
                 for n in static_env.data_cons if n not in base_cons}
    synonyms = {n: static_env.synonyms[n]
                for n in static_env.synonyms if n not in base_synonyms}
    classes = {n: static_env.class_env.classes[n]
               for n in static_env.class_env.classes if n not in base_classes}
    instances = [info
                 for key, info in static_env.class_env.instances.items()
                 if key not in base_instances]
    kinds = {n: static_env.kind_env.kinds[n]
             for n in static_env.kind_env.kinds if n not in base_kinds}
    tycons = {n: static_env._tycons[n]
              for n in static_env._tycons if n not in base_tycons}

    exported = _exported_schemes(msrc, program, own_schemes, visible,
                                 data_types, data_cons, classes, synonyms)
    from repro.specialize.unfold import collect_unfoldings
    iface = ModuleInterface(
        module=msrc.name,
        source_sha=source_hash(msrc.source),
        imports=list(dict.fromkeys(msrc.import_names)),
        schemes=exported,
        kinds=kinds,
        tycons=tycons,
        data_types=data_types,
        data_cons=data_cons,
        synonyms=synonyms,
        classes=classes,
        instances=instances,
        fixities=dict(program.fixities) if program is not None else {},
        unfoldings=collect_unfoldings(own_core),
    )
    return ModuleArtifact(
        interface=iface,
        core=own_core,
        schemes=own_schemes,
        own_names=own_names,
        warnings=tuple(inferencer.warnings[base_warnings:]),
        phases=ctx.trace.as_dict(),
    )


def _exported_schemes(msrc: ModuleSource, program: Any,
                      own_schemes: Dict[str, Any],
                      visible: Dict[str, Tuple[Any, str]],
                      data_types: Dict[str, Any],
                      data_cons: Dict[str, Any],
                      classes: Dict[str, Any],
                      synonyms: Dict[str, Any]) -> Dict[str, Any]:
    """The value schemes *msrc* exports.  Without an export list, every
    user-visible own binding; with one, exactly the listed names —
    which may re-export imports.  Types, constructors and classes are
    always exported (and instances are global), so a name in the export
    list may also denote one of those."""
    exports = program.exports if program is not None else msrc.exports
    if exports is None:
        return {name: scheme for name, scheme in own_schemes.items()
                if not _generated(name)}
    out: Dict[str, Any] = {}
    for name in exports:
        if name in own_schemes and not _generated(name):
            out[name] = own_schemes[name]
        elif name in visible:
            out[name] = visible[name][0]  # re-export
        elif name in data_types or name in data_cons or \
                name in classes or name in synonyms:
            continue  # type-level entities are exported unconditionally
        else:
            raise ModuleError(
                f"module '{msrc.name}' exports '{name}' but neither "
                f"defines nor imports it")
    return out


# ---------------------------------------------------------------------------
# Linking
# ---------------------------------------------------------------------------


@dataclass
class OrphanInstanceWarning:
    """An instance declared in a module defining neither the class nor
    the data type — legal (the link-time coherence check still holds)
    but fragile, so the link reports it."""

    class_name: str
    tycon_name: str
    module: str

    def __str__(self) -> str:
        return (f"orphan instance {self.class_name} {self.tycon_name} in "
                f"module '{self.module}' (the module defines neither the "
                f"class nor the data type)")


def link_modules(artifacts: Sequence[ModuleArtifact],
                 options: Optional[CompilerOptions] = None,
                 snapshot: Optional[PreludeSnapshot] = None):
    """Merge compiled modules into one runnable program.

    *artifacts* must be in topological order (imports first).  Every
    interface is replayed onto a fresh snapshot fork with provenance
    tracking — this is the global coherence check: a (class, type)
    instance pair reaching the link from two modules raises
    :class:`~repro.errors.DuplicateInstanceLinkError` naming both.
    The module cores are concatenated after the prelude core and the
    whole-program half of the pipeline (selectors, §8/§9 transforms)
    runs over the result, so the linked program's optimised core is the
    one a whole-program compile of the concatenated sources produces.
    """
    if snapshot is None:
        snapshot = get_default_snapshot(options)
    if options is None:
        options = snapshot.options
    static_env, inferencer = snapshot.fork()
    prov = _Provenance()
    value_origin: Dict[str, str] = {}
    warnings: List[Any] = []
    core: List[CoreBinding] = list(snapshot.core_bindings)
    #: top-level binding -> defining module, for the cross-module
    #: specializer (names not in the map belong to the prelude)
    origins: Dict[str, str] = {}
    unfoldings: Dict[str, Any] = {}
    for art in artifacts:
        iface = art.interface
        _apply_interface(static_env, inferencer, iface, prov)
        for name in art.own_names:
            if name in value_origin:
                raise LinkError(
                    f"top-level binding '{name}' is defined in module "
                    f"'{value_origin[name]}' and again in module "
                    f"'{iface.module}'")
            value_origin[name] = iface.module
        for name, scheme in art.schemes.items():
            inferencer.env.bind(name, SchemeEntry(scheme))
            inferencer.schemes[name] = scheme
        for inst in iface.instances:
            if inst.class_name not in iface.classes and \
                    inst.tycon_name not in iface.data_types:
                warnings.append(OrphanInstanceWarning(
                    inst.class_name, inst.tycon_name, iface.module))
        warnings.extend(art.warnings)
        core.extend(art.core)
        for binding in art.core:
            origins[binding.name] = iface.module
        unfoldings.update(iface.unfoldings)
    inferencer.install_methods()
    inferencer.warnings.extend(warnings)
    ctx = CompileContext.forked(options, [], static_env, inferencer,
                                prefix_core=tuple(core),
                                n_prefix_bindings=snapshot.n_bindings)
    ctx.imports_resolved = True
    ctx.module_origins = origins
    ctx.unfoldings = unfoldings
    default_pass_manager().run(ctx)
    from repro.driver import program_from_context
    return program_from_context(ctx)


# ---------------------------------------------------------------------------
# The builder: cache + scheduler + link
# ---------------------------------------------------------------------------


@dataclass
class BuildResult:
    """Outcome of one :meth:`ModuleBuilder.build`."""

    #: the linked program (None when linking was skipped)
    program: Optional[Any]
    graph: ModuleGraph
    #: per-module stats: ``{cached, ms, fingerprint[, phases]}``
    modules: Dict[str, Dict[str, Any]]
    order: List[str]
    #: compile-cache counters at the end of the build
    cache: Dict[str, Any]
    seconds: float
    jobs: int

    @property
    def n_cached(self) -> int:
        return sum(1 for s in self.modules.values() if s["cached"])

    @property
    def n_compiled(self) -> int:
        return len(self.modules) - self.n_cached

    def stats(self) -> Dict[str, Any]:
        """JSON-ready summary (the CLI's ``--stats-json`` and the
        server's ``build`` reply)."""
        return {
            "modules": {name: dict(info)
                        for name, info in self.modules.items()},
            "order": list(self.order),
            "n_modules": len(self.order),
            "n_compiled": self.n_compiled,
            "n_cached": self.n_cached,
            "jobs": self.jobs,
            "ms": round(self.seconds * 1e3, 3),
            "cache": dict(self.cache),
        }


@dataclass
class CheckResult:
    """Outcome of one :meth:`ModuleBuilder.check` — type-checking
    without a linked program, tolerant of per-module failures."""

    graph: ModuleGraph
    #: per-module stats: ``{status, ms, ...}`` where status is one of
    #: ``checked`` (fresh compile), ``cached`` (artifact cache hit),
    #: ``error`` (diagnostic recorded) or ``skipped`` (an import
    #: failed, so the module could not be checked)
    modules: Dict[str, Dict[str, Any]]
    order: List[str]
    #: ``(module name, error)`` for every module that failed
    diagnostics: List[Tuple[str, ReproError]]
    cache: Dict[str, Any]
    seconds: float

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def _count(self, status: str) -> int:
        return sum(1 for s in self.modules.values()
                   if s["status"] == status)

    def stats(self) -> Dict[str, Any]:
        """JSON-ready summary (the CLI's ``--stats-json`` and the
        server's ``check`` reply)."""
        return {
            "ok": self.ok,
            "modules": {name: dict(info)
                        for name, info in self.modules.items()},
            "order": list(self.order),
            "n_modules": len(self.order),
            "n_checked": self._count("checked"),
            "n_cached": self._count("cached"),
            "n_errors": self._count("error"),
            "n_skipped": self._count("skipped"),
            "ms": round(self.seconds * 1e3, 3),
            "cache": dict(self.cache),
        }


class ModuleBuilder:
    """Builds module graphs: schedules per-module compiles over the
    import DAG (independent modules in parallel), consults the
    content-addressed artifact cache, writes interface files, links.

    Thread safe per build; a builder may be reused across builds and
    its cache then provides incrementality — after an edit, only the
    edited module and the dependents whose closure fingerprints moved
    miss the cache.
    """

    def __init__(self, options: Optional[CompilerOptions] = None,
                 snapshot: Optional[PreludeSnapshot] = None,
                 cache: Optional[CompileCache] = None) -> None:
        if options is None:
            options = snapshot.options if snapshot is not None \
                else CompilerOptions()
        self.options = options
        self.snapshot = snapshot if snapshot is not None \
            else get_default_snapshot(options)
        if cache is None:
            cache = CompileCache(
                capacity=max(options.cache_size, 1),
                disk_dir=resolve_cache_dir(options),
                disk_budget=options.cache_disk_budget)
        self.cache = cache

    # ------------------------------------------------------------- building

    def build(self, graph: ModuleGraph, jobs: Optional[int] = None,
              out_dir: Optional[str] = None, link: bool = True,
              pool: Optional[Any] = None) -> BuildResult:
        """Compile every module in *graph* (cache permitting), then
        link.  *jobs* > 1 runs independent modules on a thread pool;
        *out_dir* receives ``.ri`` interface files as modules finish.

        With *pool* (a :class:`repro.service.worker.WorkerPool`) the
        build is **distributed**: the same indegree scheduler runs, but
        each cache-miss compile is submitted to a worker process as a
        ``compile_module`` request instead of running on a local
        thread.  Cache consults, ``.ri`` writes and the link stay in
        this process, so the observable outputs — interface bytes,
        linked program, coherence errors — are identical to a local
        build (workers fork from this process and inherit its snapshot
        and hash seed; a test pins the byte equality).
        """
        t0 = time.perf_counter()
        if jobs is None:
            jobs = self.options.build_jobs
        jobs = max(1, int(jobs))
        if pool is not None:
            # One submitter thread per shard keeps every worker busy;
            # fewer would idle shards, the scheduler threads only block.
            jobs = max(jobs, len(pool))
        interfaces: Dict[str, ModuleInterface] = {}
        artifacts: Dict[str, ModuleArtifact] = {}
        stats: Dict[str, Dict[str, Any]] = {}

        def build_one(name: str) -> None:
            msrc = graph.modules[name]
            closure = graph.closure(name)
            key = module_cache_key(
                msrc.source, self.options, self.snapshot.fingerprint,
                [(dep, interfaces[dep].fingerprint) for dep in closure])
            t = time.perf_counter()
            art = self.cache.get(key)
            cached = art is not None
            if not cached:
                art = self._compile_one(msrc, [interfaces[dep]
                                               for dep in closure], pool)
                self.cache.put(key, art)
            interfaces[name] = art.interface
            artifacts[name] = art
            info: Dict[str, Any] = {
                "cached": cached,
                "ms": round((time.perf_counter() - t) * 1e3, 3),
                "fingerprint": art.interface.fingerprint,
                "source_sha": art.interface.source_sha,
                "unfold_fp": art.interface.unfold_fp,
            }
            if not cached:
                info["phases"] = art.phases
            stats[name] = info
            if out_dir:
                self._write_interface(out_dir, name, art.interface)

        if jobs == 1 or len(graph.order) <= 1:
            for name in graph.order:
                build_one(name)
        else:
            self._build_parallel(graph, jobs, build_one)

        program = None
        if link:
            program = link_modules([artifacts[name]
                                    for name in graph.order],
                                   self.options, self.snapshot)
        return BuildResult(program=program, graph=graph, modules=stats,
                           order=list(graph.order),
                           cache=self.cache.snapshot(),
                           seconds=time.perf_counter() - t0, jobs=jobs)

    @staticmethod
    def _write_interface(out_dir: str, name: str,
                         interface: ModuleInterface) -> None:
        path = interface_path(out_dir, name)
        # A stale file (older format version, corruption) loads as
        # None and is overwritten — never a pickle error; an identical
        # up-to-date one is left alone (stable mtimes for downstream
        # build tools).
        existing = load_interface(path, stale_ok=True)
        if existing is None or \
                existing.fingerprint != interface.fingerprint \
                or existing.unfold_fp != interface.unfold_fp \
                or existing.source_sha != interface.source_sha:
            save_interface(interface, path)

    # ------------------------------------------------------------- checking

    def check(self, graph: ModuleGraph,
              out_dir: Optional[str] = None) -> CheckResult:
        """Type-check every module in *graph* without linking or
        evaluating anything.

        Unlike :meth:`build` (fail-fast: the first error aborts the
        whole build) the check loop is *tolerant*: a module that fails
        to compile is recorded as a diagnostic, its dependents are
        marked ``skipped`` (their imports have no interface to apply),
        and every module whose imports are intact is still checked —
        one request reports all independent errors at once.

        Cache reuse is exactly :meth:`build`'s: the artifact key
        covers the source, the options, the prelude and the transitive
        interface fingerprints, so a warm re-check after a body-only
        edit re-infers the edited module alone — its dependents' keys
        are cut off at the unchanged interface fingerprint and hit the
        cache.
        """
        t0 = time.perf_counter()
        interfaces: Dict[str, ModuleInterface] = {}
        stats: Dict[str, Dict[str, Any]] = {}
        diagnostics: List[Tuple[str, ReproError]] = []
        broken: set = set()  # failed or skipped modules

        for name in graph.order:
            blocked_on = sorted(dep for dep in graph.closure(name)
                                if dep in broken)
            if blocked_on:
                broken.add(name)
                stats[name] = {"status": "skipped",
                               "blocked_on": blocked_on}
                continue
            msrc = graph.modules[name]
            closure = graph.closure(name)
            key = module_cache_key(
                msrc.source, self.options, self.snapshot.fingerprint,
                [(dep, interfaces[dep].fingerprint) for dep in closure])
            t = time.perf_counter()
            art = self.cache.get(key)
            cached = art is not None
            if not cached:
                try:
                    art = compile_module(
                        msrc, [interfaces[dep] for dep in closure],
                        self.options, self.snapshot)
                except ReproError as exc:
                    broken.add(name)
                    diagnostics.append((name, exc))
                    stats[name] = {
                        "status": "error",
                        "code": exc.code,
                        "ms": round((time.perf_counter() - t) * 1e3, 3),
                    }
                    continue
                self.cache.put(key, art)
            interfaces[name] = art.interface
            stats[name] = {
                "status": "cached" if cached else "checked",
                "cached": cached,
                "ms": round((time.perf_counter() - t) * 1e3, 3),
                "fingerprint": art.interface.fingerprint,
                "source_sha": art.interface.source_sha,
                "unfold_fp": art.interface.unfold_fp,
            }
            if out_dir:
                self._write_interface(out_dir, name, art.interface)

        return CheckResult(graph=graph, modules=stats,
                           order=list(graph.order),
                           diagnostics=diagnostics,
                           cache=self.cache.snapshot(),
                           seconds=time.perf_counter() - t0)

    #: ceiling on one distributed module compile (it covers a worker
    #: respawn after a crash; local compiles are unbounded as before)
    _DISTRIBUTED_COMPILE_TIMEOUT = 600.0

    def _compile_one(self, msrc: ModuleSource,
                     dep_interfaces: List[ModuleInterface],
                     pool: Optional[Any]) -> ModuleArtifact:
        """One module compile, local or on a pool worker.  The
        ``compile_module`` op carries the live :class:`ModuleSource`
        and dependency interfaces over the worker pipe and returns the
        artifact object; a structured worker error (compile error,
        worker crash) is re-raised here as a :class:`ModuleError`."""
        if pool is None:
            return compile_module(msrc, dep_interfaces, self.options,
                                  self.snapshot)
        future = pool.submit_any({"op": "compile_module", "module": msrc,
                                  "interfaces": list(dep_interfaces)})
        response = future.result(timeout=self._DISTRIBUTED_COMPILE_TIMEOUT)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ModuleError(
                f"distributed compile of module '{msrc.name}' failed "
                f"[{error.get('code', 'error')}]: "
                f"{error.get('message', 'unknown error')}")
        return response["result"]["artifact"]

    @staticmethod
    def _build_parallel(graph: ModuleGraph, jobs: int, build_one) -> None:
        """Indegree scheduling over the import DAG: a module is
        submitted the moment its last import finishes; the pool keeps
        every DAG-independent compile in flight at once.  The first
        failure stops new submissions, lets in-flight work drain, and
        is re-raised."""
        indegree = {name: len(graph.deps[name]) for name in graph.order}
        done: "queue.Queue[Tuple[str, Optional[BaseException]]]" = \
            queue.Queue()
        failure: List[BaseException] = []
        lock = threading.Lock()

        def run(name: str) -> None:
            try:
                build_one(name)
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                done.put((name, exc))
            else:
                done.put((name, None))

        with ThreadPoolExecutor(max_workers=jobs,
                                thread_name_prefix="repro-build") as pool:
            in_flight = 0
            for name in graph.order:
                if indegree[name] == 0:
                    pool.submit(run, name)
                    in_flight += 1
            while in_flight:
                name, exc = done.get()
                in_flight -= 1
                if exc is not None:
                    with lock:
                        failure.append(exc)
                    continue
                if failure:
                    continue  # drain only; no new submissions
                for dependent in graph.dependents[name]:
                    indegree[dependent] -= 1
                    if indegree[dependent] == 0:
                        pool.submit(run, dependent)
                        in_flight += 1
        if failure:
            raise failure[0]


def build_modules(paths: Sequence[str],
                  options: Optional[CompilerOptions] = None,
                  jobs: Optional[int] = None,
                  out_dir: Optional[str] = None,
                  snapshot: Optional[PreludeSnapshot] = None,
                  cache: Optional[CompileCache] = None,
                  link: bool = True,
                  pool: Optional[Any] = None) -> BuildResult:
    """Discover, build and link the modules under *paths* — the one
    call behind ``repro build``.  Raises :class:`ReproError` subclasses
    for every user-facing failure (resolution, compilation, linking).
    *pool* switches per-module compiles to worker processes (see
    :meth:`ModuleBuilder.build`)."""
    graph = discover_modules(paths)
    builder = ModuleBuilder(options=options, snapshot=snapshot, cache=cache)
    return builder.build(graph, jobs=jobs, out_dir=out_dir, link=link,
                         pool=pool)


def check_modules(paths: Sequence[str],
                  options: Optional[CompilerOptions] = None,
                  out_dir: Optional[str] = None,
                  snapshot: Optional[PreludeSnapshot] = None,
                  cache: Optional[CompileCache] = None) -> CheckResult:
    """Discover and type-check the modules under *paths* without
    linking — the call behind ``repro check`` in module mode and the
    server's ``check`` verb.  Per-module compile errors are collected
    in the result, not raised; only *resolution* failures (unreadable
    path, import cycle, missing module) raise."""
    graph = discover_modules(paths)
    builder = ModuleBuilder(options=options, snapshot=snapshot, cache=cache)
    return builder.check(graph, out_dir=out_dir)


__all__ = [
    "BuildResult",
    "CheckResult",
    "check_modules",
    "ModuleArtifact",
    "ModuleBuilder",
    "OrphanInstanceWarning",
    "ReproError",
    "build_modules",
    "compile_module",
    "link_modules",
    "module_cache_key",
]
