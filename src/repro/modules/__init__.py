"""Module system with separate compilation (paper §8.6 made real).

A *module* is one source file with an optional ``module M where``
header and leading ``import`` declarations.  The subsystem splits
compilation of a multi-module program into:

* :mod:`repro.modules.resolve` — discover module sources, scan their
  headers, and form the import DAG (cycles are rejected);
* :mod:`repro.modules.interface` — the serialized ``.ri`` interface: a
  module's exported schemes, types, classes, instance 4-tuples and a
  content fingerprint.  A module compiles against its imports'
  interfaces alone, never their sources;
* :mod:`repro.modules.build` — per-module compilation on a prelude
  snapshot fork, content-addressed caching keyed on (source, options,
  dep-interface fingerprints), a thread-pool scheduler over the DAG,
  and the link step that merges instance environments with a coherence
  check.
"""

from repro.modules.build import (
    BuildResult,
    ModuleArtifact,
    ModuleBuilder,
    build_modules,
    compile_module,
    link_modules,
    module_cache_key,
)
from repro.modules.interface import (
    INTERFACE_VERSION,
    ModuleInterface,
    load_interface,
    save_interface,
)
from repro.modules.resolve import (
    ModuleGraph,
    ModuleSource,
    discover_modules,
    resolve_graph,
    scan_module_source,
)

__all__ = [
    "BuildResult",
    "INTERFACE_VERSION",
    "ModuleArtifact",
    "ModuleBuilder",
    "ModuleGraph",
    "ModuleInterface",
    "ModuleSource",
    "build_modules",
    "compile_module",
    "discover_modules",
    "link_modules",
    "load_interface",
    "module_cache_key",
    "resolve_graph",
    "save_interface",
    "scan_module_source",
]
