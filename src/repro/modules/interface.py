"""Serialized module interfaces — the ``.ri`` files of §8.6.

An interface is everything an importing module needs to compile
against a module *without its source*: the exported value schemes
(whose printed context order fixes dictionary parameter order, §8.6),
the declared data types and constructors, classes with their method
schemes, the instance 4-tuples ``(type, class, dictionary, context)``
(§4), type synonyms, and operator fixities.

Each interface carries a **content fingerprint**: a digest of a
canonical, position-free rendering of the exported surface.  The
fingerprint deliberately ignores everything else — binding bodies,
comments, whitespace — so an edit that does not change a module's
exported surface leaves its fingerprint unchanged and rebuilds of its
dependents are *cut off* (they hit the compile cache, whose key is the
dep-interface fingerprints, not the dep sources).

Since format version 2 an interface also ships **unfoldings** — the
core bodies of its specialisable bindings
(:mod:`repro.specialize.unfold`) — so the link-time cross-module
specializer can clone imported overloaded functions.  Unfoldings stay
out of the surface fingerprint (body edits must not trigger dependent
recompiles); they carry their own digest, ``unfold_fp``, which the
link-level caches key on.  Older ``.ri`` files on disk are handled by
:func:`load_interface`'s ``stale_ok`` mode: treated as absent, never a
pickle or shape error, so a build simply regenerates them.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.classes import ClassInfo, InstanceInfo
from repro.core.kinds import kind_str
from repro.core.static import DataConInfo, DataTypeInfo
from repro.core.types import Scheme
from repro.errors import ModuleError, StaleInterfaceError
from repro.lang import ast

#: bumped whenever the pickled payload layout changes; a version-skewed
#: file on disk is treated as absent and rebuilt.
#: v1: surface only; v2: + unfoldings (cross-module specialisation);
#: v3: Pred grew a ``types`` slot (multi-parameter constraints);
#: v4: class kinds may exceed ``*`` and InstanceInfo grew
#: ``head_arg_kinds`` (higher-kinded instances at partial application).
INTERFACE_VERSION = 4

_MAGIC = b"repro-ri"

#: file extension for interface files
INTERFACE_SUFFIX = ".ri"


@dataclass
class ModuleInterface:
    """The compiled surface of one module."""

    module: str
    source_sha: str
    imports: List[str]
    #: exported value bindings (explicit export lists filter these;
    #: re-exported imports included)
    schemes: Dict[str, Scheme]
    #: kinds of the type constructors this module declares
    kinds: Dict[str, Any]
    #: canonical TyCon objects for the declared constructors
    tycons: Dict[str, Any]
    data_types: Dict[str, DataTypeInfo]
    data_cons: Dict[str, DataConInfo]
    synonyms: Dict[str, Tuple[List[str], ast.SType]]
    classes: Dict[str, ClassInfo]
    instances: List[InstanceInfo]
    fixities: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    fingerprint: str = ""
    #: serialized bodies of the module's specialisable bindings
    #: (``name -> repro.specialize.unfold.Unfolding``); NOT part of the
    #: surface fingerprint — see the module docstring
    unfoldings: Dict[str, Any] = field(default_factory=dict)
    #: digest of the unfoldings (repro.specialize.unfold_fingerprint)
    unfold_fp: str = ""

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = self._compute_fingerprint()
        if not self.unfold_fp and self.unfoldings:
            from repro.specialize.unfold import unfold_fingerprint
            self.unfold_fp = unfold_fingerprint(self.unfoldings)

    # ------------------------------------------------------- fingerprint

    def _compute_fingerprint(self) -> str:
        return hashlib.sha256(self.render().encode("utf-8")).hexdigest()

    def render(self) -> str:
        """The canonical textual interface — §8.6's "interface file"
        listing, deterministic and position-free.  The fingerprint is a
        digest of exactly this text."""
        lines: List[str] = [f"module {self.module}"]
        for name, (prec, assoc) in sorted(self.fixities.items()):
            word = {"l": "infixl", "r": "infixr", "n": "infix"}[assoc]
            lines.append(f"{word} {prec} {name}")
        for name, (params, rhs) in sorted(self.synonyms.items()):
            head = " ".join([name] + list(params))
            lines.append(f"type {head} = {_sty_str(rhs)}")
        for name, info in sorted(self.data_types.items()):
            lines.append(f"data {name} :: {kind_str(info.kind)}")
            for con in info.constructors:
                lines.append(f"  {con.name} :: {con.scheme}  -- tag {con.tag}")
        for name, info in sorted(self.classes.items()):
            supers = ", ".join(info.superclasses)
            lines.append(f"class ({supers}) => {name} "
                         f":: {kind_str(info.tyvar_kind)}")
            for method in info.methods:
                dflt = " (has default)" if method.has_default else ""
                lines.append(f"  {method.name} :: {method.scheme}{dflt}")
        for inst in sorted(self.instances,
                           key=lambda i: (i.class_name, i.tycon_name)):
            ctx = ";".join(",".join(cs) for cs in inst.context)
            arg_kinds = getattr(inst, "head_arg_kinds", None) or []
            kinds = ",".join(kind_str(k) for k in arg_kinds)
            lines.append(f"instance {inst.class_name} {inst.tycon_name} "
                         f"= {inst.dict_name} [{ctx}] @ [{kinds}]")
        for name, scheme in sorted(self.schemes.items()):
            lines.append(f"{name} :: {scheme}")
        return "\n".join(lines)


def _sty_str(ty: ast.SType) -> str:
    """Position-free rendering of type syntax (synonym right-hand
    sides are kept as syntax; the dataclass repr would drag source
    positions into the fingerprint)."""
    if isinstance(ty, ast.STyVar):
        return ty.name
    if isinstance(ty, ast.STyCon):
        return ty.name
    if isinstance(ty, ast.STyApp):
        return f"({_sty_str(ty.fn)} {_sty_str(ty.arg)})"
    return repr(ty)


# ---------------------------------------------------------------------------
# Disk format
# ---------------------------------------------------------------------------


def interface_path(out_dir: str, module: str) -> str:
    return os.path.join(out_dir, module + INTERFACE_SUFFIX)


class _CanonicalPickler(pickle._Pickler):
    """A pickler with object memoization disabled, so every occurrence
    of a sub-object serializes by value and the output bytes are a pure
    function of interface *content*.

    The default pickler emits back-references for objects it has seen,
    making the bytes depend on which sub-objects happen to be shared in
    memory — and sharing differs between a local compile (schemes built
    against live canonical env objects) and a distributed one (dep
    interfaces unpickled from a worker pipe are copies).  Distributed
    builds promise byte-identical ``.ri`` files, so the on-disk format
    must not see the difference.  Interfaces are acyclic trees; the
    cost of dropping the memo is a little duplication, not safety."""

    def memoize(self, obj) -> None:  # noqa: D102 — see class docstring
        pass


def _canonical_dumps(obj: Any) -> bytes:
    import io
    buf = io.BytesIO()
    _CanonicalPickler(buf, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    return buf.getvalue()


def save_interface(iface: ModuleInterface, path: str) -> None:
    """Write *iface* to *path* atomically (magic + version + canonical
    pickle — see :class:`_CanonicalPickler` for why the bytes must be a
    function of content alone)."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    payload = _MAGIC + bytes([INTERFACE_VERSION]) + _canonical_dumps(iface)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_interface(path: str,
                   stale_ok: bool = False) -> Optional[ModuleInterface]:
    """Read an interface file, checking magic and version.

    With ``stale_ok`` (the builder's mode — it can always recompile),
    anything unusable — wrong magic, an older or newer format version,
    a truncated or unpicklable payload — returns None so the caller
    treats the file as absent and regenerates it.  Without it, the
    same conditions raise :class:`~repro.errors.StaleInterfaceError`
    (a :class:`~repro.errors.ModuleError`)."""

    def unusable(message: str) -> Optional[ModuleInterface]:
        if stale_ok:
            return None
        raise StaleInterfaceError(message)

    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        if stale_ok:
            return None
        raise StaleInterfaceError(f"cannot read '{path}': {exc}")
    if not blob.startswith(_MAGIC) or len(blob) <= len(_MAGIC):
        return unusable(f"'{path}' is not an interface file")
    version = blob[len(_MAGIC)]
    if version != INTERFACE_VERSION:
        return unusable(
            f"interface file '{path}' has version {version}, expected "
            f"{INTERFACE_VERSION}; rebuild it")
    try:
        iface = pickle.loads(blob[len(_MAGIC) + 1:])
    except Exception as exc:  # noqa: BLE001 — any pickle failure is staleness
        return unusable(f"interface file '{path}' is unreadable "
                        f"({type(exc).__name__}: {exc}); rebuild it")
    if not isinstance(iface, ModuleInterface):
        return unusable(f"'{path}' does not contain a module interface")
    return iface
