"""Semantic types: the representation the paper's algorithm works on.

Following section 5 of the paper, type variables are *mutable* cells:

    "Each type variable has a value field which is either null
    (uninstantiated) or contains an instantiated type.  The context
    field is a list of classes attached to uninstantiated type
    variables."

We add two fields the paper introduces later:

* ``read_only`` (section 8.6) — set for variables created from a user
  signature; such a variable "cannot be instantiated or have its
  context augmented", which is how signatures are enforced;
* ``level`` — the let-nesting depth at which the variable was created.
  Generalization quantifies exactly the variables whose level is deeper
  than the binding's, and placeholder resolution case 3 ("the type
  variable may still be bound in an outer type environment") is the
  test ``level <= outer_level``.

Type *schemes* use ``TyGen`` indices for quantified variables, paired
with an ordered predicate list; the order of that list is the order of
dictionary parameters (section 6.2: "dictionaries can be passed in any
order so long as the same ordering is used consistently").
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.kinds import STAR, Kind, KFun, kfun
from repro.util.orderedset import OrderedSet

# --------------------------------------------------------------------------
# Mutation trail
#
# Type variables are mutable cells, so a failed inference leaves real
# substitutions behind.  The unifier's provenance machinery (see
# repro.core.unify) installs a *trail* — a per-thread undo log — for the
# duration of an inference episode; every destructive update below
# records its old value so the episode can be rolled back and its
# constraint set replayed during minimization.  The trail is
# thread-local because a process may run several inferencers on
# different threads (the compile server's executor).  When no trail is
# installed (the common case for any code outside an episode) the hooks
# cost one attribute check on the slow paths only.
# --------------------------------------------------------------------------

_TLS = threading.local()


def set_trail(trail: Optional[list]) -> Optional[list]:
    """Install *trail* as this thread's mutation trail; returns the
    previously installed one (so callers can nest and restore)."""
    prev = getattr(_TLS, "trail", None)
    _TLS.trail = trail
    return prev


def undo_trail(trail: list, mark: int = 0) -> None:
    """Pop trail entries down to *mark*, restoring each mutation in
    reverse order.  Entries are ``(kind, target, old)`` with kind one of
    ``"value"`` (TyVar.value), ``"level"`` (TyVar.level) or
    ``"context"`` (an OrderedSet's former items, as a tuple — restored
    *in place* because contexts may be aliased)."""
    while len(trail) > mark:
        kind, target, old = trail.pop()
        if kind == "value":
            target.value = old
        elif kind == "level":
            target.level = old
        else:  # "context"
            target.replace_with(old)


class Type:
    """Base class for semantic types."""

    def __repr__(self) -> str:
        return type_str(self)


class TyVar(Type):
    """A mutable type variable (see module docstring)."""

    __slots__ = ("id", "hint", "kind", "value", "context", "level", "read_only")
    _counter = 0

    def __init__(self, kind: Kind = STAR, level: int = 0,
                 hint: str = "t", read_only: bool = False) -> None:
        TyVar._counter += 1
        self.id = TyVar._counter
        self.hint = hint
        self.kind = kind
        self.value: Optional[Type] = None
        self.context: OrderedSet[str] = OrderedSet()
        self.level = level
        self.read_only = read_only

    @property
    def name(self) -> str:
        return f"{self.hint}{self.id}"


class TyCon(Type):
    """A type constructor: ``Int``, ``[]``, ``(->)``, ``(,)`` ..."""

    __slots__ = ("name", "kind")

    def __init__(self, name: str, kind: Kind = STAR) -> None:
        self.name = name
        self.kind = kind

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TyCon) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("TyCon", self.name))


class TyApp(Type):
    """Type application ``fn arg``."""

    __slots__ = ("fn", "arg")

    def __init__(self, fn: Type, arg: Type) -> None:
        self.fn = fn
        self.arg = arg


class TyGen(Type):
    """A quantified variable inside a :class:`Scheme` (de Bruijn index)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


# --------------------------------------------------------------------------
# Built-in constructors
# --------------------------------------------------------------------------

ARROW = TyCon("->", kfun(STAR, STAR, STAR))
LIST_CON = TyCon("[]", KFun(STAR, STAR))
UNIT_CON = TyCon("()", STAR)

T_INT = TyCon("Int", STAR)
T_FLOAT = TyCon("Float", STAR)
T_CHAR = TyCon("Char", STAR)
T_BOOL = TyCon("Bool", STAR)


def tuple_con(arity: int) -> TyCon:
    """The *arity*-tuple constructor ``(,)``, ``(,,)``, ..."""
    name = "(" + "," * (arity - 1) + ")"
    return TyCon(name, kfun(*([STAR] * (arity + 1))))


def fn_type(arg: Type, res: Type) -> Type:
    return TyApp(TyApp(ARROW, arg), res)


def fn_types(args: Sequence[Type], res: Type) -> Type:
    out = res
    for a in reversed(args):
        out = fn_type(a, out)
    return out


def list_type(elem: Type) -> Type:
    return TyApp(LIST_CON, elem)


def tuple_type(items: Sequence[Type]) -> Type:
    out: Type = tuple_con(len(items))
    for item in items:
        out = TyApp(out, item)
    return out


T_STRING = list_type(T_CHAR)


# --------------------------------------------------------------------------
# Traversal helpers
# --------------------------------------------------------------------------

def prune(ty: Type) -> Type:
    """Chase instantiated variables to the representative type.

    Performs path compression along chains of instantiated variables so
    that repeated unification stays near-linear.  Iterative on purpose:
    instantiation chains can grow with the size of the input program,
    and a crashed host is worse than a slow one.
    """
    if not (isinstance(ty, TyVar) and ty.value is not None):
        return ty
    chain: List[TyVar] = []
    while isinstance(ty, TyVar) and ty.value is not None:
        chain.append(ty)
        ty = ty.value
    if len(chain) > 1:
        # Path compression is a real mutation: a variable bound before
        # the current episode may be re-pointed at a type bound during
        # it, so the trail must remember the old link (a single-link
        # chain — the common case — changes nothing and records
        # nothing).
        trail = getattr(_TLS, "trail", None)
        for var in chain[:-1]:
            if trail is not None:
                trail.append(("value", var, var.value))
            var.value = ty
    return ty


def spine(ty: Type) -> Tuple[Type, List[Type]]:
    """Decompose nested applications: ``T a b`` -> ``(T, [a, b])``."""
    args: List[Type] = []
    ty = prune(ty)
    while isinstance(ty, TyApp):
        args.append(ty.arg)
        ty = prune(ty.fn)
    args.reverse()
    return ty, args


def fn_parts(ty: Type) -> Optional[Tuple[Type, Type]]:
    """If *ty* is ``a -> b``, return ``(a, b)``."""
    head, args = spine(ty)
    if isinstance(head, TyCon) and head.name == "->" and len(args) == 2:
        return args[0], args[1]
    return None


def type_variables(ty: Type) -> List[TyVar]:
    """The uninstantiated variables of *ty* in first-occurrence order.

    Explicit-stack traversal: type terms can be as deep as the program
    that produced them, so no structural walk may use Python recursion.
    """
    out: List[TyVar] = []
    seen = set()
    stack: List[Type] = [ty]
    while stack:
        t = prune(stack.pop())
        if isinstance(t, TyVar):
            if t.id not in seen:
                seen.add(t.id)
                out.append(t)
        elif isinstance(t, TyApp):
            # Push arg first so fn is visited first (first-occurrence
            # order matches the old left-to-right recursive walk).
            stack.append(t.arg)
            stack.append(t.fn)
    return out


def occurs_in(var: TyVar, ty: Type) -> bool:
    stack: List[Type] = [ty]
    while stack:
        t = prune(stack.pop())
        if t is var:
            return True
        if isinstance(t, TyApp):
            stack.append(t.fn)
            stack.append(t.arg)
    return False


def adjust_levels(var_level: int, ty: Type) -> None:
    """Lower the level of every variable in *ty* to at most *var_level*.

    Called when a variable at *var_level* is instantiated to *ty*: any
    deeper variable inside *ty* now escapes to the shallower level, so
    that generalization never quantifies a variable that is reachable
    from an outer binding.
    """
    stack: List[Type] = [ty]
    while stack:
        t = prune(stack.pop())
        if isinstance(t, TyVar):
            if t.level > var_level:
                trail = getattr(_TLS, "trail", None)
                if trail is not None:
                    trail.append(("level", t, t.level))
                t.level = var_level
        elif isinstance(t, TyApp):
            stack.append(t.fn)
            stack.append(t.arg)


def kind_of(ty: Type) -> Kind:
    """The kind of a (well-kinded) semantic type."""
    ty = prune(ty)
    if isinstance(ty, TyVar):
        return ty.kind
    if isinstance(ty, TyCon):
        return ty.kind
    if isinstance(ty, TyGen):
        # A bare TyGen carries no kind; its kind lives in the owning
        # scheme's ``kinds`` list.  Callers that care instantiate first.
        return STAR
    assert isinstance(ty, TyApp)
    fn_kind = kind_of(ty.fn)
    if isinstance(fn_kind, KFun):
        return fn_kind.res
    return STAR


# --------------------------------------------------------------------------
# Predicates and schemes
# --------------------------------------------------------------------------

class Pred:
    """A class constraint ``C t`` (in schemes, ``t`` is a ``TyGen``).

    A multi-parameter constraint ``C t1 ... tn`` carries all its types
    in ``types`` (and ``type`` aliases ``types[0]`` so single-parameter
    consumers keep working); ``types`` is ``None`` for the ordinary
    single-parameter case.  Read it via ``getattr(pred, "types", None)``
    — slot classes round-trip through pickle without ``__init__``, so
    predicates from older interface files may lack the slot.
    """

    __slots__ = ("class_name", "type", "types")

    def __init__(self, class_name: str, ty: Optional[Type] = None,
                 types: Optional[List[Type]] = None) -> None:
        self.class_name = class_name
        if types is not None and len(types) > 1:
            self.types: Optional[List[Type]] = list(types)
            self.type = self.types[0]
        else:
            self.type = types[0] if types else ty
            assert self.type is not None
            self.types = None

    def __repr__(self) -> str:
        if self.types is not None:
            args = " ".join(type_str(t, 2) for t in self.types)
            return f"{self.class_name} {args}"
        return f"{self.class_name} {type_str(self.type, 2)}"


class Scheme:
    """A type scheme ``forall a1..an. (preds) => type``.

    * ``kinds[i]`` is the kind of the i-th quantified variable;
    * ``preds`` is the *ordered* list of constraints — its order is the
      dictionary parameter order of the translated definition;
    * ``type`` contains ``TyGen`` nodes for the quantified variables.
    """

    __slots__ = ("kinds", "preds", "type")

    def __init__(self, kinds: List[Kind], preds: List[Pred], ty: Type) -> None:
        self.kinds = kinds
        self.preds = preds
        self.type = ty

    @property
    def is_overloaded(self) -> bool:
        return bool(self.preds)

    def instantiate(self, level: int,
                    fresh: Optional[Callable[[Kind, int], TyVar]] = None
                    ) -> Tuple[Type, List[Tuple[str, TyVar]], List[TyVar]]:
        """Create a fresh instance.

        Returns ``(type, pred_instances, fresh_vars)`` where
        ``pred_instances`` pairs each scheme predicate, in order, with
        the fresh variable it now constrains — exactly the list of
        placeholders an overloaded variable reference must receive
        (section 6.1).  Contexts are attached to the fresh variables.
        """
        if fresh is None:
            fresh = lambda kind, lvl: TyVar(kind, lvl)  # noqa: E731
        new_vars = [fresh(k, level) for k in self.kinds]
        preds_out: List[Tuple[str, TyVar]] = []
        for pred in self.preds:
            mp = getattr(pred, "types", None)
            if mp is not None:
                # Multi-parameter constraint: the types ride on the
                # placeholder (never on a variable's context — the §5
                # context machinery is single-parameter by design) and
                # resolve structurally against the instance patterns.
                targets = tuple(prune(_subst_gens(t, new_vars)) for t in mp)
                preds_out.append((pred.class_name, targets))
                continue
            target = prune(_subst_gens(pred.type, new_vars))
            assert isinstance(target, TyVar), \
                "scheme predicates must constrain quantified variables"
            target.context.add(pred.class_name)
            preds_out.append((pred.class_name, target))
        return _subst_gens(self.type, new_vars), preds_out, new_vars

    def __repr__(self) -> str:
        return scheme_str(self)


def _subst_gens(ty: Type, new_vars: List[TyVar]) -> Type:
    ty = prune(ty)
    if isinstance(ty, TyGen):
        return new_vars[ty.index]
    if isinstance(ty, TyApp):
        return TyApp(_subst_gens(ty.fn, new_vars), _subst_gens(ty.arg, new_vars))
    return ty


def monotype_scheme(ty: Type) -> Scheme:
    """A scheme with no quantified variables."""
    return Scheme([], [], ty)


def generalize_over(gen_vars: List[TyVar], preds: List[Tuple[str, TyVar]],
                    ty: Type) -> Scheme:
    """Build a scheme quantifying *gen_vars* (which must be unbound).

    *preds* pairs class names with the variables they constrain; any
    pred on a variable outside *gen_vars* is an internal error.
    """
    index: Dict[int, int] = {v.id: i for i, v in enumerate(gen_vars)}

    def go(t: Type) -> Type:
        t = prune(t)
        if isinstance(t, TyVar):
            if t.id in index:
                return TyGen(index[t.id])
            return t
        if isinstance(t, TyApp):
            return TyApp(go(t.fn), go(t.arg))
        return t

    scheme_preds = []
    for cls, var in preds:
        assert var.id in index, f"predicate on unquantified variable {var}"
        scheme_preds.append(Pred(cls, TyGen(index[var.id])))
    return Scheme([v.kind for v in gen_vars], scheme_preds, go(ty))


# --------------------------------------------------------------------------
# Pretty printing
# --------------------------------------------------------------------------

_VAR_NAMES = "abcdefghijklmnopqrstuvwxyz"


def type_str(ty: Type, prec: int = 0,
             names: Optional[Dict[int, str]] = None) -> str:
    """Render a type.  Variables get stable single-letter names within
    one call; contexts are shown by :func:`qual_type_str`."""
    if names is None:
        names = {}
        for i, var in enumerate(type_variables(ty)):
            names[var.id] = _var_name(i)
    return _type_str(ty, prec, names)


def _var_name(i: int) -> str:
    if i < len(_VAR_NAMES):
        return _VAR_NAMES[i]
    return f"t{i}"


def _type_str(ty: Type, prec: int, names: Dict[int, str]) -> str:
    ty = prune(ty)
    if isinstance(ty, TyVar):
        return names.setdefault(ty.id, f"t{ty.id}")
    if isinstance(ty, TyGen):
        return f"g{ty.index}"
    if isinstance(ty, TyCon):
        return ty.name
    head, args = spine(ty)
    if isinstance(head, TyCon):
        if head.name == "->" and len(args) == 2:
            inner = (f"{_type_str(args[0], 1, names)} -> "
                     f"{_type_str(args[1], 0, names)}")
            return f"({inner})" if prec > 0 else inner
        if head.name == "[]" and len(args) == 1:
            return f"[{_type_str(args[0], 0, names)}]"
        if head.name.startswith("(,") and len(args) == head.name.count(",") + 1:
            return "(" + ", ".join(_type_str(a, 0, names) for a in args) + ")"
    parts = [_type_str(head, 2, names)] + [_type_str(a, 2, names) for a in args]
    inner = " ".join(parts)
    return f"({inner})" if prec > 1 else inner


def qual_type_str(ty: Type) -> str:
    """Render a type together with the contexts on its variables, e.g.
    ``(Eq a, Num b) => a -> b -> Bool``."""
    names: Dict[int, str] = {}
    tvs = type_variables(ty)
    for i, var in enumerate(tvs):
        names[var.id] = _var_name(i)
    preds = []
    for var in tvs:
        for cls in var.context:
            preds.append(f"{cls} {names[var.id]}")
    body = _type_str(ty, 0, names)
    if not preds:
        return body
    if len(preds) == 1:
        return f"{preds[0]} => {body}"
    return "(" + ", ".join(preds) + f") => {body}"


def scheme_str(scheme: Scheme) -> str:
    names: Dict[int, str] = {}
    gen_names = [_var_name(i) for i in range(len(scheme.kinds))]

    def go(t: Type, prec: int) -> str:
        t = prune(t)
        if isinstance(t, TyGen):
            return gen_names[t.index]
        return _type_str(t, prec, names)

    preds = []
    for pred in scheme.preds:
        mp = getattr(pred, "types", None)
        if mp is not None:
            args = " ".join(go(t, 2) for t in mp)
            preds.append(f"{pred.class_name} {args}")
        else:
            preds.append(f"{pred.class_name} {go(pred.type, 2)}")
    body = _scheme_body_str(scheme.type, 0, names, gen_names)
    if not preds:
        return body
    if len(preds) == 1:
        return f"{preds[0]} => {body}"
    return "(" + ", ".join(preds) + f") => {body}"


def scheme_arg_types(scheme: Scheme) -> List[str]:
    """The rendered argument types of a scheme's top-level arrow spine.

    ``Eq a => a -> [a] -> Bool`` yields ``["a", "[a]"]``.  Variables are
    named exactly as :func:`scheme_str` names them, so the strings are
    stable across processes — the translator uses them to annotate core
    binders (lambda parameters, case-alternative fields)."""
    names: Dict[int, str] = {}
    gen_names = [_var_name(i) for i in range(len(scheme.kinds))]
    out: List[str] = []
    ty = prune(scheme.type)
    while True:
        head, args = spine(ty)
        if not (isinstance(head, TyCon) and head.name == "->"
                and len(args) == 2):
            break
        out.append(_scheme_body_str(args[0], 1, names, gen_names))
        ty = prune(args[1])
    return out


def _scheme_body_str(ty: Type, prec: int, names: Dict[int, str],
                     gen_names: List[str]) -> str:
    ty = prune(ty)
    if isinstance(ty, TyGen):
        return gen_names[ty.index]
    if isinstance(ty, TyVar):
        return names.setdefault(ty.id, f"t{ty.id}")
    if isinstance(ty, TyCon):
        return ty.name
    head, args = spine(ty)
    if isinstance(head, TyCon):
        if head.name == "->" and len(args) == 2:
            inner = (f"{_scheme_body_str(args[0], 1, names, gen_names)} -> "
                     f"{_scheme_body_str(args[1], 0, names, gen_names)}")
            return f"({inner})" if prec > 0 else inner
        if head.name == "[]" and len(args) == 1:
            return f"[{_scheme_body_str(args[0], 0, names, gen_names)}]"
        if head.name.startswith("(,") and len(args) == head.name.count(",") + 1:
            return "(" + ", ".join(
                _scheme_body_str(a, 0, names, gen_names) for a in args) + ")"
    parts = [_scheme_body_str(head, 2, names, gen_names)]
    parts += [_scheme_body_str(a, 2, names, gen_names) for a in args]
    inner = " ".join(parts)
    return f"({inner})" if prec > 1 else inner
