"""Selector generation (section 4).

    "Selector functions which retrieve a method from a dictionary are
    also defined as the static type environment is processed ...  These
    simply extract a component of a dictionary tuple, a constant time
    operation since each member function is located at a specific place
    in the dictionary."

Selectors are emitted directly in core IR (they are pure tuple
projections, no type checking needed):

* nested layout: one selector per own method (``sel$C$m``) and one per
  direct superclass slot (``sup$C$S``);
* flattened layout (section 8.1): one selector per method *including
  inherited ones* (selection is always one step), plus converter
  functions ``sup$C$S`` that materialise a superclass dictionary by
  re-tupling — the construction cost the paper says flattening trades
  for faster selection;
* single-slot classes with the bare-dictionary optimisation need no
  selectors at all (resolution inlines the identity).
"""

from __future__ import annotations

from typing import List

from repro.core.classes import FLAT, ClassEnv
from repro.coreir.syntax import CDict, CLam, CSel, CVar, CoreBinding, CoreExpr
from repro.util.names import selector_name, superclass_selector_name


def generate_selectors(class_env: ClassEnv) -> List[CoreBinding]:
    out: List[CoreBinding] = []
    for class_name in class_env.classes:
        if class_env.uses_bare_dict(class_name):
            continue
        slots = class_env.dict_slots(class_name)
        size = len(slots)
        for i, (kind, _owner, name) in enumerate(slots):
            if kind == "method":
                bind_name = selector_name(class_name, name)
            else:
                bind_name = superclass_selector_name(class_name, name)
            out.append(CoreBinding(
                bind_name,
                CLam(["d"], CSel(i, size, CVar("d"), from_dict=True)),
                "selector"))
        if class_env.layout == FLAT:
            for sup in class_env.supers_transitive(class_name):
                out.append(_flat_converter(class_env, class_name, sup))
    # Converters *from* bare flat dictionaries (rare but possible when a
    # single-method class has superclasses in the flattened layout).
    if class_env.layout == FLAT:
        for class_name in class_env.classes:
            if not class_env.uses_bare_dict(class_name):
                continue
            for sup in class_env.supers_transitive(class_name):
                out.append(_flat_converter(class_env, class_name, sup))
    return out


def _flat_converter(class_env: ClassEnv, have: str, need: str) -> CoreBinding:
    """``sup$have$need`` for the flattened layout: build a *need*
    dictionary from a *have* dictionary (have's flat tuple is a
    superset of need's)."""
    have_bare = class_env.uses_bare_dict(have)
    have_size = class_env.dict_size(have)

    def pick(method: str) -> CoreExpr:
        if have_bare:
            return CVar("d")
        return CSel(class_env.flat_method_slot(have, method), have_size,
                    CVar("d"), from_dict=True)

    need_slots = class_env.dict_slots(need)
    if class_env.uses_bare_dict(need):
        (_kind, _owner, method) = need_slots[0]
        body: CoreExpr = pick(method)
    else:
        body = CDict([pick(name) for (_k, _o, name) in need_slots],
                     tag=f"{need}<={have}")
    return CoreBinding(superclass_selector_name(have, need),
                       CLam(["d"], body), "selector")
