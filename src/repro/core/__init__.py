"""The paper's contribution: type inference with class contexts and
single-pass dictionary conversion via placeholders.

Modules:

* :mod:`repro.core.types` — semantic types; mutable type variables with
  ``value`` and ``context`` fields (section 5), type schemes.
* :mod:`repro.core.kinds` — kind inference for declarations.
* :mod:`repro.core.classes` — the class environment: classes,
  superclasses, instances as ``(tycon, class, dictionary, context)``
  tuples, dictionary layouts and selectors (section 4, 8.1, 8.2).
* :mod:`repro.core.static` — static analysis of data declarations and
  derived instances (section 4).
* :mod:`repro.core.unify` — unification with context propagation and
  context reduction (section 5).
* :mod:`repro.core.placeholders` — the ``<object, type>`` records of
  section 6.1.
* :mod:`repro.core.infer` — the combined type checker and dictionary
  converter (sections 5-6, 8.3, 8.6, 8.7).
"""
