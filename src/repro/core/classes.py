"""The class environment: static analysis results for classes and
instances (section 4 of the paper).

Every instance declaration is represented, as the paper prescribes, by
a 4-tuple::

    (data type, class, dictionary, context)

Here :class:`InstanceInfo` carries exactly those fields — the
``context`` being "a list of class constraints, one class constraint
for each argument to the data type defined by the instance".

The environment also owns the *dictionary layout* (section 8.1):

* **nested** layout (default): a dictionary for class C is a tuple
  ``(super-dict_1, ..., super-dict_k, method_1, ..., method_m)``; a
  method of a superclass is reached by chasing embedded dictionaries;
* **flattened** layout: the tuple holds every method of C *and* of all
  its transitive superclasses at top level — "this slows down
  dictionary construction but speeds up selection operations";
* the **single-slot** optimisation: a class whose dictionary would have
  exactly one slot dispenses with the tuple entirely (the paper's
  ``d-Eq-List = eqList``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DuplicateInstanceError,
    MultiParamError,
    NoInstanceError,
    SourcePos,
    StaticError,
)
from repro.core.kinds import STAR, Kind
from repro.core.types import Scheme
from repro.util.orderedset import OrderedSet


@dataclass
class MethodInfo:
    """One method of a class.

    ``scheme`` is the method's full type scheme; by construction its
    quantified variable 0 is the class variable and ``preds[0]`` is the
    class constraint on it.  Any further predicates are *extra*
    overloading of the method beyond the class variable (section 8.5).
    """

    name: str
    scheme: Scheme
    index: int  # position among the class's own methods, declaration order
    has_default: bool = False

    @property
    def extra_preds_count(self) -> int:
        return len(self.scheme.preds) - 1


@dataclass
class ClassInfo:
    name: str
    superclasses: List[str]
    #: the inferred kind of the class variable — ``*`` for ``Eq``,
    #: ``* -> *`` for ``Functor`` (docs/CLASSES.md); multi-parameter
    #: classes keep every parameter at ``*``
    tyvar_kind: Kind = STAR
    methods: List[MethodInfo] = field(default_factory=list)
    pos: Optional[SourcePos] = None
    #: number of class parameters; > 1 only for multi-parameter classes,
    #: which require the CHR solver (docs/SOLVER.md)
    arity: int = 1

    def method(self, name: str) -> Optional[MethodInfo]:
        for m in self.methods:
            if m.name == name:
                return m
        return None

    @property
    def param_kinds(self) -> List[Kind]:
        """Kind of each class parameter.  Only single-parameter classes
        may have a non-``*`` (inferred) kind."""
        if self.arity == 1:
            return [self.tyvar_kind]
        return [STAR] * self.arity


class MethodSet(frozenset):
    """A frozenset of method names that pickles its elements sorted.

    Plain sets pickle in hash-iteration order, which varies with the
    per-process hash seed — that order would leak into ``.ri`` interface
    files and make otherwise-identical builds byte-unstable across
    processes.  Equality and membership are inherited unchanged."""

    def __reduce__(self):
        return (self.__class__, (sorted(self),))


@dataclass
class InstanceInfo:
    """The paper's ``(data type, class, dictionary, context)`` 4-tuple."""

    tycon_name: str
    class_name: str
    dict_name: str
    context: List[List[str]]  # one class list per type-constructor argument
    pos: Optional[SourcePos] = None
    #: methods the instance declaration itself binds (others fall back
    #: to the class default, section 8.2)
    defined_methods: frozenset = MethodSet()
    #: kind of each head variable — the leading argument kinds of the
    #: instance's type constructor.  For a higher-kinded instance at a
    #: *partial* application (``instance Functor (Either a)``) this
    #: covers only the applied arguments; kind-``*`` instances list
    #: ``*`` per argument.  Empty for pre-v4 interfaces (then every
    #: head variable has kind ``*``).
    head_arg_kinds: List[Kind] = field(default_factory=list)

    @property
    def n_dict_params(self) -> int:
        return sum(len(cs) for cs in self.context)

    def dict_param_preds(self) -> List[Tuple[int, str]]:
        """Ordered ``(arg_index, class)`` pairs, one per dictionary
        parameter of the instance's dictionary constructor."""
        out: List[Tuple[int, str]] = []
        for i, classes in enumerate(self.context):
            for cls in classes:
                out.append((i, cls))
        return out


@dataclass
class MPInstanceInfo:
    """One instance of a multi-parameter class.

    ``patterns`` holds one depth-1 pattern per class parameter:
    ``(tycon_name, var_indices)`` where ``tycon_name`` is ``None`` for a
    bare-variable position (then ``var_indices`` is the single variable)
    and otherwise names a constructor applied to the listed instance
    variables.  Variables are numbered 0..n_vars-1 in order of first
    occurrence across the head; ``var_kinds`` records their kinds.

    ``context`` lists the instance's dictionary parameters in
    declaration order: ``("sp", cls, var_idx)`` for a single-parameter
    constraint on one head variable, ``("mp", cls, (i1, ..., ik))`` for
    a multi-parameter constraint over several.
    """

    class_name: str
    patterns: List[Tuple[Optional[str], Tuple[int, ...]]]
    n_vars: int
    var_kinds: List[Kind]
    context: List[Tuple]
    dict_name: str
    pos: Optional[SourcePos] = None
    defined_methods: frozenset = MethodSet()

    @property
    def n_dict_params(self) -> int:
        return len(self.context)


#: Dictionary layout selector for :class:`ClassEnv`.
NESTED = "nested"
FLAT = "flat"


class ClassEnv:
    """All classes and instances of a program, plus layout decisions."""

    def __init__(self, layout: str = NESTED, single_slot_opt: bool = True,
                 solver: str = "reduce") -> None:
        if layout not in (NESTED, FLAT):
            raise ValueError(f"unknown dictionary layout {layout!r}")
        self.layout = layout
        self.single_slot_opt = single_slot_opt
        #: which constraint solver the compilation uses; multi-parameter
        #: classes are only accepted under "chr" (docs/SOLVER.md)
        self.solver = solver
        self.classes: Dict[str, ClassInfo] = {}
        self.instances: Dict[Tuple[str, str], InstanceInfo] = {}
        #: instances of multi-parameter classes, by class name — kept
        #: apart from the paper's per-tycon table because their heads
        #: are pattern tuples, not a single constructor
        self.mp_instances: Dict[str, List[MPInstanceInfo]] = {}
        self.method_owner: Dict[str, str] = {}
        #: default types for ambiguity resolution (section 6.3 case 4)
        self.default_types: List[str] = ["Int", "Float"]
        #: memoized transitive-superclass sets; safe without
        #: invalidation because superclasses must be declared before
        #: use, so a class's ancestor set is fixed at declaration time
        self._supers_cache: Dict[str, Tuple[List[str], frozenset]] = {}

    # ------------------------------------------------------------- classes

    def add_class(self, info: ClassInfo) -> None:
        if info.name in self.classes:
            raise StaticError(f"class {info.name} declared twice", info.pos)
        if info.arity > 1 and self.solver != "chr":
            raise MultiParamError(
                f"class {info.name} has {info.arity} parameters, but the "
                f"'{self.solver}' solver only resolves single-parameter "
                f"classes; compile with --set solver=chr (or "
                f"REPRO_SOLVER=chr)", info.pos)
        for sup in info.superclasses:
            if sup not in self.classes:
                raise StaticError(
                    f"superclass {sup} of {info.name} is not declared "
                    f"(classes must be declared before use)", info.pos)
        self.classes[info.name] = info
        for method in info.methods:
            if method.name in self.method_owner:
                raise StaticError(
                    f"method {method.name} declared in two classes "
                    f"({self.method_owner[method.name]} and {info.name})",
                    info.pos)
            self.method_owner[method.name] = info.name

    def class_info(self, name: str) -> ClassInfo:
        info = self.classes.get(name)
        if info is None:
            raise StaticError(f"unknown class {name}")
        return info

    def is_class(self, name: str) -> bool:
        return name in self.classes

    def owner_of_method(self, method: str) -> Optional[str]:
        return self.method_owner.get(method)

    def _ancestors(self, name: str) -> Tuple[List[str], frozenset]:
        """Memoized ``(bfs_order, member_set)`` of *name*'s transitive
        superclasses.  Computed once per class: superclasses must be
        declared before their subclasses, so the set can never change
        after *name* itself is declared."""
        cached = self._supers_cache.get(name)
        if cached is not None:
            return cached
        out: List[str] = []
        seen = {name}
        frontier = list(self.class_info(name).superclasses)
        while frontier:
            sup = frontier.pop(0)
            if sup in seen:
                continue
            seen.add(sup)
            out.append(sup)
            frontier.extend(self.class_info(sup).superclasses)
        cached = (out, frozenset(out))
        self._supers_cache[name] = cached
        return cached

    def supers_transitive(self, name: str) -> List[str]:
        """Every (transitive) superclass of *name*, excluding *name*,
        in deterministic BFS order."""
        return list(self._ancestors(name)[0])

    def implies(self, cls: str, target: str) -> bool:
        """True when a ``cls`` constraint makes a ``target`` constraint
        redundant (equal, or ``target`` is a superclass of ``cls``)."""
        return cls == target or target in self._ancestors(cls)[1]

    def superclass_path(self, have: str, need: str) -> Optional[List[Tuple[str, str]]]:
        """A chain of direct-superclass hops from *have* to *need*.

        Each element ``(c, s)`` means: from a dictionary for ``c``,
        extract the embedded dictionary for its direct superclass ``s``.
        Returns ``None`` if *need* is not reachable.
        """
        if have == need:
            return []
        # BFS over direct superclass edges.
        frontier: List[Tuple[str, List[Tuple[str, str]]]] = [(have, [])]
        seen = {have}
        while frontier:
            current, path = frontier.pop(0)
            for sup in self.class_info(current).superclasses:
                if sup in seen:
                    continue
                new_path = path + [(current, sup)]
                if sup == need:
                    return new_path
                seen.add(sup)
                frontier.append((sup, new_path))
        return None

    # ------------------------------------------------------------ contexts

    def add_constraint(self, context: OrderedSet, cls: str) -> bool:
        """Add *cls* to a type variable's context with superclass
        compaction (section 8.1: "contexts implied by the superclass
        relation can be removed").

        Returns True if the context changed.
        """
        for existing in context:
            if self.implies(existing, cls):
                return False
        removed = [c for c in list(context) if self.implies(cls, c)]
        for c in removed:
            context.discard(c)
        context.add(cls)
        return True

    def context_implied_by(self, context: OrderedSet, cls: str) -> Optional[str]:
        """The member of *context* that implies *cls*, if any."""
        for existing in context:
            if self.implies(existing, cls):
                return existing
        return None

    # ----------------------------------------------------------- instances

    def add_instance(self, info: InstanceInfo) -> None:
        key = (info.tycon_name, info.class_name)
        if key in self.instances:
            raise DuplicateInstanceError(
                f"duplicate instance {info.class_name} for type "
                f"{info.tycon_name}: only one instance declaration per "
                f"(class, data type) pair is allowed", info.pos)
        if info.class_name not in self.classes:
            raise StaticError(
                f"instance declaration for unknown class {info.class_name}",
                info.pos)
        self.instances[key] = info

    def get_instance(self, tycon_name: str, class_name: str) -> Optional[InstanceInfo]:
        return self.instances.get((tycon_name, class_name))

    def find_instance_context(self, tycon_name: str, class_name: str,
                              type_str: str = "",
                              pos: Optional[SourcePos] = None) -> List[List[str]]:
        """The paper's ``findInstanceContext``: the per-argument context
        of the instance linking *tycon_name* and *class_name*; raises
        :class:`NoInstanceError` when no such instance exists."""
        info = self.get_instance(tycon_name, class_name)
        if info is None:
            raise NoInstanceError(class_name, type_str or tycon_name, pos)
        return info.context

    def instances_of_class(self, class_name: str) -> List[InstanceInfo]:
        return [info for (_, cls), info in self.instances.items()
                if cls == class_name]

    def add_mp_instance(self, info: MPInstanceInfo) -> None:
        """Register a multi-parameter instance.  Overlap/termination
        checks run before registration (repro.solver.rules); this only
        stores the validated rule."""
        self.mp_instances.setdefault(info.class_name, []).append(info)

    def mp_instances_of(self, class_name: str) -> List[MPInstanceInfo]:
        return self.mp_instances.get(class_name, [])

    # -------------------------------------------------------------- layout

    def dict_slots(self, class_name: str) -> List[Tuple[str, str, str]]:
        """The slot descriptors of a dictionary for *class_name*.

        Each descriptor is ``(kind, owner_class, name)`` where kind is
        ``"super"`` (an embedded superclass dictionary; nested layout
        only) or ``"method"``.  For the flattened layout, inherited
        methods appear directly with their *owner* class recorded so the
        construction code knows where each implementation comes from.
        """
        info = self.class_info(class_name)
        slots: List[Tuple[str, str, str]] = []
        if self.layout == NESTED:
            for sup in info.superclasses:
                slots.append(("super", class_name, sup))
            for method in info.methods:
                slots.append(("method", class_name, method.name))
        else:
            # Flattened: every transitive superclass's methods, deepest
            # classes first so a class's own methods come last (a
            # deterministic, documented order).
            for sup in reversed(self.supers_transitive(class_name)):
                for method in self.class_info(sup).methods:
                    slots.append(("method", sup, method.name))
            for method in info.methods:
                slots.append(("method", class_name, method.name))
        return slots

    def dict_size(self, class_name: str) -> int:
        return len(self.dict_slots(class_name))

    def uses_bare_dict(self, class_name: str) -> bool:
        """True when the class's dictionary is a bare value rather than
        a tuple (single-slot optimisation)."""
        return self.single_slot_opt and self.dict_size(class_name) == 1

    def method_slot(self, class_name: str, method: str) -> Optional[int]:
        """The tuple index of *method* in a *class_name* dictionary, or
        ``None`` if the method lives in an embedded superclass dict
        (nested layout)."""
        for i, (kind, _owner, name) in enumerate(self.dict_slots(class_name)):
            if kind == "method" and name == method:
                return i
        return None

    def super_slot(self, class_name: str, super_name: str) -> Optional[int]:
        """The tuple index of the embedded *super_name* dictionary
        (nested layout only)."""
        for i, (kind, _owner, name) in enumerate(self.dict_slots(class_name)):
            if kind == "super" and name == super_name:
                return i
        return None

    def method_access_path(self, class_name: str,
                           method: str) -> Tuple[List[Tuple[str, str]], str]:
        """How to reach *method* starting from a *class_name* dictionary.

        Returns ``(super_hops, owner)``: follow each ``(c, s)`` hop by
        extracting the superclass dictionary, then select the method
        from the final *owner* class's dictionary.  In the flattened
        layout there are never any hops.
        """
        owner = self.method_owner.get(method)
        if owner is None:
            raise StaticError(f"unknown method {method}")
        if self.layout == FLAT:
            return [], class_name
        if self.class_info(class_name).method(method) is not None:
            return [], class_name
        path = self.superclass_path(class_name, owner)
        if path is None:
            raise StaticError(
                f"method {method} of class {owner} is not reachable from "
                f"class {class_name}")
        return path, owner

    def flat_method_slot(self, class_name: str, method: str) -> int:
        """Slot of *method* in the flattened *class_name* dictionary,
        regardless of which class declared the method."""
        assert self.layout == FLAT
        for i, (kind, _owner, name) in enumerate(self.dict_slots(class_name)):
            if kind == "method" and name == method:
                return i
        raise StaticError(
            f"method {method} not present in flattened dictionary for "
            f"{class_name}")
