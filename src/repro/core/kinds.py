"""Kinds, and kind inference for declarations.

Type classes force the compiler to know the kind of every type
constructor: the class variable of ``class Eq a`` has kind ``*``, and
the class variable of ``class Functor f`` has kind ``* -> *``.  The
paper (like Haskell 1.2) restricted classes to kind ``*``; this
implementation lifts that restriction — a class variable's kind is
*inferred* from the class's method signatures, and data declarations
use the same machinery so types like
``data Pair f a = MkPair (f a) (f a)`` check correctly
(docs/CLASSES.md).

Kind inference is first-order unification over the kind language

    kind ::= * | kind -> kind

with kind variables defaulted to ``*`` when unconstrained (the Haskell
report's rule).

Kind variables exist only *during* one inference episode — every kind
that escapes (into a ``TyCon``, ``ClassInfo`` or scheme) has been
zonked through :func:`default_kind`.  :func:`kvar_scope` scopes the
variable counter to the episode so diagnostic ids are small and
deterministic across snapshot forks and worker shards.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.errors import KindError, SourcePos


class Kind:
    """Base class for kinds."""

    def __repr__(self) -> str:
        return kind_str(self)


class KStar(Kind):
    """The kind of value types."""

    _instance: Optional["KStar"] = None

    def __new__(cls) -> "KStar":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance


class KFun(Kind):
    """The kind of type constructors: ``arg -> res``."""

    __slots__ = ("arg", "res")

    def __init__(self, arg: Kind, res: Kind) -> None:
        self.arg = arg
        self.res = res


class KVar(Kind):
    """A kind variable, used only during kind inference."""

    __slots__ = ("id", "value")
    _counter = 0

    def __init__(self) -> None:
        KVar._counter += 1
        self.id = KVar._counter
        self.value: Optional[Kind] = None


STAR = KStar()


@contextmanager
def kvar_scope() -> Iterator[None]:
    """Scope :class:`KVar` ids to one kind-inference episode.

    The counter is process-global mutable state; left unscoped, the ids
    appearing in ``KindError`` messages would depend on how many
    declarations every *earlier* compile in the process had inferred —
    nondeterministic across snapshot forks and worker shards.  Each
    episode (one declaration group) starts from the id it entered with
    and restores it on exit, mirroring the level scoping of type
    variables."""
    saved = KVar._counter
    KVar._counter = 0
    try:
        yield
    finally:
        KVar._counter = saved


def kfun(*kinds: Kind) -> Kind:
    """Right-associated kind arrow: ``kfun(a, b, c)`` = ``a -> b -> c``."""
    out = kinds[-1]
    for k in reversed(kinds[:-1]):
        out = KFun(k, out)
    return out


def prune_kind(kind: Kind) -> Kind:
    """Chase instantiated kind variables."""
    while isinstance(kind, KVar) and kind.value is not None:
        kind = kind.value
    return kind


def unify_kinds(a: Kind, b: Kind, pos: Optional[SourcePos] = None) -> None:
    a = prune_kind(a)
    b = prune_kind(b)
    if a is b:
        return
    if isinstance(a, KVar):
        if _kind_occurs(a, b):
            raise KindError("infinite kind", pos)
        a.value = b
        return
    if isinstance(b, KVar):
        unify_kinds(b, a, pos)
        return
    if isinstance(a, KStar) and isinstance(b, KStar):
        return
    if isinstance(a, KFun) and isinstance(b, KFun):
        unify_kinds(a.arg, b.arg, pos)
        unify_kinds(a.res, b.res, pos)
        return
    # Render through default_kind: unconstrained variables print as the
    # ``*`` they would default to, never as internal ``k17`` names.
    raise KindError(
        f"kind mismatch: {kind_str(default_kind(a))} vs "
        f"{kind_str(default_kind(b))}", pos)


def _kind_occurs(var: KVar, kind: Kind) -> bool:
    kind = prune_kind(kind)
    if kind is var:
        return True
    if isinstance(kind, KFun):
        return _kind_occurs(var, kind.arg) or _kind_occurs(var, kind.res)
    return False


def default_kind(kind: Kind) -> Kind:
    """Zonk a kind, defaulting unconstrained variables to ``*``."""
    kind = prune_kind(kind)
    if isinstance(kind, KVar):
        return STAR
    if isinstance(kind, KFun):
        return KFun(default_kind(kind.arg), default_kind(kind.res))
    return kind


def kind_arity(kind: Kind) -> int:
    """The number of arguments a constructor of this kind accepts."""
    n = 0
    kind = prune_kind(kind)
    while isinstance(kind, KFun):
        n += 1
        kind = prune_kind(kind.res)
    return n


def drop_kind_args(kind: Kind, n: int) -> Optional[Kind]:
    """The kind left after applying a constructor of kind *kind* to
    *n* arguments, or ``None`` if it accepts fewer than *n*."""
    kind = prune_kind(kind)
    for _ in range(n):
        if not isinstance(kind, KFun):
            return None
        kind = prune_kind(kind.res)
    return kind


def kind_eq(a: Kind, b: Kind) -> bool:
    """Structural equality of two (zonked) kinds."""
    a = prune_kind(a)
    b = prune_kind(b)
    if isinstance(a, KStar) and isinstance(b, KStar):
        return True
    if isinstance(a, KFun) and isinstance(b, KFun):
        return kind_eq(a.arg, b.arg) and kind_eq(a.res, b.res)
    return a is b


def kind_str(kind: Kind) -> str:
    kind = prune_kind(kind)
    if isinstance(kind, KStar):
        return "*"
    if isinstance(kind, KVar):
        return f"k{kind.id}"
    assert isinstance(kind, KFun)
    arg = kind_str(kind.arg)
    if isinstance(prune_kind(kind.arg), KFun):
        arg = f"({arg})"
    return f"{arg} -> {kind_str(kind.res)}"


class KindEnv:
    """Kinds of known type constructors and, during inference of one
    declaration, its type variables."""

    def __init__(self, parent: Optional["KindEnv"] = None) -> None:
        self.parent = parent
        self.kinds: Dict[str, Kind] = {}

    def lookup(self, name: str) -> Optional[Kind]:
        env: Optional[KindEnv] = self
        while env is not None:
            if name in env.kinds:
                return env.kinds[name]
            env = env.parent
        return None

    def bind(self, name: str, kind: Kind) -> None:
        self.kinds[name] = kind

    def child(self) -> "KindEnv":
        return KindEnv(self)
