"""Placeholders — section 6.1 of the paper.

    "A placeholder captures a type and an object to be resolved based
    on that type."

Three kinds exist, exactly as in the paper:

* :class:`ClassPlaceholder` — stands for a *dictionary* for a class at
  a type.  Created when an overloaded variable is referenced (one per
  element of its context) and when dictionary construction needs
  subdictionaries.
* :class:`MethodPlaceholder` — stands for a *method implementation* at
  a type.  Created when a method such as ``==`` is referenced; resolves
  either to a selector applied to a dictionary or, when the type is
  known at compile time, to a direct call of the instance function.
* :class:`RecursivePlaceholder` — a reference to a letrec binder whose
  context is not yet known; resolved after generalization by applying
  the binder to its group's dictionary parameters.

The type checker keeps "a list of all placeholders, updated as each new
placeholder is created ... to avoid walking through the code in search
of placeholders" (section 6.3) — that list is :class:`PlaceholderScope`,
one per binding group, nested so that deferred placeholders (resolution
case 3) can be handed to the enclosing group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SourcePos
from repro.core.types import Type, prune, type_str
from repro.lang.ast import PlaceholderExpr


@dataclass
class Placeholder:
    """Base: an obligation attached to an expression node."""

    type: Type
    pos: Optional[SourcePos] = None

    @property
    def pruned_type(self) -> Type:
        return prune(self.type)


@dataclass
class ClassPlaceholder(Placeholder):
    class_name: str = ""
    #: multi-parameter constraint ``C t1 ... tn``: all constrained types
    #: (``type`` aliases the first).  ``None`` for the ordinary
    #: single-parameter case.
    arg_types: Optional[List[Type]] = None

    def __str__(self) -> str:
        if self.arg_types is not None:
            args = ", ".join(type_str(prune(t)) for t in self.arg_types)
            return f"{self.class_name}, {args}"
        return f"{self.class_name}, {type_str(self.pruned_type)}"


@dataclass
class MethodPlaceholder(Placeholder):
    method_name: str = ""
    class_name: str = ""
    #: see :attr:`ClassPlaceholder.arg_types`
    arg_types: Optional[List[Type]] = None

    def __str__(self) -> str:
        return f"{self.method_name}, {type_str(self.pruned_type)}"


@dataclass
class RecursivePlaceholder(Placeholder):
    name: str = ""
    #: the binding group the referenced binder belongs to; the
    #: placeholder resolves only at *that* group's generalization and is
    #: deferred by any nested group that drains it first.
    group: object = None

    def __str__(self) -> str:
        return f"{self.name}, {type_str(self.pruned_type)}"


@dataclass
class PendingPlaceholder:
    """A placeholder together with the expression node carrying it."""

    placeholder: Placeholder
    node: PlaceholderExpr


class PlaceholderScope:
    """The per-binding-group list of unresolved placeholders."""

    def __init__(self, parent: Optional["PlaceholderScope"] = None) -> None:
        self.parent = parent
        self.pending: List[PendingPlaceholder] = []

    def add(self, placeholder: Placeholder,
            node: PlaceholderExpr) -> PendingPlaceholder:
        entry = PendingPlaceholder(placeholder, node)
        self.pending.append(entry)
        return entry

    def defer(self, entry: PendingPlaceholder) -> None:
        """Resolution case 3: hand the placeholder to the enclosing
        binding's scope."""
        assert self.parent is not None, \
            "cannot defer a placeholder past the top level"
        self.parent.pending.append(entry)

    def drain(self) -> List[PendingPlaceholder]:
        """Remove and return the current batch of pending placeholders.

        Resolution may create new placeholders (recursive dictionary
        construction); the caller loops until a drain returns nothing.
        """
        batch = self.pending
        self.pending = []
        return batch


def make_placeholder_expr(placeholder: Placeholder) -> PlaceholderExpr:
    """The AST node for a freshly created placeholder."""
    return PlaceholderExpr(payload=placeholder, pos=placeholder.pos)
