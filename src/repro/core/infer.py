"""Type inference and dictionary conversion — sections 5 and 6.

The checker performs ML-style inference over the kernel AST with the
paper's two extensions:

1. type variables carry *contexts*, and unification propagates them
   (delegated to :mod:`repro.core.unify`);
2. the program is *rewritten during checking*: references to overloaded
   variables, methods and recursive binders become placeholders
   (section 6.1); at generalization, dictionary parameters are inserted
   and a parameter environment built (6.2); then every placeholder in
   the group's list is resolved by the four-case analysis of 6.3.

The result is the same kernel language, but with every overloaded
definition wrapped in dictionary lambdas and every overloaded reference
applied to dictionary expressions — ready for translation to the core
IR.

Also implemented here:

* binding-group analysis: minimal letrec groups share a common context
  (8.3), with the monomorphism warning for binders whose own type does
  not mention the whole group context;
* explicit signatures via read-only type variables, which also fix the
  dictionary parameter order (8.6);
* the monomorphism restriction (8.7);
* defaulting for ambiguous numeric contexts (6.3 case 4);
* compilation of class default methods as ordinary overloaded functions
  over the class dictionary (8.2);
* compilation of instance methods as explicitly-typed functions over
  the instance context (4), and generation of the dictionary
  constructor for every instance — including the superclass dictionary
  slots (8.1) and defaulted method slots.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    AmbiguityError,
    MonomorphismWarning,
    NoInstanceError,
    SourcePos,
    StaticError,
    TypeCheckError,
)
from repro.core.classes import (
    ClassEnv,
    InstanceInfo,
    MethodInfo,
    MPInstanceInfo,
)
from repro.core.kinds import STAR, Kind, kind_arity, prune_kind
from repro.core.placeholders import (
    ClassPlaceholder,
    MethodPlaceholder,
    PendingPlaceholder,
    Placeholder,
    PlaceholderScope,
    RecursivePlaceholder,
    make_placeholder_expr,
)
from repro.core.static import StaticEnv, convert_signature
from repro.core.types import (
    Pred,
    Scheme,
    T_BOOL,
    T_CHAR,
    T_FLOAT,
    T_INT,
    T_STRING,
    TyApp,
    TyCon,
    TyGen,
    TyVar,
    Type,
    fn_parts,
    fn_type,
    fn_types,
    generalize_over,
    prune,
    spine,
    tuple_type,
    type_str,
    type_variables,
)
from repro.core.unify import Unifier
from repro.lang import ast
from repro.solver import make_solver
from repro.solver.rules import match_mp_instance
from repro.util.graph import Digraph, strongly_connected_components
from repro.util.names import (
    NameSupply,
    default_method_name,
    method_impl_name,
    mp_head_key,
    mp_method_impl_name,
    selector_name,
    superclass_selector_name,
)


# --------------------------------------------------------------------------
# Type environment
# --------------------------------------------------------------------------

@dataclass
class SchemeEntry:
    """A generalized binding: uses instantiate freshly (possibly with
    dictionary placeholders)."""

    scheme: Scheme


@dataclass
class MonoEntry:
    """A lambda- or pattern-bound variable: monomorphic."""

    type: Type


@dataclass
class RecEntry:
    """A letrec binder before generalization: references become
    recursive placeholders sharing the binder's monotype."""

    type: Type
    group: "GroupState"


@dataclass
class MethodEntry:
    """A class method: references become method placeholders."""

    class_name: str
    method: MethodInfo


Entry = object


class TypeEnv:
    """Chained scopes mapping names to entries."""

    def __init__(self, parent: Optional["TypeEnv"] = None) -> None:
        self.parent = parent
        self.entries: Dict[str, Entry] = {}

    def lookup(self, name: str) -> Optional[Entry]:
        env: Optional[TypeEnv] = self
        while env is not None:
            entry = env.entries.get(name)
            if entry is not None:
                return entry
            env = env.parent
        return None

    def bind(self, name: str, entry: Entry) -> None:
        self.entries[name] = entry

    def child(self) -> "TypeEnv":
        return TypeEnv(self)


# --------------------------------------------------------------------------
# Results
# --------------------------------------------------------------------------

@dataclass
class CompiledBinding:
    """One translated top-level (or generated) definition."""

    name: str
    expr: ast.Expr                      # kernel RHS, placeholders resolved
    scheme: Optional[Scheme] = None     # None for generated helpers
    dict_params: List[str] = field(default_factory=list)
    kind: str = "user"                  # user | default | impl | dict | selector
    #: class constrained by each dictionary parameter, parallel to
    #: ``dict_params`` — the translator turns these into core binder
    #: annotations instead of discarding them
    dict_classes: List[str] = field(default_factory=list)


@dataclass
class GroupState:
    """Shared state of one implicitly-typed binding group being checked."""

    names: List[str]
    dict_params: List[str] = field(default_factory=list)
    resolved: bool = False


@dataclass
class InferResult:
    bindings: List[CompiledBinding]
    schemes: Dict[str, Scheme]
    warnings: List[MonomorphismWarning]
    env: TypeEnv
    unifier: Unifier


# --------------------------------------------------------------------------
# The inferencer
# --------------------------------------------------------------------------

class Inferencer:
    def __init__(self, static_env: StaticEnv, options=None,
                 global_env: Optional[TypeEnv] = None) -> None:
        from repro.options import CompilerOptions  # local import, no cycle
        self.static = static_env
        self.class_env: ClassEnv = static_env.class_env
        self.options = options if options is not None else CompilerOptions()
        self.unifier = Unifier(
            self.class_env,
            max_depth=getattr(self.options, "max_type_depth", 10_000),
            provenance=getattr(self.options, "constraint_provenance", True),
            solver=make_solver(getattr(self.options, "solver", "reduce")),
            minimize_cap=getattr(self.options, "provenance_minimize_cap",
                                 300))
        self.names = NameSupply()
        self.level = 0
        self.env = global_env if global_env is not None else TypeEnv()
        self.scope = PlaceholderScope()  # top-level scope
        self.warnings: List[MonomorphismWarning] = []
        self.output: List[CompiledBinding] = []
        self.schemes: Dict[str, Scheme] = {}
        self._compiled_instances: set = set()
        self._compiled_defaults: set = set()
        self.install_methods()

    def install_methods(self) -> None:
        """Bind every class method name in scope to its class.

        Idempotent; run after each unit's static analysis (the
        pipeline's ``install-methods`` pass) so methods declared by
        newly analysed classes are visible to inference.
        """
        for class_name, info in self.class_env.classes.items():
            for method in info.methods:
                if self.env.lookup(method.name) is None:
                    self.env.bind(method.name, MethodEntry(class_name, method))

    #: historical name, kept for external callers
    _install_methods = install_methods

    # ------------------------------------------------------------ helpers

    @contextmanager
    def scoped_level(self) -> Iterator[int]:
        """Enter one quantification level for the duration of a block.

        Yields the new level and restores the previous one on exit —
        including on error, so a failed inference never leaves the
        shared inferencer at a skewed level (the bug the old manual
        ``level += 1 ... level -= 1`` bookkeeping allowed).
        """
        self.level += 1
        try:
            yield self.level
        finally:
            self.level -= 1

    def fresh(self, kind: Kind = STAR, hint: str = "t") -> TyVar:
        return TyVar(kind, self.level, hint)

    def fresh_read_only(self, kind: Kind, level: int) -> TyVar:
        return TyVar(kind, level, "s", read_only=True)

    def unify(self, a: Type, b: Type, pos: Optional[SourcePos] = None,
              reason: str = "unification") -> None:
        self.unifier.unify(a, b, pos, reason)

    # =================================================================
    # Program entry points
    # =================================================================

    def infer_program(self, program: ast.Program) -> InferResult:
        """Check a whole (desugared, statically analysed) module."""
        decls = [d for d in program.decls
                 if isinstance(d, (ast.FunBind, ast.TypeSig))]
        self.env = self.env.child()
        self.process_decl_block(decls, top_level=True)
        self.compile_class_defaults()
        self.compile_instances()
        self.finish_top_level()
        return InferResult(self.output, self.schemes, self.warnings,
                           self.env, self.unifier)

    def infer_expression(self, expr: ast.Expr) -> Tuple[Type, ast.Expr]:
        """Check one expression against the current environment (the
        public ``eval``-style API); dictionaries resolve against
        concrete types or defaults.  Runs as one provenance episode: a
        failure is explained (minimal unsatisfiable core), then rolled
        back, so a shared long-lived inferencer is left exactly as it
        was before the request."""
        with self.unifier.episode():
            scope = self.scope = PlaceholderScope(self.scope)
            try:
                with self.scoped_level():
                    ty, expr2 = self.infer_expr(expr, self.env)
                self.resolve_scope(scope, param_env={}, group=None)
            finally:
                self.scope = scope.parent
            self.finish_top_level()
        return ty, expr2

    def finish_top_level(self) -> None:
        """Resolve anything deferred to the very top: defaulting or
        ambiguity errors (placeholder case 4 at level 0)."""
        with self.unifier.episode():
            self.resolve_scope(self.scope, param_env={}, group=None)

    # =================================================================
    # Declaration blocks and binding groups
    # =================================================================

    def process_decl_block(self, decls: Sequence[ast.Decl],
                           top_level: bool = False) -> None:
        """Check a list of bindings and signatures in the current env.

        Performs dependency analysis (section 8.3): minimal recursive
        groups, processed dependencies-first; explicitly-typed bindings
        do not force grouping because their schemes are known up front.
        """
        sigs: Dict[str, Scheme] = {}
        sig_positions: Dict[str, Optional[SourcePos]] = {}
        binds: List[ast.FunBind] = []
        for decl in decls:
            if isinstance(decl, ast.TypeSig):
                scheme = convert_signature(self.static, decl.signature)
                for name in decl.names:
                    if name in sigs:
                        raise StaticError(
                            f"duplicate type signature for {name}", decl.pos)
                    sigs[name] = scheme
                    sig_positions[name] = decl.pos
            elif isinstance(decl, ast.FunBind):
                binds.append(decl)
            else:
                raise StaticError(
                    f"unexpected declaration in binding block", decl.pos)
        bound_names = {b.name for b in binds}
        for name in sigs:
            if name not in bound_names:
                raise StaticError(
                    f"type signature for {name} lacks a binding",
                    sig_positions[name])
        for b in binds:
            if not b.is_simple:
                raise StaticError(
                    f"binding for {b.name} is not in kernel form "
                    f"(desugar the program first)", b.pos)
        # Declared schemes are visible everywhere in the block.
        for name, scheme in sigs.items():
            self.env.bind(name, SchemeEntry(scheme))
        # Dependency graph: an edge f -> g for each reference from f's
        # body to an *implicitly typed* binding g of this block.
        graph = Digraph()
        implicit = {b.name for b in binds if b.name not in sigs}
        for b in binds:
            graph.add_node(b.name)
        for b in binds:
            for name in ast.expr_free_vars(b.simple_rhs):
                if name in implicit and name != b.name or (
                        name == b.name and name in implicit):
                    graph.add_edge(b.name, name)
        by_name = {b.name: b for b in binds}
        for component in strongly_connected_components(graph):
            group = [by_name[n] for n in component]
            if len(group) == 1 and group[0].name in sigs:
                self.check_explicit(group[0], sigs[group[0].name],
                                    emit=top_level)
            else:
                # A component is implicit by construction (explicit
                # nodes have no inbound edges into cycles).
                self.check_implicit_group(group, top_level=top_level)

    # ------------------------------------------------- implicit groups

    def check_implicit_group(self, binds: List[ast.FunBind],
                             top_level: bool = False) -> None:
        outer_level = self.level
        with self.unifier.episode():
            scope = self.scope = PlaceholderScope(self.scope)
            try:
                group, monos, gen_vars_per, group_preds, dict_params = \
                    self._check_implicit_group_body(binds, scope, outer_level)
            finally:
                self.scope = scope.parent
        group.resolved = True
        # ----- wrap with dictionary lambdas, build schemes -----
        for b in binds:
            if dict_params:
                b.set_simple_rhs(ast.Lam(
                    [ast.PVar(p) for p in dict_params], b.simple_rhs,
                    pos=b.pos))
            own_vars = gen_vars_per[b.name]
            own_ids = {v.id for v in own_vars}
            missing = [cls for (cls, v) in group_preds if v.id not in own_ids]
            if missing:
                self.warnings.append(MonomorphismWarning(b.name, missing))
            quantified = list(own_vars)
            for (_cls, v) in group_preds:
                if v.id not in {q.id for q in quantified}:
                    quantified.append(v)
            scheme = generalize_over(quantified, group_preds, monos[b.name])
            self.env.bind(b.name, SchemeEntry(scheme))
            self.schemes[b.name] = scheme
            # Only top-level groups become top-level compiled bindings.
            # A local group's (dictionary-converted) definitions stay in
            # their enclosing let — emitting them here too used to leave
            # dead top-level duplicates, which shadow each other in the
            # evaluator's globals and trip the core lint.
            if top_level:
                self.output.append(CompiledBinding(
                    b.name, b.simple_rhs, scheme, list(dict_params), "user",
                    dict_classes=[cls for (cls, _v) in group_preds]))

    def _check_implicit_group_body(self, binds: List[ast.FunBind],
                                   scope: PlaceholderScope, outer_level: int):
        """Inference + generalization + resolution of one implicit
        group (the part of :meth:`check_implicit_group` that runs
        inside the provenance episode)."""
        with self.scoped_level():
            group = GroupState([b.name for b in binds])
            monos: Dict[str, TyVar] = {}
            for b in binds:
                tv = self.fresh()
                monos[b.name] = tv
                self.env.bind(b.name, RecEntry(tv, group))
            for b in binds:
                ty, rhs = self.infer_expr(b.simple_rhs, self.env)
                b.set_simple_rhs(rhs)
                self.unify(ty, monos[b.name], b.pos, reason="definition")
        # ----- generalization (section 6.2) -----
        # Collect the group's quantifiable variables and its context.
        gen_vars_per: Dict[str, List[TyVar]] = {}
        group_vars: List[TyVar] = []
        seen_ids = set()
        for b in binds:
            tvs = [v for v in type_variables(monos[b.name])
                   if v.level > outer_level and not v.read_only]
            gen_vars_per[b.name] = tvs
            for v in tvs:
                if v.id not in seen_ids:
                    seen_ids.add(v.id)
                    group_vars.append(v)
        constrained = [v for v in group_vars if v.context]
        restricted = (
            self.options.monomorphism_restriction
            and any(getattr(b, "original_arity", 0) == 0 for b in binds)
            and bool(constrained)
        )
        if restricted:
            # Section 8.7: "type variables in its context must not be
            # generalized: they must remain in the type environment".
            escaped = {v.id for v in constrained}
            for v in constrained:
                v.level = outer_level
            constrained = []
            for name in gen_vars_per:
                gen_vars_per[name] = [v for v in gen_vars_per[name]
                                      if v.id not in escaped]
        group_preds: List[Tuple[str, TyVar]] = []
        for v in constrained:
            for cls in v.context:
                group_preds.append((cls, v))
        dict_params = [self.names.fresh("d") for _ in group_preds]
        group.dict_params = dict_params
        param_env = {(cls, v.id): name
                     for (cls, v), name in zip(group_preds, dict_params)}
        self.resolve_scope(scope, param_env, group)
        return group, monos, gen_vars_per, group_preds, dict_params

    # ------------------------------------------------- explicit bindings

    def check_explicit(self, bind: ast.FunBind, scheme: Scheme,
                       kind: str = "user",
                       out_name: Optional[str] = None,
                       emit: bool = True) -> None:
        """Check a binding against a declared scheme (section 8.6).

        The signature is instantiated with read-only variables; the
        declared context, in declared order, determines the dictionary
        parameters.  *emit* is False for signed bindings in local lets:
        they are checked and dictionary-converted in place but stay in
        their enclosing let rather than becoming top-level output.
        """
        reason = {"default": "class-default",
                  "impl": "instance-method"}.get(kind, "annotation")
        with self.unifier.episode():
            scope = self.scope = PlaceholderScope(self.scope)
            try:
                with self.scoped_level() as level:
                    sig_ty, sig_preds, _ro_vars = scheme.instantiate(
                        level,
                        fresh=lambda kind_, lvl: self.fresh_read_only(kind_,
                                                                      lvl))
                    ty, rhs = self.infer_expr(bind.simple_rhs, self.env)
                    bind.set_simple_rhs(rhs)
                    self.unify(ty, sig_ty, bind.pos, reason=reason)
                dict_params = [self.names.fresh("d") for _ in sig_preds]
                param_env: Dict[Tuple[str, object], str] = {}
                for (cls, v), pname in zip(sig_preds, dict_params):
                    if isinstance(v, tuple):
                        # Multi-parameter predicate: key on the tuple of
                        # (read-only) variable ids, in declared order.
                        # Predicates with concrete positions resolve
                        # structurally (match_mp_instance), not here.
                        if all(isinstance(t, TyVar) for t in v):
                            param_env[(cls, tuple(t.id for t in v))] = pname
                    else:
                        param_env[(cls, v.id)] = pname
                self.resolve_scope(scope, param_env, None)
            finally:
                self.scope = scope.parent
        if dict_params:
            bind.set_simple_rhs(ast.Lam(
                [ast.PVar(p) for p in dict_params], bind.simple_rhs,
                pos=bind.pos))
        name = out_name if out_name is not None else bind.name
        self.env.bind(bind.name, SchemeEntry(scheme))
        self.schemes[name] = scheme
        if emit:
            self.output.append(CompiledBinding(
                name, bind.simple_rhs, scheme, list(dict_params), kind,
                dict_classes=[cls for (cls, _v) in sig_preds]))

    # =================================================================
    # Expression inference (returns possibly rewritten node)
    # =================================================================

    def infer_expr(self, expr: ast.Expr,
                   env: TypeEnv) -> Tuple[Type, ast.Expr]:
        if isinstance(expr, ast.Var):
            return self.infer_var(expr, env)
        if isinstance(expr, ast.Con):
            info = self.static.data_con(expr.name)
            ty, preds, _ = info.scheme.instantiate(self.level)
            assert not preds, "data constructors are never overloaded"
            return ty, expr
        if isinstance(expr, ast.Lit):
            return self.infer_lit(expr), expr
        if isinstance(expr, ast.App):
            fn_ty, fn2 = self.infer_expr(expr.fn, env)
            arg_ty, arg2 = self.infer_expr(expr.arg, env)
            res = self.fresh()
            self.unify(fn_ty, fn_type(arg_ty, res), expr.pos,
                       reason="application")
            expr.fn, expr.arg = fn2, arg2
            return res, expr
        if isinstance(expr, ast.Lam):
            inner = env.child()
            param_types: List[Type] = []
            for p in expr.params:
                assert isinstance(p, ast.PVar), "kernel lambdas bind variables"
                tv = self.fresh()
                inner.bind(p.name, MonoEntry(tv))
                param_types.append(tv)
            body_ty, body2 = self.infer_expr(expr.body, inner)
            expr.body = body2
            return fn_types(param_types, body_ty), expr
        if isinstance(expr, ast.Let):
            inner = env.child()
            saved = self.env
            self.env = inner
            try:
                self.process_decl_block(expr.decls)
                body_ty, body2 = self.infer_expr(expr.body, inner)
            finally:
                self.env = saved
            expr.body = body2
            return body_ty, expr
        if isinstance(expr, ast.If):
            cond_ty, cond2 = self.infer_expr(expr.cond, env)
            self.unify(cond_ty, T_BOOL, expr.pos, reason="condition")
            then_ty, then2 = self.infer_expr(expr.then_branch, env)
            else_ty, else2 = self.infer_expr(expr.else_branch, env)
            self.unify(then_ty, else_ty, expr.pos, reason="if-branches")
            expr.cond, expr.then_branch, expr.else_branch = cond2, then2, else2
            return then_ty, expr
        if isinstance(expr, ast.Case):
            return self.infer_case(expr, env)
        if isinstance(expr, ast.TupleExpr):
            types: List[Type] = []
            for i, item in enumerate(expr.items):
                ty, item2 = self.infer_expr(item, env)
                expr.items[i] = item2
                types.append(ty)
            return tuple_type(types), expr
        if isinstance(expr, ast.Annot):
            scheme = convert_signature(self.static, expr.signature)
            sig_ty, _preds, _vars = scheme.instantiate(self.level)
            body_ty, body2 = self.infer_expr(expr.expr, env)
            self.unify(body_ty, sig_ty, expr.pos, reason="annotation")
            # The annotation node itself disappears from the output.
            return sig_ty, body2
        raise TypeCheckError(
            f"cannot infer type of expression {expr!r}",
            getattr(expr, "pos", None))

    def infer_var(self, expr: ast.Var, env: TypeEnv) -> Tuple[Type, ast.Expr]:
        entry = env.lookup(expr.name)
        if entry is None:
            raise TypeCheckError(f"variable {expr.name} is not in scope",
                                 expr.pos)
        if isinstance(entry, MonoEntry):
            return entry.type, expr
        if isinstance(entry, RecEntry):
            # Section 6.1: recursive references become placeholders
            # sharing the binder's (monomorphic) type.
            ph = RecursivePlaceholder(entry.type, expr.pos, name=expr.name,
                                      group=entry.group)
            node = make_placeholder_expr(ph)
            self.scope.add(ph, node)
            return entry.type, node
        if isinstance(entry, SchemeEntry):
            ty, preds, _ = entry.scheme.instantiate(self.level)
            out: ast.Expr = expr
            for cls, var in preds:
                # A multi-parameter predicate instantiates to a *tuple*
                # of types; its placeholder carries them all.
                if isinstance(var, tuple):
                    ph = ClassPlaceholder(var[0], expr.pos, class_name=cls,
                                          arg_types=list(var))
                else:
                    ph = ClassPlaceholder(var, expr.pos, class_name=cls)
                node = make_placeholder_expr(ph)
                self.scope.add(ph, node)
                out = ast.App(out, node, pos=expr.pos)
            return ty, out
        if isinstance(entry, MethodEntry):
            ty, preds, _ = entry.method.scheme.instantiate(self.level)
            cls0, class_var = preds[0]
            if isinstance(class_var, tuple):
                ph = MethodPlaceholder(class_var[0], expr.pos,
                                       method_name=expr.name, class_name=cls0,
                                       arg_types=list(class_var))
            else:
                ph = MethodPlaceholder(class_var, expr.pos,
                                       method_name=expr.name, class_name=cls0)
            node = make_placeholder_expr(ph)
            self.scope.add(ph, node)
            out = node
            for cls, var in preds[1:]:  # extra overloading, section 8.5
                if isinstance(var, tuple):
                    extra = ClassPlaceholder(var[0], expr.pos, class_name=cls,
                                             arg_types=list(var))
                else:
                    extra = ClassPlaceholder(var, expr.pos, class_name=cls)
                extra_node = make_placeholder_expr(extra)
                self.scope.add(extra, extra_node)
                out = ast.App(out, extra_node, pos=expr.pos)
            return ty, out
        raise TypeCheckError(
            f"internal: unknown environment entry for {expr.name}", expr.pos)

    def infer_lit(self, expr: ast.Lit) -> Type:
        if expr.kind == "int":
            return T_INT
        if expr.kind == "float":
            return T_FLOAT
        if expr.kind == "char":
            return T_CHAR
        if expr.kind == "string":
            return T_STRING
        raise TypeCheckError(f"unknown literal kind {expr.kind}", expr.pos)

    def infer_case(self, expr: ast.Case, env: TypeEnv) -> Tuple[Type, ast.Expr]:
        scrut_ty, scrut2 = self.infer_expr(expr.scrutinee, env)
        expr.scrutinee = scrut2
        result = self.fresh()
        for alt in expr.alts:
            bindings: Dict[str, Type] = {}
            pat_ty = self.infer_pattern(alt.pat, bindings)
            self.unify(pat_ty, scrut_ty, alt.pos, reason="pattern")
            inner = env.child()
            for name, ty in bindings.items():
                inner.bind(name, MonoEntry(ty))
            if alt.where_decls:
                saved = self.env
                self.env = inner
                try:
                    self.process_decl_block(alt.where_decls)
                finally:
                    self.env = saved
            for rhs in alt.rhss:
                if rhs.guard is not None:
                    g_ty, g2 = self.infer_expr(rhs.guard, inner)
                    self.unify(g_ty, T_BOOL, rhs.pos, reason="guard")
                    rhs.guard = g2
                b_ty, b2 = self.infer_expr(rhs.body, inner)
                self.unify(b_ty, result, rhs.pos, reason="case-branches")
                rhs.body = b2
        return result, expr

    def infer_pattern(self, pat: ast.Pat,
                      bindings: Dict[str, Type]) -> Type:
        if isinstance(pat, ast.PVar):
            if pat.name in bindings:
                raise TypeCheckError(
                    f"variable {pat.name} bound twice in pattern", pat.pos)
            tv = self.fresh()
            bindings[pat.name] = tv
            return tv
        if isinstance(pat, ast.PWild):
            return self.fresh()
        if isinstance(pat, ast.PLit):
            if pat.kind == "char":
                return T_CHAR
            if pat.kind == "int":
                return T_INT
            if pat.kind == "float":
                return T_FLOAT
            raise TypeCheckError(
                f"unexpected literal pattern of kind {pat.kind} in kernel",
                pat.pos)
        if isinstance(pat, ast.PTuple):
            return tuple_type([self.infer_pattern(p, bindings)
                               for p in pat.items])
        if isinstance(pat, ast.PAs):
            ty = self.infer_pattern(pat.pat, bindings)
            if pat.name in bindings:
                raise TypeCheckError(
                    f"variable {pat.name} bound twice in pattern", pat.pos)
            bindings[pat.name] = ty
            return ty
        assert isinstance(pat, ast.PCon)
        info = self.static.data_con(pat.name)
        if len(pat.args) != info.arity:
            raise TypeCheckError(
                f"constructor {pat.name} expects {info.arity} argument(s) "
                f"in a pattern, got {len(pat.args)}", pat.pos)
        con_ty, preds, _ = info.scheme.instantiate(self.level)
        assert not preds
        for arg in pat.args:
            parts = fn_parts(con_ty)
            assert parts is not None
            arg_ty, con_ty = parts
            self.unify(self.infer_pattern(arg, bindings), arg_ty, pat.pos,
                       reason="pattern")
        return con_ty

    # =================================================================
    # Placeholder resolution (section 6.3)
    # =================================================================

    def resolve_scope(self, scope: PlaceholderScope,
                      param_env: Dict[Tuple[str, int], str],
                      group: Optional[GroupState]) -> None:
        """Resolve every placeholder recorded for a binding group.

        Resolution of one placeholder can create new ones (recursive
        dictionary construction, 6.3 case 2); the loop drains until
        quiescent.
        """
        while True:
            batch = scope.drain()
            if not batch:
                return
            for entry in batch:
                self.resolve_one(entry, scope, param_env, group)

    def resolve_one(self, entry: PendingPlaceholder, scope: PlaceholderScope,
                    param_env: Dict[Tuple[str, int], str],
                    group: Optional[GroupState]) -> None:
        ph = entry.placeholder
        node = entry.node
        if node.resolved is not None:
            return
        if isinstance(ph, RecursivePlaceholder):
            if ph.group is not group:
                # Drained by a nested group: resolution belongs to the
                # group that owns the binder (its dictionaries are not
                # known yet here).
                scope.defer(entry)
                return
            # "any dictionaries passed to a recursive call remain
            # unchanged from the original entry" — apply the binder to
            # the group's dictionary parameters.
            assert group is not None and ph.name in group.names
            out: ast.Expr = ast.Var(ph.name, pos=ph.pos)
            for param in group.dict_params:
                out = ast.App(out, ast.Var(param, pos=ph.pos), pos=ph.pos)
            node.resolved = out
            return
        assert isinstance(ph, (ClassPlaceholder, MethodPlaceholder))
        if ph.arg_types is not None:
            self.resolve_mp(entry, scope, param_env, group)
            return
        ty = prune(ph.type)
        if isinstance(ty, TyVar):
            # Case 1: the variable is in the parameter environment.
            resolved = self.resolve_from_params(ph, ty, param_env)
            if resolved is not None:
                node.resolved = resolved
                return
            # Case 3: bound in an outer type environment -> defer.
            if ty.level <= self.level and scope.parent is not None:
                scope.defer(entry)
                return
            # Case 4: ambiguity; try defaulting, else error.
            if self.try_default(ty, ph.pos):
                scope.pending.append(entry)  # re-resolve at the new type
                return
            raise AmbiguityError(list(ty.context) or [ph.class_name],
                                 type_str(ty), ph.pos)
        # Case 2: instantiated to a type constructor.
        head, args = spine(ty)
        if not isinstance(head, TyCon):
            raise TypeCheckError(
                f"cannot resolve overloading at type {type_str(ty)}", ph.pos)
        if isinstance(ph, ClassPlaceholder):
            node.resolved = self.dictionary_expr(ph.class_name, head, args,
                                                 ty, scope, ph.pos)
        else:
            node.resolved = self.method_expr(ph, head, args, ty, scope)

    def resolve_mp(self, entry: PendingPlaceholder, scope: PlaceholderScope,
                   param_env: Dict[Tuple[str, int], str],
                   group: Optional[GroupState]) -> None:
        """Resolution of a multi-parameter placeholder ``C t1 ... tn``.

        The same four-case analysis as :meth:`resolve_one`, adapted to a
        tuple of types: an all-variable constraint looks up the tuple of
        variable ids in the parameter environment (case 1); a constraint
        with constructor heads matches the (non-overlapping) instance
        patterns structurally (case 2); leftover variables defer to the
        enclosing group (case 3) or — since multi-parameter constraints
        are never generalized implicitly and never defaulted — report an
        ambiguity asking for a type signature (case 4).
        """
        ph = entry.placeholder
        node = entry.node
        tys = [prune(t) for t in ph.arg_types]
        ph.arg_types = tys
        if all(isinstance(t, TyVar) for t in tys):
            name = param_env.get((ph.class_name, tuple(t.id for t in tys)))
            if name is not None:
                base: ast.Expr = ast.Var(name, pos=ph.pos)
                if isinstance(ph, MethodPlaceholder):
                    node.resolved = self.method_access(
                        ph.class_name, ph.method_name, base, ph.pos)
                else:
                    node.resolved = base
                return
        matched = match_mp_instance(self.class_env, ph.class_name, tys)
        if matched is not None:
            info, bindings = matched
            if isinstance(ph, MethodPlaceholder):
                node.resolved = self.mp_method_expr(ph, info, bindings, scope)
            else:
                node.resolved = self.mp_dictionary_expr(info, bindings,
                                                        scope, ph.pos)
            return
        tyvars = [t for t in tys if isinstance(t, TyVar)]
        rendered = " ".join(type_str(t, 2) for t in tys)
        if tyvars:
            if any(v.level <= self.level for v in tyvars) \
                    and scope.parent is not None:
                scope.defer(entry)
                return
            raise AmbiguityError([ph.class_name], rendered, ph.pos)
        raise NoInstanceError(ph.class_name, rendered, ph.pos)

    def resolve_from_params(self, ph: Placeholder, ty: TyVar,
                            param_env: Dict[Tuple[str, int], str]
                            ) -> Optional[ast.Expr]:
        """Case 1, including access through superclass dictionaries when
        the needed class was absorbed by a subclass (section 8.1)."""
        if isinstance(ph, ClassPlaceholder):
            needed = ph.class_name
        else:
            assert isinstance(ph, MethodPlaceholder)
            needed = ph.class_name
        direct = param_env.get((needed, ty.id))
        if direct is not None:
            base: ast.Expr = ast.Var(direct, pos=ph.pos)
            have = needed
        else:
            # Look for a parameter whose class implies the needed one.
            base = None  # type: ignore[assignment]
            have = ""
            for (cls, var_id), name in param_env.items():
                if var_id == ty.id and self.class_env.implies(cls, needed):
                    base = ast.Var(name, pos=ph.pos)
                    have = cls
                    break
            if base is None:
                return None
        if isinstance(ph, ClassPlaceholder):
            return self.superdict_access(have, needed, base, ph.pos)
        return self.method_access(have, ph.method_name, base, ph.pos)

    # ----------------------------------------------------- dictionaries

    def dictionary_expr(self, class_name: str, head: TyCon, args: List[Type],
                        full_ty: Type, scope: PlaceholderScope,
                        pos: Optional[SourcePos]) -> ast.Expr:
        """A dictionary for ``class_name`` at constructor type
        ``head args``: the instance's dictionary (constructor) applied
        to recursively-resolved subdictionaries."""
        info = self.class_env.get_instance(head.name, class_name)
        if info is None:
            raise NoInstanceError(class_name, type_str(full_ty), pos)
        out: ast.Expr = ast.Var(info.dict_name, pos=pos)
        for arg_index, cls in info.dict_param_preds():
            sub = ClassPlaceholder(args[arg_index], pos, class_name=cls)
            sub_node = make_placeholder_expr(sub)
            scope.add(sub, sub_node)
            out = ast.App(out, sub_node, pos=pos)
        return out

    def method_expr(self, ph: MethodPlaceholder, head: TyCon,
                    args: List[Type], full_ty: Type,
                    scope: PlaceholderScope) -> ast.Expr:
        """A method at a known type: "the type specific version of the
        method is called directly without using the dictionary"."""
        owner = ph.class_name
        info = self.class_env.get_instance(head.name, owner)
        if info is None:
            raise NoInstanceError(owner, type_str(full_ty), ph.pos)
        if ph.method_name in info.defined_methods:
            out: ast.Expr = ast.Var(
                method_impl_name(owner, head.name, ph.method_name), pos=ph.pos)
            for arg_index, cls in info.dict_param_preds():
                sub = ClassPlaceholder(args[arg_index], ph.pos, class_name=cls)
                sub_node = make_placeholder_expr(sub)
                scope.add(sub, sub_node)
                out = ast.App(out, sub_node, pos=ph.pos)
            return out
        # Method not given by the instance: use the class default,
        # applied to the full dictionary (section 8.2).
        method = self.class_env.class_info(owner).method(ph.method_name)
        if method is None or not method.has_default:
            raise TypeCheckError(
                f"instance {owner} {head.name} gives no definition of "
                f"method {ph.method_name} and the class declares no "
                f"default", ph.pos)
        dict_expr = self.dictionary_expr(owner, head, args, full_ty,
                                         scope, ph.pos)
        return ast.App(ast.Var(default_method_name(owner, ph.method_name),
                               pos=ph.pos), dict_expr, pos=ph.pos)

    # ------------------------------------- multi-parameter dictionaries

    def _mp_context_args(self, info: MPInstanceInfo, bindings: List[Type],
                         scope: PlaceholderScope, out: ast.Expr,
                         pos: Optional[SourcePos]) -> ast.Expr:
        """Apply *out* to one placeholder per entry of the instance's
        context, with the matched head types substituted in."""
        for centry in info.context:
            if centry[0] == "sp":
                _, cls, var_idx = centry
                sub = ClassPlaceholder(bindings[var_idx], pos, class_name=cls)
            else:
                _, cls, var_idxs = centry
                tys = [bindings[i] for i in var_idxs]
                sub = ClassPlaceholder(tys[0], pos, class_name=cls,
                                       arg_types=tys)
            sub_node = make_placeholder_expr(sub)
            scope.add(sub, sub_node)
            out = ast.App(out, sub_node, pos=pos)
        return out

    def mp_dictionary_expr(self, info: MPInstanceInfo, bindings: List[Type],
                           scope: PlaceholderScope,
                           pos: Optional[SourcePos]) -> ast.Expr:
        """A dictionary for a matched multi-parameter instance: its
        dictionary constructor applied to the context's dictionaries."""
        return self._mp_context_args(info, bindings, scope,
                                     ast.Var(info.dict_name, pos=pos), pos)

    def mp_method_expr(self, ph: MethodPlaceholder, info: MPInstanceInfo,
                       bindings: List[Type],
                       scope: PlaceholderScope) -> ast.Expr:
        """A multi-parameter class method at fully known types — direct
        call of the instance implementation, like :meth:`method_expr`."""
        owner = ph.class_name
        head_key = mp_head_key(info.patterns)
        if ph.method_name in info.defined_methods:
            out: ast.Expr = ast.Var(
                mp_method_impl_name(owner, head_key, ph.method_name),
                pos=ph.pos)
            return self._mp_context_args(info, bindings, scope, out, ph.pos)
        method = self.class_env.class_info(owner).method(ph.method_name)
        if method is None or not method.has_default:
            raise TypeCheckError(
                f"instance {owner} {head_key} gives no definition of "
                f"method {ph.method_name} and the class declares no "
                f"default", ph.pos)
        dict_expr = self.mp_dictionary_expr(info, bindings, scope, ph.pos)
        return ast.App(ast.Var(default_method_name(owner, ph.method_name),
                               pos=ph.pos), dict_expr, pos=ph.pos)

    # ------------------------------------------- dictionary access code

    def method_access(self, have_class: str, method: str, dict_expr: ast.Expr,
                      pos: Optional[SourcePos]) -> ast.Expr:
        """Select *method* out of a dictionary for *have_class*."""
        env = self.class_env
        if env.layout == "flat":
            if env.uses_bare_dict(have_class):
                return dict_expr
            return ast.App(ast.Var(selector_name(have_class, method), pos=pos),
                           dict_expr, pos=pos)
        hops, owner = env.method_access_path(have_class, method)
        expr = dict_expr
        for (c, s) in hops:
            expr = self.superdict_hop(c, s, expr, pos)
        if env.uses_bare_dict(owner):
            return expr
        return ast.App(ast.Var(selector_name(owner, method), pos=pos),
                       expr, pos=pos)

    def superdict_access(self, have_class: str, needed: str,
                         dict_expr: ast.Expr,
                         pos: Optional[SourcePos]) -> ast.Expr:
        """Produce a dictionary for *needed* from one for *have_class*."""
        if have_class == needed:
            return dict_expr
        env = self.class_env
        if env.layout == "flat":
            # One conversion step regardless of distance: the flattened
            # have-dict contains every needed method at top level.
            return ast.App(
                ast.Var(superclass_selector_name(have_class, needed), pos=pos),
                dict_expr, pos=pos)
        path = env.superclass_path(have_class, needed)
        assert path is not None, "implies() said the path exists"
        expr = dict_expr
        for (c, s) in path:
            expr = self.superdict_hop(c, s, expr, pos)
        return expr

    def superdict_hop(self, class_name: str, super_name: str,
                      dict_expr: ast.Expr,
                      pos: Optional[SourcePos]) -> ast.Expr:
        env = self.class_env
        if env.uses_bare_dict(class_name):
            # The single slot *is* the superclass dictionary.
            return dict_expr
        return ast.App(
            ast.Var(superclass_selector_name(class_name, super_name), pos=pos),
            dict_expr, pos=pos)

    # ------------------------------------------------------- defaulting

    def try_default(self, ty: TyVar,
                    pos: Optional[SourcePos] = None) -> bool:
        """Section 6.3 case 4: "the ambiguity may be resolved by some
        language specific mechanism" — Haskell-style numeric defaulting.

        *pos* is the placeholder's source span, so a conflict with the
        defaulted type is reported where the overloading was used
        rather than with no position at all.
        """
        if not self.options.defaulting or not ty.context:
            return False
        if not any(self._is_numeric_class(cls) for cls in ty.context):
            return False
        for name in self.class_env.default_types:
            try:
                candidate = self.static.tycon(name)
            except StaticError:
                continue
            if kind_arity(candidate.kind) != 0:
                continue
            ok = all(self.class_env.get_instance(name, cls) is not None
                     for cls in ty.context)
            if not ok:
                continue
            if self.unifier.try_unify(ty, candidate, pos,
                                      reason="defaulting"):
                return True
        return False

    def _is_numeric_class(self, cls: str) -> bool:
        if cls == "Num":
            return True
        if not self.class_env.is_class(cls):
            return False
        return "Num" in self.class_env.supers_transitive(cls)

    # =================================================================
    # Class defaults and instances (sections 4, 8.1, 8.2)
    # =================================================================

    def compile_class_defaults(self) -> None:
        """Compile each class default method as an ordinary explicitly
        typed overloaded function whose context is the class itself."""
        for class_name, decl in self.static.class_bodies.items():
            if class_name in self._compiled_defaults:
                continue
            self._compiled_defaults.add(class_name)
            info = self.class_env.class_info(class_name)
            for dflt in decl.defaults:
                method = info.method(dflt.name)
                assert method is not None
                bind = ast.simple_bind(default_method_name(class_name, dflt.name),
                                       dflt.simple_rhs, pos=dflt.pos)
                self.check_explicit(bind, method.scheme, kind="default")

    def compile_instances(self) -> None:
        """Compile instance method implementations and generate the
        dictionary (constructor) for every instance — the paper's
        per-instance dictionary value definition (section 4)."""
        for info, decl in self.static.instance_bodies:
            key = (info.class_name, info.tycon_name)
            if key in self._compiled_instances:
                continue
            self._compiled_instances.add(key)
            self.compile_instance(info, decl)
        # Multi-parameter instances: keyed by head signature (contains a
        # ``$`` or ``_``, so the keys never clash with tycon names).
        for info, decl in getattr(self.static, "mp_instance_bodies", []):
            key = (info.class_name, mp_head_key(info.patterns))
            if key in self._compiled_instances:
                continue
            self._compiled_instances.add(key)
            self.compile_mp_instance(info, decl)

    def instance_method_scheme(self, info: InstanceInfo,
                               method: MethodInfo) -> Scheme:
        """The method's scheme specialised to the instance head, with
        the instance context as its (leading) predicates."""
        tycon = self.static.tycon(info.tycon_name)
        # One head variable per context slot — for a higher-kinded
        # instance at a partial application (``instance Functor
        # (Either a)``) this is *fewer* than the constructor's full
        # kind arity: the head is the partial spine ``Either (TyGen 0)``.
        n_args = len(info.context)
        head: Type = tycon
        for i in range(n_args):
            head = TyApp(head, TyGen(i))

        def shift(t: Type) -> Type:
            t = prune(t)
            if isinstance(t, TyGen):
                if t.index == 0:
                    return head
                return TyGen(n_args + t.index - 1)
            if isinstance(t, TyApp):
                return TyApp(shift(t.fn), shift(t.arg))
            return t

        kinds: List[Kind] = []
        k = prune_kind(tycon.kind)
        from repro.core.kinds import KFun as _KFun
        while isinstance(k, _KFun):
            kinds.append(k.arg)
            k = prune_kind(k.res)
        kinds = kinds[:n_args] + method.scheme.kinds[1:]
        preds = [Pred(cls, TyGen(arg_index))
                 for arg_index, cls in info.dict_param_preds()]
        for extra in method.scheme.preds[1:]:
            preds.append(Pred(extra.class_name, shift(extra.type)))
        return Scheme(kinds, preds, shift(method.scheme.type))

    def compile_instance(self, info: InstanceInfo,
                         decl: ast.InstanceDecl) -> None:
        class_info = self.class_env.class_info(info.class_name)
        bound = {b.name: b for b in decl.bindings}
        # 1. Implementation functions for the methods the instance gives.
        for method in class_info.methods:
            binding = bound.get(method.name)
            if binding is None:
                continue
            scheme = self.instance_method_scheme(info, method)
            impl = ast.simple_bind(
                method_impl_name(info.class_name, info.tycon_name, method.name),
                binding.simple_rhs, pos=binding.pos)
            self.check_explicit(impl, scheme, kind="impl")
        # 2. The dictionary constructor (section 4): a definition
        #    binding the dictionary value; overloaded dictionaries take
        #    their subdictionaries as parameters, capturing them by
        #    partial application of the method implementations.
        self.output.append(self.build_dictionary_binding(info, class_info,
                                                         bound))

    def build_dictionary_binding(self, info: InstanceInfo, class_info,
                                 bound: Dict[str, ast.FunBind]
                                 ) -> CompiledBinding:
        env = self.class_env
        pos = info.pos
        sub_params = [f"d$i{i + 1}" for i in range(info.n_dict_params)]
        # Parameter environment for resolving the superclass dictionary
        # slots: the instance context variables, as pseudo type vars
        # with the constructor's argument kinds (all ``*`` before
        # higher-kinded instances; interfaces older than v4 omit the
        # kinds, and every such instance is kind-``*``).
        arg_kinds = list(getattr(info, "head_arg_kinds", None) or [])
        head_vars = [TyVar(arg_kinds[i] if i < len(arg_kinds) else STAR,
                           self.level + 1, "i")
                     for i in range(len(info.context))]
        param_env: Dict[Tuple[str, int], str] = {}
        for (arg_index, cls), name in zip(info.dict_param_preds(), sub_params):
            head_vars[arg_index].context.add(cls)
            param_env[(cls, head_vars[arg_index].id)] = name
        head_ty: Type = self.static.tycon(info.tycon_name)
        for v in head_vars:
            head_ty = TyApp(head_ty, v)

        scope = PlaceholderScope(self.scope)

        def sub_dict_args(target: ast.Expr) -> ast.Expr:
            out = target
            for p in sub_params:
                out = ast.App(out, ast.Var(p, pos=pos), pos=pos)
            return out

        # Defaulted slots reference the dictionary being built.  For a
        # context-free (constant) instance the global dictionary name
        # itself is that reference, which keeps the slot expression a
        # compile-time constant — the specialiser can then chase
        # default-method chains (§9).  Parametrised dictionaries tie a
        # local knot instead.
        this_name = info.dict_name if not sub_params else "dict$this"

        def slot_expr(kind: str, owner: str, name: str) -> ast.Expr:
            if kind == "super":
                ph = ClassPlaceholder(head_ty, pos, class_name=name)
                node = make_placeholder_expr(ph)
                scope.add(ph, node)
                return node
            # method slot; 'owner' is the class that declared it (for
            # the flattened layout it may be a superclass).
            if owner == info.class_name:
                if name in bound:
                    return sub_dict_args(ast.Var(
                        method_impl_name(info.class_name, info.tycon_name,
                                         name), pos=pos))
                method = class_info.method(name)
                if method is not None and method.has_default:
                    return ast.App(
                        ast.Var(default_method_name(info.class_name, name),
                                pos=pos),
                        ast.Var(this_name, pos=pos), pos=pos)
                return ast.App(
                    ast.Var("error", pos=pos),
                    ast.Lit(f"no definition of method {name} in instance "
                            f"{info.class_name} {info.tycon_name}", "string",
                            pos=pos), pos=pos)
            # Flattened layout: an inherited method — take it from the
            # (resolved) superclass dictionary for the head type.
            ph = MethodPlaceholder(head_ty, pos, method_name=name,
                                   class_name=owner)
            node = make_placeholder_expr(ph)
            scope.add(ph, node)
            return node

        with self.unifier.episode():
            slots = [slot_expr(kind, owner, name)
                     for (kind, owner, name) in env.dict_slots(info.class_name)]
            self.resolve_scope(scope, param_env, None)
        if env.uses_bare_dict(info.class_name):
            body: ast.Expr = slots[0]
        else:
            body = ast.TupleExpr(slots, pos=pos)
        # Parametrised dictionaries tie the knot with a (lazy)
        # recursive let; constant ones self-reference by global name.
        if sub_params:
            uses_this = any(this_name in ast.expr_free_vars(s) for s in slots)
            if uses_this:
                body = ast.Let([ast.simple_bind(this_name, body)],
                               ast.Var(this_name, pos=pos), pos=pos)
        if sub_params:
            body = ast.Lam([ast.PVar(p) for p in sub_params], body, pos=pos)
        return CompiledBinding(
            info.dict_name, body, None, list(sub_params), "dict",
            dict_classes=[cls for (_i, cls) in info.dict_param_preds()])

    # ------------------------------------- multi-parameter instances

    def mp_instance_method_scheme(self, info: MPInstanceInfo,
                                  method: MethodInfo) -> Scheme:
        """The method's scheme specialised to a multi-parameter instance
        head: the class's parameters (``TyGen 0 .. arity-1`` in the
        method scheme) are replaced by the instance's head patterns over
        the instance variables, and the instance context becomes the
        leading predicates."""
        arity = len(info.patterns)
        heads: List[Type] = []
        for tycon_name, var_idxs in info.patterns:
            if tycon_name is None:
                heads.append(TyGen(var_idxs[0]))
            else:
                h: Type = self.static.tycon(tycon_name)
                for j in var_idxs:
                    h = TyApp(h, TyGen(j))
                heads.append(h)

        def shift(t: Type) -> Type:
            t = prune(t)
            if isinstance(t, TyGen):
                if t.index < arity:
                    return heads[t.index]
                return TyGen(info.n_vars + t.index - arity)
            if isinstance(t, TyApp):
                return TyApp(shift(t.fn), shift(t.arg))
            return t

        kinds = list(info.var_kinds) + method.scheme.kinds[arity:]
        preds: List[Pred] = []
        for centry in info.context:
            if centry[0] == "sp":
                _, cls, var_idx = centry
                preds.append(Pred(cls, TyGen(var_idx)))
            else:
                _, cls, var_idxs = centry
                preds.append(Pred(cls, types=[TyGen(i) for i in var_idxs]))
        for extra in method.scheme.preds[1:]:
            emp = getattr(extra, "types", None)
            if emp is not None:
                preds.append(Pred(extra.class_name,
                                  types=[shift(t) for t in emp]))
            else:
                preds.append(Pred(extra.class_name, shift(extra.type)))
        return Scheme(kinds, preds, shift(method.scheme.type))

    def compile_mp_instance(self, info: MPInstanceInfo,
                            decl: ast.InstanceDecl) -> None:
        class_info = self.class_env.class_info(info.class_name)
        bound = {b.name: b for b in decl.bindings}
        head_key = mp_head_key(info.patterns)
        for method in class_info.methods:
            binding = bound.get(method.name)
            if binding is None:
                continue
            scheme = self.mp_instance_method_scheme(info, method)
            impl = ast.simple_bind(
                mp_method_impl_name(info.class_name, head_key, method.name),
                binding.simple_rhs, pos=binding.pos)
            self.check_explicit(impl, scheme, kind="impl")
        self.output.append(self.build_mp_dictionary_binding(info, class_info,
                                                            bound))

    def build_mp_dictionary_binding(self, info: MPInstanceInfo, class_info,
                                    bound: Dict[str, ast.FunBind]
                                    ) -> CompiledBinding:
        """The dictionary constructor for a multi-parameter instance.

        Simpler than :meth:`build_dictionary_binding`: multi-parameter
        classes have no superclasses, so every slot is a method of the
        class itself — a bound implementation, a default, or an error
        thunk.  No placeholder resolution is needed.
        """
        pos = info.pos
        head_key = mp_head_key(info.patterns)
        sub_params = [f"d$i{i + 1}" for i in range(info.n_dict_params)]
        this_name = info.dict_name if not sub_params else "dict$this"

        def sub_dict_args(target: ast.Expr) -> ast.Expr:
            out = target
            for p in sub_params:
                out = ast.App(out, ast.Var(p, pos=pos), pos=pos)
            return out

        slots: List[ast.Expr] = []
        for (kind, owner, name) in self.class_env.dict_slots(info.class_name):
            assert kind != "super" and owner == info.class_name, \
                "multi-parameter classes have no superclasses"
            if name in bound:
                slots.append(sub_dict_args(ast.Var(
                    mp_method_impl_name(info.class_name, head_key, name),
                    pos=pos)))
                continue
            method = class_info.method(name)
            if method is not None and method.has_default:
                slots.append(ast.App(
                    ast.Var(default_method_name(info.class_name, name),
                            pos=pos),
                    ast.Var(this_name, pos=pos), pos=pos))
                continue
            slots.append(ast.App(
                ast.Var("error", pos=pos),
                ast.Lit(f"no definition of method {name} in instance "
                        f"{info.class_name} {head_key}", "string",
                        pos=pos), pos=pos))
        if self.class_env.uses_bare_dict(info.class_name):
            body: ast.Expr = slots[0]
        else:
            body = ast.TupleExpr(slots, pos=pos)
        if sub_params:
            uses_this = any(this_name in ast.expr_free_vars(s) for s in slots)
            if uses_this:
                body = ast.Let([ast.simple_bind(this_name, body)],
                               ast.Var(this_name, pos=pos), pos=pos)
            body = ast.Lam([ast.PVar(p) for p in sub_params], body, pos=pos)
        return CompiledBinding(
            info.dict_name, body, None, list(sub_params), "dict",
            dict_classes=[centry[1] for centry in info.context])
