"""Static analysis (section 4 of the paper).

    "Before type checking, the compiler must assemble the components of
    the static type environment.  The data type, class, and instance
    declarations ... must be collected and processed."

This module builds:

* the kind environment (kind inference over data declarations);
* the data constructor environment (constructor schemes);
* the class environment (:mod:`repro.core.classes`): method schemes,
  superclasses, defaults, and the instance 4-tuples with their
  per-argument contexts;
* names for the generated artefacts: the dictionary variable of every
  instance and the implementation function of every instance method.

It also expands ``deriving`` clauses into ordinary instance
declarations (via :mod:`repro.core.deriving`) — the paper notes that
derived instances are a convenience "not itself part of the underlying
type system", and indeed after this pass they are indistinguishable
from user-written instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import KindError, SourcePos, StaticError
from repro.core.classes import (ClassEnv, ClassInfo, InstanceInfo, MethodInfo,
                                MethodSet, MPInstanceInfo)
from repro.core.kinds import (
    STAR,
    KFun,
    Kind,
    KindEnv,
    KVar,
    default_kind,
    drop_kind_args,
    kind_arity,
    kind_eq,
    kind_str,
    kfun,
    kvar_scope,
    unify_kinds,
)
from repro.core.types import (
    LIST_CON,
    Pred,
    Scheme,
    TyApp,
    TyCon,
    TyGen,
    Type,
    fn_types,
)
from repro.lang import ast
from repro.util.names import (dict_var_name, method_impl_name,
                              mp_dict_var_name, mp_head_key)


@dataclass
class DataConInfo:
    """A data constructor: its scheme, arity and owning type."""

    name: str
    scheme: Scheme
    arity: int
    tycon_name: str
    tag: int  # position within the data declaration (drives derived Ord)


@dataclass
class DataTypeInfo:
    name: str
    kind: Kind
    n_params: int
    constructors: List[DataConInfo] = field(default_factory=list)
    pos: Optional[SourcePos] = None


class StaticEnv:
    """The assembled static type environment."""

    def __init__(self, class_env: Optional[ClassEnv] = None) -> None:
        self.kind_env = KindEnv()
        self.class_env = class_env if class_env is not None else ClassEnv()
        self.data_types: Dict[str, DataTypeInfo] = {}
        self.data_cons: Dict[str, DataConInfo] = {}
        self._tycons: Dict[str, TyCon] = {}
        #: instance bodies awaiting compilation: (InstanceInfo, decl AST)
        self.instance_bodies: List[Tuple[InstanceInfo, ast.InstanceDecl]] = []
        #: multi-parameter instance bodies awaiting compilation
        self.mp_instance_bodies: List[
            Tuple[MPInstanceInfo, ast.InstanceDecl]] = []
        #: class declaration ASTs (for default method compilation)
        self.class_bodies: Dict[str, ast.ClassDecl] = {}
        #: type synonyms: name -> (parameters, right-hand side syntax)
        self.synonyms: Dict[str, Tuple[List[str], ast.SType]] = {}
        self._install_builtins()

    # ------------------------------------------------------------ builtins

    def _install_builtins(self) -> None:
        for name, kind in (
            ("Int", STAR),
            ("Float", STAR),
            ("Char", STAR),
            ("()", STAR),
            ("[]", KFun(STAR, STAR)),
            ("->", kfun(STAR, STAR, STAR)),
        ):
            self.kind_env.bind(name, kind)
            self._tycons[name] = TyCon(name, kind)
        for name in ("Int", "Float", "Char", "()"):
            self.data_types[name] = DataTypeInfo(name, STAR, 0)
        # The list type and its constructors are built in because their
        # syntax ([] and :) cannot be written in a data declaration.
        list_info = DataTypeInfo("[]", KFun(STAR, STAR), 1)
        elem = TyGen(0)
        list_ty = TyApp(LIST_CON, elem)
        nil = DataConInfo("[]", Scheme([STAR], [], list_ty), 0, "[]", 0)
        cons = DataConInfo(
            ":", Scheme([STAR], [], fn_types([elem, list_ty], list_ty)),
            2, "[]", 1)
        list_info.constructors = [nil, cons]
        self.data_types["[]"] = list_info
        self.data_cons["[]"] = nil
        self.data_cons[":"] = cons
        # Unit.
        unit = DataConInfo("()", Scheme([], [], self.tycon("()")), 0, "()", 0)
        self.data_types["()"].constructors = [unit]
        self.data_cons["()"] = unit

    # ------------------------------------------------------------- lookups

    def tycon(self, name: str) -> TyCon:
        """The canonical TyCon for *name* (creates tuple constructors on
        demand)."""
        existing = self._tycons.get(name)
        if existing is not None:
            return existing
        if name.startswith("(,"):
            arity = name.count(",") + 1
            con = TyCon(name, kfun(*([STAR] * (arity + 1))))
            self._tycons[name] = con
            self.kind_env.bind(name, con.kind)
            if name not in self.data_types:
                self._install_tuple(name, arity)
            return con
        raise StaticError(f"unknown type constructor {name}")

    def _install_tuple(self, name: str, arity: int) -> None:
        info = DataTypeInfo(name, kfun(*([STAR] * (arity + 1))), arity)
        gens: List[Type] = [TyGen(i) for i in range(arity)]
        result: Type = self._tycons[name]
        for g in gens:
            result = TyApp(result, g)
        con = DataConInfo(name, Scheme([STAR] * arity, [], fn_types(gens, result)),
                          arity, name, 0)
        info.constructors = [con]
        self.data_types[name] = info
        self.data_cons[name] = con

    def data_con(self, name: str) -> DataConInfo:
        if name.startswith("(,") and name not in self.data_cons:
            self.tycon(name)
        info = self.data_cons.get(name)
        if info is None:
            raise StaticError(f"unknown data constructor {name}")
        return info

    def data_type(self, name: str) -> DataTypeInfo:
        info = self.data_types.get(name)
        if info is None:
            raise StaticError(f"unknown data type {name}")
        return info


# --------------------------------------------------------------------------
# Syntax -> semantic type conversion (with kind checking)
# --------------------------------------------------------------------------

def expand_synonyms(env: StaticEnv, sty: ast.SType, depth: int = 0) -> ast.SType:
    """Expand type synonym applications everywhere in *sty*.

    Synonyms must be fully applied; cyclic synonyms are caught with a
    depth bound."""
    if depth > 100:
        raise StaticError("type synonym expansion does not terminate "
                          "(cyclic synonym?)", sty.pos)
    # Flatten the application spine.
    args: List[ast.SType] = []
    head = sty
    while isinstance(head, ast.STyApp):
        args.append(head.arg)
        head = head.fn
    args.reverse()
    if isinstance(head, ast.STyCon) and head.name in env.synonyms:
        params, rhs = env.synonyms[head.name]
        if len(args) < len(params):
            raise StaticError(
                f"type synonym {head.name} must be applied to "
                f"{len(params)} argument(s)", sty.pos)
        subst = {p: expand_synonyms(env, a, depth + 1)
                 for p, a in zip(params, args[:len(params)])}
        expanded = _subst_syntax(rhs, subst)
        for extra in args[len(params):]:
            expanded = ast.STyApp(expanded,
                                  expand_synonyms(env, extra, depth + 1),
                                  pos=sty.pos)
        return expand_synonyms(env, expanded, depth + 1)
    out = head
    for a in args:
        # Keep the original node's position: kind errors discovered
        # after expansion must still point into the source.
        out = ast.STyApp(out, expand_synonyms(env, a, depth), pos=sty.pos)
    return out


def _subst_syntax(sty: ast.SType, subst: Dict[str, ast.SType]) -> ast.SType:
    if isinstance(sty, ast.STyVar):
        return subst.get(sty.name, sty)
    if isinstance(sty, ast.STyApp):
        return ast.STyApp(_subst_syntax(sty.fn, subst),
                          _subst_syntax(sty.arg, subst))
    return sty


def convert_type(env: StaticEnv, sty: ast.SType, var_map: Dict[str, Type],
                 var_kinds: Dict[str, Kind],
                 implicit_vars: bool = False,
                 expanded: bool = False) -> Tuple[Type, Kind]:
    """Convert type syntax to a semantic type, checking kinds.

    ``var_map`` maps type-variable names to their semantic
    representation (usually ``TyGen`` nodes); when *implicit_vars* is
    set, unknown variables are added automatically (signature
    quantification), otherwise they are an error (data declarations,
    where the variables come from the declaration head).
    """
    if not expanded:
        sty = expand_synonyms(env, sty)
    if isinstance(sty, ast.STyVar):
        if sty.name not in var_map:
            if not implicit_vars:
                raise StaticError(
                    f"type variable {sty.name} is not in scope", sty.pos)
            var_map[sty.name] = TyGen(len(var_map))
            var_kinds[sty.name] = KVar()
        return var_map[sty.name], var_kinds[sty.name]
    if isinstance(sty, ast.STyCon):
        kind = env.kind_env.lookup(sty.name)
        if kind is None:
            if sty.name.startswith("(,"):
                con = env.tycon(sty.name)
                return con, con.kind
            raise StaticError(f"unknown type constructor {sty.name}", sty.pos)
        return env.tycon(sty.name), kind
    assert isinstance(sty, ast.STyApp)
    fn_ty, fn_kind = convert_type(env, sty.fn, var_map, var_kinds,
                                  implicit_vars, expanded=True)
    arg_ty, arg_kind = convert_type(env, sty.arg, var_map, var_kinds,
                                    implicit_vars, expanded=True)
    result_kind: Kind = KVar()
    unify_kinds(fn_kind, KFun(arg_kind, result_kind), sty.pos)
    return TyApp(fn_ty, arg_ty), result_kind


def convert_signature(env: StaticEnv, sig: ast.SQualType) -> Scheme:
    """Convert a user signature to a :class:`Scheme`.

    All free type variables are implicitly quantified; the predicate
    order is the declared context order — this is what fixes the
    dictionary parameter ordering for explicitly-typed definitions
    (section 8.6).
    """
    var_map: Dict[str, Type] = {}
    var_kinds: Dict[str, Kind] = {}
    with kvar_scope():
        body, body_kind = convert_type(env, sig.type, var_map, var_kinds,
                                       implicit_vars=True)
        unify_kinds(body_kind, STAR, sig.pos)
        preds: List[Pred] = []
        for pred in sig.context:
            ptypes = pred.all_types
            for pt in ptypes:
                if not isinstance(pt, ast.STyVar):
                    raise StaticError(
                        f"context {pred.class_name} must constrain a type "
                        f"variable in this system", pred.pos)
            if not env.class_env.is_class(pred.class_name):
                raise StaticError(f"unknown class {pred.class_name}", pred.pos)
            cinfo = env.class_env.classes.get(pred.class_name)
            if cinfo is not None and cinfo.arity != len(ptypes):
                raise StaticError(
                    f"class {pred.class_name} has {cinfo.arity} parameter(s), "
                    f"but the constraint supplies {len(ptypes)} type(s)",
                    pred.pos)
            # A constrained variable's kind is dictated by the class:
            # ``Eq a`` forces ``a :: *``, ``Functor f`` forces
            # ``f :: * -> *`` (or whatever kind was inferred for the
            # class variable).
            pkinds = cinfo.param_kinds if cinfo is not None \
                else [STAR] * len(ptypes)
            targets: List[Type] = []
            for pt, pkind in zip(ptypes, pkinds):
                name = pt.name
                if name not in var_map:
                    # A context variable not mentioned in the body:
                    # ambiguous, but permitted in Haskell; quantify it
                    # anyway and let use sites trip the ambiguity rule.
                    var_map[name] = TyGen(len(var_map))
                    var_kinds[name] = KVar()
                target = var_map[name]
                assert isinstance(target, TyGen)
                unify_kinds(var_kinds[name], pkind, pred.pos)
                targets.append(target)
            if len(targets) > 1:
                preds.append(Pred(pred.class_name, types=targets))
            else:
                preds.append(Pred(pred.class_name, targets[0]))
        kinds = [default_kind(var_kinds[name])
                 for name in sorted(var_map, key=lambda n: var_map[n].index)]  # type: ignore[union-attr]
    return Scheme(kinds, preds, body)


# --------------------------------------------------------------------------
# Declaration processing
# --------------------------------------------------------------------------

def analyze_program(program: ast.Program,
                    env: Optional[StaticEnv] = None,
                    class_env: Optional[ClassEnv] = None) -> StaticEnv:
    """Process the static declarations of *program* into *env*.

    Expands ``deriving`` clauses in place (the generated instance
    declarations are appended to ``program.decls``).
    """
    if env is None:
        env = StaticEnv(class_env)
    for decl in program.decls:
        if isinstance(decl, ast.TypeSynDecl):
            if decl.name in env.synonyms or decl.name in env.data_types:
                raise StaticError(f"type {decl.name} declared twice", decl.pos)
            env.synonyms[decl.name] = (list(decl.tyvars), decl.rhs)
    _process_data_decls(env, program.data_decls())
    # Deriving expansion needs constructor information, so it happens
    # after data declarations but before instance processing.
    from repro.core.deriving import derive_instances  # cycle avoidance
    derived: List[ast.InstanceDecl] = []
    for decl in program.data_decls():
        derived.extend(derive_instances(env, decl))
    program.decls.extend(derived)
    for decl in program.class_decls():
        _process_class_decl(env, decl)
    for decl in program.instance_decls():
        _process_instance_decl(env, decl)
    for decl in program.decls:
        if isinstance(decl, ast.DefaultDecl):
            _process_default_decl(env, decl)
    return env


def _process_data_decls(env: StaticEnv, decls: List[ast.DataDecl]) -> None:
    """Kind inference and constructor schemes for a set of (possibly
    mutually recursive) data declarations."""
    with kvar_scope():
        _process_data_decls_scoped(env, decls)


def _process_data_decls_scoped(env: StaticEnv,
                               decls: List[ast.DataDecl]) -> None:
    # Pass 1: provisional kinds with fresh variables.
    pending: List[Tuple[ast.DataDecl, List[Kind], Kind]] = []
    seen_names: set = set()
    for decl in decls:
        if decl.name in env.data_types or decl.name in env.synonyms \
                or decl.name in seen_names:
            raise StaticError(f"data type {decl.name} declared twice", decl.pos)
        seen_names.add(decl.name)
        if len(set(decl.tyvars)) != len(decl.tyvars):
            raise StaticError(
                f"repeated type variable in data declaration {decl.name}",
                decl.pos)
        param_kinds: List[Kind] = [KVar() for _ in decl.tyvars]
        decl_kind: Kind = STAR
        for k in reversed(param_kinds):
            decl_kind = KFun(k, decl_kind)
        env.kind_env.bind(decl.name, decl_kind)
        env._tycons[decl.name] = TyCon(decl.name, decl_kind)
        pending.append((decl, param_kinds, decl_kind))
    # Pass 2: walk constructor argument types, unifying kinds.
    for decl, param_kinds, _decl_kind in pending:
        var_map: Dict[str, Type] = {
            name: TyGen(i) for i, name in enumerate(decl.tyvars)}
        var_kinds: Dict[str, Kind] = dict(zip(decl.tyvars, param_kinds))
        result: Type = env.tycon(decl.name)
        for name in decl.tyvars:
            result = TyApp(result, var_map[name])
        info = DataTypeInfo(decl.name, env.kind_env.lookup(decl.name) or STAR,
                            len(decl.tyvars), pos=decl.pos)
        for tag, condef in enumerate(decl.constructors):
            if condef.name in env.data_cons:
                raise StaticError(
                    f"data constructor {condef.name} declared twice",
                    condef.pos)
            arg_types: List[Type] = []
            for sty in condef.arg_types:
                ty, kind = convert_type(env, sty, var_map, var_kinds)
                unify_kinds(kind, STAR, condef.pos)
                arg_types.append(ty)
            scheme = Scheme([STAR] * len(decl.tyvars), [],
                            fn_types(arg_types, result))
            con = DataConInfo(condef.name, scheme, len(arg_types),
                              decl.name, tag)
            info.constructors.append(con)
            env.data_cons[condef.name] = con
        env.data_types[decl.name] = info
    # Pass 3: default unconstrained kind variables to * and fix kinds.
    for decl, param_kinds, decl_kind in pending:
        final = default_kind(decl_kind)
        env.kind_env.bind(decl.name, final)
        env._tycons[decl.name].kind = final
        env.data_types[decl.name].kind = final
        # Constructor schemes keep kind * slots for quantified vars; a
        # higher-kinded parameter would make them wrong, so re-derive.
        fixed_kinds: List[Kind] = [default_kind(k) for k in param_kinds]
        for con in env.data_types[decl.name].constructors:
            con.scheme.kinds[:] = fixed_kinds


def _process_class_decl(env: StaticEnv, decl: ast.ClassDecl) -> None:
    """Process one class declaration, *inferring* the kind of the class
    variable from the method signatures (docs/CLASSES.md).

    A single shared kind variable stands for the class variable across
    every signature; each use site (``f a`` in a method type, a
    superclass constraint, an extra-context constraint) unifies against
    it.  Whatever is still unconstrained after the last signature
    defaults to ``*`` — so ``class Eq a`` keeps its paper-era kind and
    ``class Functor f where fmap :: (a -> b) -> f a -> f b`` comes out
    at ``* -> *`` with no annotation syntax.  Multi-parameter classes
    keep every parameter at ``*`` (docs/SOLVER.md)."""
    tyvars = decl.all_tyvars
    methods: List[MethodInfo] = []
    default_names = {d.name for d in decl.defaults}
    index = 0
    with kvar_scope():
        if len(tyvars) == 1:
            param_kinds: List[Kind] = [KVar()]
        else:
            param_kinds = [STAR for _ in tyvars]
        # A superclass constraint ``Sup a`` in the head forces the class
        # variable to the superclass's (already inferred) kind.
        for sup in decl.superclasses:
            sinfo = env.class_env.classes.get(sup)
            if sinfo is not None and sinfo.arity == 1 and len(tyvars) == 1:
                unify_kinds(param_kinds[0], sinfo.tyvar_kind, decl.pos)
        schemes: List[Scheme] = []
        for sig in decl.signatures:
            scheme_template = _method_scheme(env, decl, sig, param_kinds)
            schemes.append(scheme_template)
            for name in sig.names:
                methods.append(MethodInfo(
                    name=name,
                    scheme=scheme_template,
                    index=index,
                    has_default=name in default_names,
                ))
                index += 1
        # Defaulting must wait until *every* signature has constrained
        # the shared kind variables: a later method may refine the kind
        # an earlier method left open.  Zonk each scheme in place.
        for scheme in schemes:
            scheme.kinds[:] = [default_kind(k) for k in scheme.kinds]
        tyvar_kind = default_kind(param_kinds[0]) if len(tyvars) == 1 \
            else STAR
    for d in decl.defaults:
        if d.name not in {m.name for m in methods}:
            raise StaticError(
                f"default binding for {d.name} which is not a method of "
                f"class {decl.name}", d.pos)
    info = ClassInfo(decl.name, list(decl.superclasses),
                     tyvar_kind=tyvar_kind, methods=methods, pos=decl.pos,
                     arity=len(tyvars))
    env.class_env.add_class(info)
    env.class_bodies[decl.name] = decl


def _method_scheme(env: StaticEnv, decl: ast.ClassDecl,
                   sig: ast.TypeSig, param_kinds: List[Kind]) -> Scheme:
    """The full scheme of a method: quantified variables 0..arity-1 are
    the class variables, predicate 0 is the class constraint, and any
    extra context declared on the method (section 8.5) follows.

    *param_kinds* carries the (still inferring) kinds of the class
    variables, shared across the class's signatures; the returned
    scheme's kinds are **not yet zonked** — the caller defaults them
    once every signature has been seen."""
    tyvars = decl.all_tyvars
    var_map: Dict[str, Type] = {name: TyGen(i)
                                for i, name in enumerate(tyvars)}
    var_kinds: Dict[str, Kind] = dict(zip(tyvars, param_kinds))
    body, body_kind = convert_type(env, sig.signature.type, var_map,
                                   var_kinds, implicit_vars=True)
    unify_kinds(body_kind, STAR, sig.pos)
    if len(tyvars) > 1:
        preds: List[Pred] = [Pred(decl.name,
                                  types=[TyGen(i)
                                         for i in range(len(tyvars))])]
    else:
        preds = [Pred(decl.name, TyGen(0))]
    for pred in sig.signature.context:
        ptypes = pred.all_types
        for pt in ptypes:
            if not isinstance(pt, ast.STyVar):
                raise StaticError(
                    "method contexts must constrain type variables", pred.pos)
        if len(ptypes) == 1 and ptypes[0].name in tyvars:
            raise StaticError(
                f"method signature must not re-constrain the class "
                f"variable {ptypes[0].name}", pred.pos)
        pinfo = env.class_env.classes.get(pred.class_name)
        pkinds = pinfo.param_kinds if pinfo is not None \
            else [STAR] * len(ptypes)
        targets: List[Type] = []
        for pt, pkind in zip(ptypes, pkinds):
            if pt.name not in var_map:
                var_map[pt.name] = TyGen(len(var_map))
                var_kinds[pt.name] = KVar()
            target = var_map[pt.name]
            assert isinstance(target, TyGen)
            unify_kinds(var_kinds[pt.name], pkind, pred.pos)
            targets.append(target)
        if len(targets) > 1:
            preds.append(Pred(pred.class_name, types=targets))
        else:
            preds.append(Pred(pred.class_name, targets[0]))
    mentioned = _stype_vars(sig.signature.type)
    for tv in tyvars:
        if tv not in mentioned:
            raise StaticError(
                f"method type must mention the class variable {tv}",
                sig.pos)
    # Raw (possibly KVar-containing) kinds: the class-level fixup pass
    # zonks them after the whole declaration has been inferred.
    kinds = [var_kinds[name]
             for name in sorted(var_map, key=lambda n: var_map[n].index)]  # type: ignore[union-attr]
    return Scheme(kinds, preds, body)


def _stype_vars(sty: ast.SType) -> List[str]:
    out: List[str] = []

    def go(t: ast.SType) -> None:
        if isinstance(t, ast.STyVar):
            if t.name not in out:
                out.append(t.name)
        elif isinstance(t, ast.STyApp):
            go(t.fn)
            go(t.arg)

    go(sty)
    return out


def decompose_instance_head(head: ast.SType) -> Tuple[str, List[str]]:
    """``C (T a1 ... an)``: return the head constructor name and its
    argument variables, enforcing the Haskell 1.2 instance form (all
    arguments distinct type variables)."""
    args: List[ast.SType] = []
    sty = head
    while isinstance(sty, ast.STyApp):
        args.append(sty.arg)
        sty = sty.fn
    args.reverse()
    if not isinstance(sty, ast.STyCon):
        raise StaticError(
            "instance head must be a type constructor applied to type "
            "variables", head.pos)
    var_names: List[str] = []
    for arg in args:
        if not isinstance(arg, ast.STyVar):
            raise StaticError(
                "instance head arguments must be plain type variables "
                "(e.g. 'instance Eq a => Eq [a]')", head.pos)
        if arg.name in var_names:
            raise StaticError(
                "instance head arguments must be distinct type variables",
                head.pos)
        var_names.append(arg.name)
    return sty.name, var_names


def _process_instance_decl(env: StaticEnv, decl: ast.InstanceDecl) -> None:
    cinfo = env.class_env.classes.get(decl.class_name)
    if decl.heads is not None or (cinfo is not None and cinfo.arity > 1):
        _process_mp_instance_decl(env, decl)
        return
    tycon_name, var_names = decompose_instance_head(decl.head)
    kind = env.kind_env.lookup(tycon_name)
    if kind is None and tycon_name.startswith("(,"):
        kind = env.tycon(tycon_name).kind  # tuple constructors on demand
    if kind is None:
        raise StaticError(f"unknown type constructor {tycon_name}", decl.pos)
    class_info = env.class_env.class_info(decl.class_name)
    # Kind check (docs/CLASSES.md): the head may be a *partial*
    # application — ``instance Functor (Either a)`` applies the
    # ``* -> * -> *`` constructor to one argument, leaving ``* -> *``,
    # which must be exactly the class variable's inferred kind.
    want = class_info.param_kinds[0]
    if kind_eq(want, STAR):
        # A kind-* class: the head must be a full application (the
        # paper's rule, with its original diagnostic).
        if kind_arity(kind) != len(var_names):
            raise KindError(
                f"instance head {tycon_name} expects {kind_arity(kind)} "
                f"type argument(s), got {len(var_names)}", decl.pos)
    else:
        remaining = drop_kind_args(kind, len(var_names))
        if remaining is None:
            raise KindError(
                f"instance head {tycon_name} expects at most "
                f"{kind_arity(kind)} type argument(s), got "
                f"{len(var_names)}", decl.pos)
        if not kind_eq(remaining, want):
            head_txt = " ".join([tycon_name] + var_names)
            raise KindError(
                f"instance head {head_txt} has kind {kind_str(remaining)}, "
                f"but class {decl.class_name} expects instances at kind "
                f"{kind_str(want)}", decl.pos)
    # Kind of each (applied) head variable: the leading argument kinds
    # of the constructor.
    head_arg_kinds: List[Kind] = []
    k: Kind = kind
    for _ in var_names:
        assert isinstance(k, KFun)
        head_arg_kinds.append(k.arg)
        k = k.res
    # Per-argument context: the paper's representation.
    per_arg: List[List[str]] = [[] for _ in var_names]
    for pred in decl.context:
        if not isinstance(pred.type, ast.STyVar) or pred.type.name not in var_names:
            raise StaticError(
                "instance context must constrain the head's type variables",
                pred.pos)
        if not env.class_env.is_class(pred.class_name):
            raise StaticError(f"unknown class {pred.class_name}", pred.pos)
        arg_index = var_names.index(pred.type.name)
        pinfo = env.class_env.classes.get(pred.class_name)
        if pinfo is not None and pinfo.arity == 1 \
                and not kind_eq(head_arg_kinds[arg_index],
                                pinfo.param_kinds[0]):
            raise KindError(
                f"instance context {pred.class_name} {pred.type.name} "
                f"constrains a variable of kind "
                f"{kind_str(head_arg_kinds[arg_index])}, but class "
                f"{pred.class_name} expects kind "
                f"{kind_str(pinfo.param_kinds[0])}", pred.pos or decl.pos)
        slot = per_arg[arg_index]
        if pred.class_name in slot:
            raise StaticError(
                f"duplicate constraint {pred.class_name} {pred.type.name} "
                f"in instance context", pred.pos)
        slot.append(pred.class_name)
    method_names = {m.name for m in class_info.methods}
    for binding in decl.bindings:
        if binding.name not in method_names:
            raise StaticError(
                f"'{binding.name}' is not a method of class "
                f"{decl.class_name}", binding.pos)
    seen_bindings = set()
    for binding in decl.bindings:
        if binding.name in seen_bindings:
            raise StaticError(
                f"method {binding.name} bound twice in instance", binding.pos)
        seen_bindings.add(binding.name)
    info = InstanceInfo(
        tycon_name=tycon_name,
        class_name=decl.class_name,
        dict_name=dict_var_name(decl.class_name, tycon_name),
        context=per_arg,
        pos=decl.pos,
        defined_methods=MethodSet(b.name for b in decl.bindings),
        head_arg_kinds=head_arg_kinds,
    )
    env.class_env.add_instance(info)
    env.instance_bodies.append((info, decl))


def _process_mp_instance_decl(env: StaticEnv,
                              decl: ast.InstanceDecl) -> None:
    """Process ``instance ctx => C p1 ... pn`` for a multi-parameter
    class: each head pattern is a bare type variable or a depth-1
    constructor application over variables, with the variables distinct
    across the *whole* head (so matching is pure binding, never
    unification).  The CHR confluence/termination checks run before the
    instance is registered."""
    class_info = env.class_env.class_info(decl.class_name)
    heads = decl.all_heads
    if class_info.arity != len(heads):
        raise StaticError(
            f"class {decl.class_name} has {class_info.arity} parameter(s), "
            f"but the instance head supplies {len(heads)} type(s)", decl.pos)
    var_names: List[str] = []
    var_kinds: List[Kind] = []
    patterns: List[Tuple[Optional[str], Tuple[int, ...]]] = []
    for head in heads:
        if isinstance(head, ast.STyVar):
            if head.name in var_names:
                raise StaticError(
                    "instance head variables must be distinct across the "
                    "whole head", head.pos or decl.pos)
            var_names.append(head.name)
            var_kinds.append(STAR)
            patterns.append((None, (len(var_names) - 1,)))
            continue
        args: List[ast.SType] = []
        sty = head
        while isinstance(sty, ast.STyApp):
            args.append(sty.arg)
            sty = sty.fn
        args.reverse()
        if not isinstance(sty, ast.STyCon):
            raise StaticError(
                "instance head must be a type constructor applied to type "
                "variables", head.pos or decl.pos)
        kind = env.kind_env.lookup(sty.name)
        if kind is None and sty.name.startswith("(,"):
            kind = env.tycon(sty.name).kind
        if kind is None:
            raise StaticError(f"unknown type constructor {sty.name}",
                              head.pos or decl.pos)
        if kind_arity(kind) != len(args):
            raise KindError(
                f"instance head {sty.name} expects {kind_arity(kind)} type "
                f"argument(s), got {len(args)}", decl.pos)
        arg_kinds: List[Kind] = []
        k = kind
        while isinstance(k, KFun):
            arg_kinds.append(k.arg)
            k = k.res
        idxs: List[int] = []
        for arg, ak in zip(args, arg_kinds):
            if not isinstance(arg, ast.STyVar):
                raise StaticError(
                    "instance head arguments must be plain type variables "
                    "(e.g. 'instance Convert a b => Convert [a] [b]')",
                    head.pos or decl.pos)
            if arg.name in var_names:
                raise StaticError(
                    "instance head variables must be distinct across the "
                    "whole head", head.pos or decl.pos)
            var_names.append(arg.name)
            var_kinds.append(default_kind(ak))
            idxs.append(len(var_names) - 1)
        patterns.append((sty.name, tuple(idxs)))
    context: List[Tuple] = []
    seen_context: set = set()
    for pred in decl.context:
        if not env.class_env.is_class(pred.class_name):
            raise StaticError(f"unknown class {pred.class_name}", pred.pos)
        ptypes = pred.all_types
        pinfo = env.class_env.classes.get(pred.class_name)
        if pinfo is not None and pinfo.arity != len(ptypes):
            raise StaticError(
                f"class {pred.class_name} has {pinfo.arity} parameter(s), "
                f"but the constraint supplies {len(ptypes)} type(s)",
                pred.pos)
        idxs = []
        for pt in ptypes:
            if not isinstance(pt, ast.STyVar) or pt.name not in var_names:
                raise StaticError(
                    "instance context must constrain the head's type "
                    "variables", pred.pos)
            idxs.append(var_names.index(pt.name))
        key = (pred.class_name, tuple(idxs))
        if key in seen_context:
            raise StaticError(
                f"duplicate constraint {pred.class_name} in instance "
                f"context", pred.pos)
        seen_context.add(key)
        if len(idxs) > 1:
            context.append(("mp", pred.class_name, tuple(idxs)))
        else:
            context.append(("sp", pred.class_name, idxs[0]))
    method_names = {m.name for m in class_info.methods}
    seen_bindings: set = set()
    for binding in decl.bindings:
        if binding.name not in method_names:
            raise StaticError(
                f"'{binding.name}' is not a method of class "
                f"{decl.class_name}", binding.pos)
        if binding.name in seen_bindings:
            raise StaticError(
                f"method {binding.name} bound twice in instance",
                binding.pos)
        seen_bindings.add(binding.name)
    info = MPInstanceInfo(
        class_name=decl.class_name,
        patterns=patterns,
        n_vars=len(var_names),
        var_kinds=var_kinds,
        context=context,
        dict_name=mp_dict_var_name(decl.class_name, mp_head_key(patterns)),
        pos=decl.pos,
        defined_methods=MethodSet(b.name for b in decl.bindings),
    )
    from repro.solver.rules import check_mp_instance  # cycle avoidance
    check_mp_instance(env.class_env, info)
    env.class_env.add_mp_instance(info)
    env.mp_instance_bodies.append((info, decl))


def _process_default_decl(env: StaticEnv, decl: ast.DefaultDecl) -> None:
    names: List[str] = []
    for sty in decl.types:
        if not isinstance(sty, ast.STyCon):
            raise StaticError(
                "default declaration must list type constructors", decl.pos)
        names.append(sty.name)
    env.class_env.default_types = names


def impl_name_for(info: InstanceInfo, method: str) -> str:
    return method_impl_name(info.class_name, info.tycon_name, method)
