"""Unification with context propagation, context reduction and
constraint provenance.

This is the paper's section 5, implemented to mirror its pseudocode::

    instantiateTyvar (tyvar, type)
        tyvar.value := type
        propagateClasses (tyvar.context, type)

    propagateClasses (classes, type)
        if tyvar(type) then type.context := union(classes, type.context)
        else for each c in classes
            propagateClassTycon (c, type)

    propagateClassTycon (class, type)
        s = findInstanceContext (type.tycon, class)
        for each classSet in s, typeArg in tycon.args
            propagateClasses (classSet, typeArg)

plus the refinements of sections 8.1 (superclass compaction when adding
constraints to a context) and 8.6 (read-only type variables, which may
be neither instantiated nor given a larger context — violating either
raises :class:`SignatureError` because the program demands more than the
user's signature allows).

The :class:`Unifier` counts unifications and context-reduction steps so
that experiment E9 ("a minor increase in the cost of unification",
section 9) can be measured directly.

Provenance (see docs/SERVICE.md, "Multi-location diagnostics")
--------------------------------------------------------------

Every top-level ``unify`` call carries an :class:`Origin` — the source
span that generated the constraint plus the *reason* it exists
(``application``, ``annotation``, ``pattern``, ``defaulting``, ...).
Inside an inference *episode* (:meth:`Unifier.episode`) the unifier:

* logs each constraint as it arrives;
* records every destructive type-variable update on a mutation trail
  (see ``repro.core.types.set_trail``) so the episode can be undone;
* on a :class:`TypeCheckError`, rolls the substitution back and runs a
  deletion-based minimization over the logged constraint set — replay a
  candidate subset, check it still fails, undo, repeat — producing a
  minimal unsatisfiable core in the style of Stuckey/Sulzmann/Wazny's
  type-error diagnosis; the core's origins become the error's
  ``positions`` list.

The rollback also means a *failed* episode leaves the inferencer's
type state exactly as it found it — which is what lets a long-lived
compile service run inference on a shared forked inferencer without a
failed request poisoning later ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.errors import (
    OccursCheckError,
    Provenance,
    ResourceLimitError,
    SignatureError,
    SourcePos,
    TypeCheckError,
    UnificationError,
)
from repro.limits import DEFAULT_TYPE_DEPTH
from repro.core.classes import ClassEnv
from repro.core.types import (
    TyApp,
    TyCon,
    TyVar,
    Type,
    adjust_levels,
    occurs_in,
    prune,
    set_trail,
    spine,
    type_str,
    undo_trail,
)

#: Default for constraint-set minimization: sets larger than this are
#: not minimized (deletion-based minimization is quadratic in replays);
#: the failing constraint's own origin is reported instead.  Per-
#: compilation configurable as ``Options.provenance_minimize_cap``.
DEFAULT_MINIMIZE_CAP = 300


@dataclass(frozen=True)
class Origin:
    """Where a constraint came from: a source span plus the reason the
    inferencer generated it."""

    pos: Optional[SourcePos]
    reason: str = "unification"


class Constraint:
    """One logged top-level constraint, replayable for minimization."""

    __slots__ = ("t1", "t2", "origin")

    def __init__(self, t1: Type, t2: Type, origin: Origin) -> None:
        self.t1 = t1
        self.t2 = t2
        self.origin = origin

    def __repr__(self) -> str:
        return (f"Constraint({type_str(self.t1)} ~ {type_str(self.t2)}, "
                f"{self.origin.reason})")


class Unifier:
    """Unification engine bound to one class environment."""

    def __init__(self, class_env: ClassEnv,
                 max_depth: int = DEFAULT_TYPE_DEPTH,
                 provenance: bool = True,
                 solver=None,
                 minimize_cap: int = DEFAULT_MINIMIZE_CAP) -> None:
        self.class_env = class_env
        self.max_depth = max_depth
        if solver is None:
            from repro.solver import ReduceSolver
            solver = ReduceSolver()
        #: the ConstraintSolver behind propagate_classes (repro.solver)
        self.solver = solver
        #: minimization budget (Options.provenance_minimize_cap)
        self.minimize_cap = minimize_cap
        #: how often a type error's constraint set exceeded the cap and
        #: skipped minimization (the provenance.minimize-capped counter)
        self.minimize_capped_count = 0
        self.unify_count = 0
        self.context_reduction_count = 0
        self.constraint_propagations = 0
        #: constraint provenance + episode rollback on/off
        #: (options.constraint_provenance)
        self.provenance = provenance
        #: mutation trail; a list only while inside an episode
        self._trail: Optional[list] = None
        #: constraints logged by the episodes currently on the stack
        self._log: List[Constraint] = []
        self._episode_depth = 0
        #: True while replaying constraints for minimization (suppresses
        #: logging and failing-constraint capture)
        self._minimizing = False
        #: the constraint whose replay raised, when known
        self._failing: Optional[Constraint] = None
        #: last real span seen at a public entry point — the fallback
        #: for callers that pass pos=None, so unify-path errors always
        #: carry *some* position
        self._nearest_pos: Optional[SourcePos] = None

    # ----------------------------------------------------------- episodes

    @contextmanager
    def episode(self) -> Iterator[None]:
        """Run one inference unit with provenance tracking.

        On a :class:`TypeCheckError` the episode's constraint set is
        minimized into the error's ``positions``, then every type-
        variable mutation the episode made is undone and its log
        truncated; on success (outermost exit) the trail and log are
        simply dropped.  Episodes nest: an inner failure explains and
        rolls back its own slice, and the outer episode then rolls back
        the rest without re-explaining (``_explained`` guard).
        """
        if not self.provenance:
            yield
            return
        if self._episode_depth == 0:
            self._trail = []
            # Positions from a previous unit must not leak into this
            # one's nearest-span fallback (a long-lived service checks
            # many unrelated programs on one forked inferencer).
            self._nearest_pos = None
        self._episode_depth += 1
        trail = self._trail
        assert trail is not None
        trail_mark = len(trail)
        log_mark = len(self._log)
        prev = set_trail(trail)
        try:
            yield
        except TypeCheckError as exc:
            if not getattr(exc, "_explained", False):
                exc._explained = True
                self._explain(exc, trail_mark, log_mark)
            undo_trail(trail, trail_mark)
            del self._log[log_mark:]
            raise
        except Exception:
            # Non-type errors (resource budgets, static errors raised
            # mid-inference) get no constraint analysis, but the
            # episode's substitutions are still rolled back so a shared
            # inferencer is not left half-mutated.
            undo_trail(trail, trail_mark)
            del self._log[log_mark:]
            raise
        finally:
            set_trail(prev)
            self._episode_depth -= 1
            if self._episode_depth == 0:
                self._trail = None
                self._log.clear()
                self._failing = None

    # ------------------------------------------------------------- unify

    def unify(self, t1: Type, t2: Type, pos: Optional[SourcePos] = None,
              reason: str = "unification") -> None:
        """Make *t1* and *t2* equal, or raise.

        Structural decomposition runs on an explicit worklist (one pop
        per pair, preserving the recursive version's depth-first order
        and ``unify_count``), so arbitrarily deep types cannot overflow
        the Python stack; the worklist itself is budgeted by
        ``max_type_depth``.
        """
        if pos is None:
            pos = self._nearest_pos
        else:
            self._nearest_pos = pos
        constraint: Optional[Constraint] = None
        if self._trail is not None and not self._minimizing:
            constraint = Constraint(t1, t2, Origin(pos, reason))
            self._log.append(constraint)
        try:
            self._unify(t1, t2, pos)
        except TypeCheckError:
            if constraint is not None and self._failing is None:
                self._failing = constraint
            raise

    def try_unify(self, t1: Type, t2: Type, pos: Optional[SourcePos] = None,
                  reason: str = "defaulting") -> bool:
        """Attempt a unification; True on success.

        With a trail active (inside an episode) a failed attempt is
        rolled back completely and its constraint dropped from the log,
        so speculation — defaulting tries each candidate type in turn —
        neither leaves partial substitutions behind nor plants a
        constraint that would misdirect a later minimization."""
        trail = self._trail
        trail_mark = len(trail) if trail is not None else 0
        log_mark = len(self._log)
        failing = self._failing
        try:
            self.unify(t1, t2, pos, reason)
            return True
        except TypeCheckError:
            if trail is not None:
                undo_trail(trail, trail_mark)
            del self._log[log_mark:]
            self._failing = failing
            return False

    def _unify(self, t1: Type, t2: Type, pos: Optional[SourcePos]) -> None:
        max_depth = self.max_depth
        stack = [(t1, t2)]
        while stack:
            if max_depth and len(stack) > max_depth:
                raise ResourceLimitError(
                    f"unification worklist exceeded max_type_depth "
                    f"({max_depth}); raise it for very large types",
                    pos,
                    limit="max_type_depth",
                )
            t1, t2 = stack.pop()
            self.unify_count += 1
            t1 = prune(t1)
            t2 = prune(t2)
            if t1 is t2:
                continue
            if isinstance(t1, TyVar):
                if isinstance(t2, TyVar):
                    self._link_vars(t1, t2, pos)
                    continue
                self.instantiate_tyvar(t1, t2, pos)
                continue
            if isinstance(t2, TyVar):
                self.instantiate_tyvar(t2, t1, pos)
                continue
            if isinstance(t1, TyCon) and isinstance(t2, TyCon):
                if t1.name == t2.name:
                    continue
                raise UnificationError(
                    f"cannot unify {type_str(t1)} with {type_str(t2)}", pos)
            if isinstance(t1, TyApp) and isinstance(t2, TyApp):
                # Push arg first so the fn pair is popped (and unified)
                # first, matching the old recursive order.
                stack.append((t1.arg, t2.arg))
                stack.append((t1.fn, t2.fn))
                continue
            raise UnificationError(
                f"cannot unify {type_str(t1)} with {type_str(t2)}", pos)

    def _link_vars(self, a: TyVar, b: TyVar, pos: Optional[SourcePos]) -> None:
        """Unify two distinct unbound variables."""
        # Prefer to keep a read-only variable as the representative, so
        # that instantiating the other side is what gets checked.
        if a.read_only and b.read_only:
            raise SignatureError(
                "type signature is too general: it requires two signature "
                "variables to be identical", pos)
        if a.read_only:
            a, b = b, a  # instantiate the flexible one (now 'a')
        # a := b ; push a's context onto b, keep the shallower level.
        trail = self._trail
        if b.level > a.level:
            if trail is not None:
                trail.append(("level", b, b.level))
            b.level = a.level
        if trail is not None:
            trail.append(("value", a, a.value))
        a.value = b
        if a.context:
            self.propagate_classes(list(a.context), b, pos)

    def instantiate_tyvar(self, tyvar: TyVar, ty: Type,
                          pos: Optional[SourcePos] = None) -> None:
        """The paper's ``instantiateTyvar`` with occurs/level/read-only
        checks added."""
        if pos is None:
            pos = self._nearest_pos
        if tyvar.read_only:
            raise SignatureError(
                f"type signature is too general: signature variable "
                f"'{tyvar.name}' would have to be {type_str(ty)}", pos)
        if occurs_in(tyvar, ty):
            raise OccursCheckError(
                f"cannot construct the infinite type "
                f"{tyvar.name} = {type_str(ty)}", pos)
        adjust_levels(tyvar.level, ty)
        if self._trail is not None:
            self._trail.append(("value", tyvar, tyvar.value))
        tyvar.value = ty
        if tyvar.context:
            self.propagate_classes(list(tyvar.context), ty, pos)

    # ------------------------------------------------ context propagation

    def propagate_classes(self, classes: Iterable[str], ty: Type,
                          pos: Optional[SourcePos] = None) -> None:
        """The paper's ``propagateClasses`` — dispatched to the
        configured :class:`~repro.solver.ConstraintSolver` (the §5
        recursive reduce path by default, the CHR engine under
        ``--set solver=chr``)."""
        if pos is None:
            pos = self._nearest_pos
        self.solver.solve(self, list(classes), ty, pos)

    def reduce_classes(self, classes: Iterable[str], ty: Type,
                       pos: Optional[SourcePos] = None) -> None:
        """The recursive §5 reduction body (the "reduce" solver)."""
        if pos is None:
            pos = self._nearest_pos
        ty = prune(ty)
        if isinstance(ty, TyVar):
            for cls in classes:
                self.attach_var_constraint(cls, ty, pos)
            return
        for cls in classes:
            self.propagate_class_tycon(cls, ty, pos)

    def attach_var_constraint(self, cls: str, ty: TyVar,
                              pos: Optional[SourcePos]) -> None:
        """Attach one class constraint to an unbound type variable —
        the shared variable case of both solvers.  Read-only variables
        (section 8.6) may not grow their context; flexible ones take
        the constraint with superclass compaction, trail-snapshotted so
        a failing episode rolls it back."""
        self.constraint_propagations += 1
        if ty.read_only:
            if self.class_env.context_implied_by(ty.context, cls) is None:
                raise SignatureError(
                    f"the inferred context requires {cls} "
                    f"{ty.name}, which the type signature does "
                    f"not provide", pos)
            return
        # Snapshot the context before superclass compaction mutates it
        # (add_constraint both removes and adds).
        if self._trail is not None:
            self._trail.append(("context", ty.context, tuple(ty.context)))
        self.class_env.add_constraint(ty.context, cls)

    def propagate_class_tycon(self, cls: str, ty: Type,
                              pos: Optional[SourcePos] = None) -> None:
        """The paper's ``propagateClassTycon`` — one step of context
        reduction."""
        if pos is None:
            pos = self._nearest_pos
        self.context_reduction_count += 1
        head, args = spine(ty)
        if not isinstance(head, TyCon):
            # A constraint on an application headed by a type variable
            # cannot be reduced in this system (no instances over
            # partially known constructors, as in Haskell 1.2).
            raise UnificationError(
                f"cannot reduce context {cls} {type_str(ty)}: the type's "
                f"head is not a known constructor", pos)
        contexts = self.class_env.find_instance_context(
            head.name, cls, type_str(ty), pos)
        # For a well-kinded goal the spine length always equals the
        # instance's context-slot count, higher-kinded instances
        # included: the goal's kind is the class variable's kind, which
        # pins how far the constructor is applied.  Defensive check
        # only (an ill-kinded goal could reach here through a stale
        # interface).
        if len(contexts) != len(args):
            raise UnificationError(
                f"instance {cls} {head.name} expects {len(contexts)} type "
                f"argument(s) but the constrained type {type_str(ty)} has "
                f"{len(args)}", pos)
        for class_set, type_arg in zip(contexts, args):
            if class_set:
                self.propagate_classes(class_set, type_arg, pos)

    # ------------------------------------------------------- minimization

    def _explain(self, exc: TypeCheckError, trail_mark: int,
                 log_mark: int) -> None:
        """Attach a minimal unsatisfiable core's spans to *exc*.

        Best-effort by design: any anomaly during minimization falls
        back to the failing constraint's own origin (or the error's
        primary position) — diagnostics must never turn a type error
        into a crash or mask it with a different one.
        """
        constraints = self._log[log_mark:]
        failing = self._failing
        counts = (self.unify_count, self.context_reduction_count,
                  self.constraint_propagations)
        try:
            core = self._minimize(constraints, trail_mark, failing)
        except Exception:
            core = [failing] if failing is not None else []
        finally:
            self._minimizing = False
            # Replays must not skew the E9 instrumentation counters.
            (self.unify_count, self.context_reduction_count,
             self.constraint_propagations) = counts
        positions: List[Provenance] = []
        seen = set()
        for c in core:
            origin = c.origin
            if origin.pos is None:
                continue
            key = (origin.pos, origin.reason)
            if key in seen:
                continue
            seen.add(key)
            positions.append(Provenance(origin.pos, origin.reason))
        if not positions and exc.pos is not None:
            # Failures outside the replayable constraint set (placeholder
            # resolution, ambiguity) still report their own site.
            positions.append(Provenance(exc.pos, "error-site"))
        exc.positions = positions
        #: corpus instrumentation: how much smaller the minimal set is
        exc.constraint_pool_size = len(constraints)
        exc.unsat_core_size = len(core)

    def _minimize(self, constraints: List[Constraint], trail_mark: int,
                  failing: Optional[Constraint]) -> List[Constraint]:
        """Deletion-based minimization: drop one constraint at a time,
        keep the drop whenever the remainder still fails to replay."""
        trail = self._trail
        if trail is None or not constraints:
            return [failing] if failing is not None else []
        undo_trail(trail, trail_mark)
        fallback = [failing] if failing is not None else constraints[-1:]
        if len(constraints) > self.minimize_cap:
            self.minimize_capped_count += 1
            return fallback
        self._minimizing = True
        if not self._unsat(constraints, trail_mark):
            # The failure is not reproducible from the logged set alone
            # (e.g. it came from placeholder resolution, not unify).
            return fallback
        core = list(constraints)
        i = 0
        while i < len(core):
            trial = core[:i] + core[i + 1:]
            if self._unsat(trial, trail_mark):
                core = trial
            else:
                i += 1
        return core

    def _unsat(self, subset: List[Constraint], trail_mark: int) -> bool:
        """Replay *subset* from the rolled-back state; True when it
        still raises.  Always restores the rolled-back state."""
        assert self._trail is not None
        try:
            for c in subset:
                self._unify(c.t1, c.t2, c.origin.pos)
        except TypeCheckError:
            return True
        else:
            return False
        finally:
            undo_trail(self._trail, trail_mark)
