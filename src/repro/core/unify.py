"""Unification with context propagation and context reduction.

This is the paper's section 5, implemented to mirror its pseudocode::

    instantiateTyvar (tyvar, type)
        tyvar.value := type
        propagateClasses (tyvar.context, type)

    propagateClasses (classes, type)
        if tyvar(type) then type.context := union(classes, type.context)
        else for each c in classes
            propagateClassTycon (c, type)

    propagateClassTycon (class, type)
        s = findInstanceContext (type.tycon, class)
        for each classSet in s, typeArg in tycon.args
            propagateClasses (classSet, typeArg)

plus the refinements of sections 8.1 (superclass compaction when adding
constraints to a context) and 8.6 (read-only type variables, which may
be neither instantiated nor given a larger context — violating either
raises :class:`SignatureError` because the program demands more than the
user's signature allows).

The :class:`Unifier` counts unifications and context-reduction steps so
that experiment E9 ("a minor increase in the cost of unification",
section 9) can be measured directly.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import (
    OccursCheckError,
    ResourceLimitError,
    SignatureError,
    SourcePos,
    UnificationError,
)
from repro.limits import DEFAULT_TYPE_DEPTH
from repro.core.classes import ClassEnv
from repro.core.types import (
    TyApp,
    TyCon,
    TyVar,
    Type,
    adjust_levels,
    occurs_in,
    prune,
    spine,
    type_str,
)


class Unifier:
    """Unification engine bound to one class environment."""

    def __init__(self, class_env: ClassEnv,
                 max_depth: int = DEFAULT_TYPE_DEPTH) -> None:
        self.class_env = class_env
        self.max_depth = max_depth
        self.unify_count = 0
        self.context_reduction_count = 0
        self.constraint_propagations = 0

    # ------------------------------------------------------------- unify

    def unify(self, t1: Type, t2: Type, pos: Optional[SourcePos] = None) -> None:
        """Make *t1* and *t2* equal, or raise.

        Structural decomposition runs on an explicit worklist (one pop
        per pair, preserving the recursive version's depth-first order
        and ``unify_count``), so arbitrarily deep types cannot overflow
        the Python stack; the worklist itself is budgeted by
        ``max_type_depth``.
        """
        max_depth = self.max_depth
        stack = [(t1, t2)]
        while stack:
            if max_depth and len(stack) > max_depth:
                raise ResourceLimitError(
                    f"unification worklist exceeded max_type_depth "
                    f"({max_depth}); raise it for very large types",
                    pos,
                    limit="max_type_depth",
                )
            t1, t2 = stack.pop()
            self.unify_count += 1
            t1 = prune(t1)
            t2 = prune(t2)
            if t1 is t2:
                continue
            if isinstance(t1, TyVar):
                if isinstance(t2, TyVar):
                    self._link_vars(t1, t2, pos)
                    continue
                self.instantiate_tyvar(t1, t2, pos)
                continue
            if isinstance(t2, TyVar):
                self.instantiate_tyvar(t2, t1, pos)
                continue
            if isinstance(t1, TyCon) and isinstance(t2, TyCon):
                if t1.name == t2.name:
                    continue
                raise UnificationError(
                    f"cannot unify {type_str(t1)} with {type_str(t2)}", pos)
            if isinstance(t1, TyApp) and isinstance(t2, TyApp):
                # Push arg first so the fn pair is popped (and unified)
                # first, matching the old recursive order.
                stack.append((t1.arg, t2.arg))
                stack.append((t1.fn, t2.fn))
                continue
            raise UnificationError(
                f"cannot unify {type_str(t1)} with {type_str(t2)}", pos)

    def _link_vars(self, a: TyVar, b: TyVar, pos: Optional[SourcePos]) -> None:
        """Unify two distinct unbound variables."""
        # Prefer to keep a read-only variable as the representative, so
        # that instantiating the other side is what gets checked.
        if a.read_only and b.read_only:
            raise SignatureError(
                "type signature is too general: it requires two signature "
                "variables to be identical", pos)
        if a.read_only:
            a, b = b, a  # instantiate the flexible one (now 'a')
        # a := b ; push a's context onto b, keep the shallower level.
        if b.level > a.level:
            b.level = a.level
        a.value = b
        if a.context:
            self.propagate_classes(list(a.context), b, pos)

    def instantiate_tyvar(self, tyvar: TyVar, ty: Type,
                          pos: Optional[SourcePos] = None) -> None:
        """The paper's ``instantiateTyvar`` with occurs/level/read-only
        checks added."""
        if tyvar.read_only:
            raise SignatureError(
                f"type signature is too general: signature variable "
                f"'{tyvar.name}' would have to be {type_str(ty)}", pos)
        if occurs_in(tyvar, ty):
            raise OccursCheckError(
                f"cannot construct the infinite type "
                f"{tyvar.name} = {type_str(ty)}", pos)
        adjust_levels(tyvar.level, ty)
        tyvar.value = ty
        if tyvar.context:
            self.propagate_classes(list(tyvar.context), ty, pos)

    # ------------------------------------------------ context propagation

    def propagate_classes(self, classes: Iterable[str], ty: Type,
                          pos: Optional[SourcePos] = None) -> None:
        """The paper's ``propagateClasses``."""
        ty = prune(ty)
        if isinstance(ty, TyVar):
            if ty.read_only:
                for cls in classes:
                    self.constraint_propagations += 1
                    if self.class_env.context_implied_by(ty.context, cls) is None:
                        raise SignatureError(
                            f"the inferred context requires {cls} "
                            f"{ty.name}, which the type signature does "
                            f"not provide", pos)
                return
            for cls in classes:
                self.constraint_propagations += 1
                self.class_env.add_constraint(ty.context, cls)
            return
        for cls in classes:
            self.propagate_class_tycon(cls, ty, pos)

    def propagate_class_tycon(self, cls: str, ty: Type,
                              pos: Optional[SourcePos] = None) -> None:
        """The paper's ``propagateClassTycon`` — one step of context
        reduction."""
        self.context_reduction_count += 1
        head, args = spine(ty)
        if not isinstance(head, TyCon):
            # A constraint on an application headed by a type variable
            # cannot be reduced in this system (no instances over
            # partially known constructors, as in Haskell 1.2).
            raise UnificationError(
                f"cannot reduce context {cls} {type_str(ty)}: the type's "
                f"head is not a known constructor", pos)
        contexts = self.class_env.find_instance_context(
            head.name, cls, type_str(ty), pos)
        if len(contexts) != len(args):
            raise UnificationError(
                f"instance {cls} {head.name} expects {len(contexts)} type "
                f"argument(s) but the constrained type {type_str(ty)} has "
                f"{len(args)}", pos)
        for class_set, type_arg in zip(contexts, args):
            if class_set:
                self.propagate_classes(class_set, type_arg, pos)
