"""Derived instances (section 2 of the paper).

    "As a convenience, Haskell allows the programmer to use derived
    instances for some of the standard classes like Eq, automatically
    generating appropriate instance definitions.  Note that this
    feature is not itself part of the underlying type system."

Accordingly, this module is a pure source-to-source expander: a
``deriving`` clause becomes ordinary instance declarations (in kernel
form) which then flow through static analysis, type checking and
dictionary conversion like hand-written code.

Supported classes:

* ``Eq``   — structural equality over constructors;
* ``Ord``  — ordering by constructor tag, then lexicographic by fields
  (generates ``compare``; the comparison operators come from the class
  defaults);
* ``Text`` — ``show`` producing ``K`` or ``(K f1 ... fn)``, and
  ``reads`` parsing exactly that format back (via the prelude's
  ``readToken``/``bindReads`` combinators), so ``read . show`` is the
  identity on derived types;
* ``Bounded`` — first/last constructor (enumerations only);
* ``Enum`` — constructor tag as the enumeration index (enumerations
  only; ``toEnum`` is return-type overloaded, so this, too, needs
  dictionaries).
* ``Functor`` — structural ``fmap`` over the *last* type parameter.
  The generated instance lives at the partially applied head
  ``T a1 ... a_{n-1}`` (kind ``* -> *``), so it exercises the
  higher-kinded instance machinery end to end.  Field positions map
  as: a type not mentioning the parameter is left alone; the bare
  parameter gets ``f``; an application ``h s1 ... sk`` whose *last*
  argument alone mentions the parameter maps via ``fmap`` of the
  recursively built function (a variable head ``h`` adds ``Functor h``
  to the instance context).  Anything else — the parameter in a
  contravariant or non-last position, or as the head of an
  application — is a :class:`~repro.errors.StaticError`.

The derived instance context constrains every type parameter by the
derived class, e.g. ``instance (Ord a, Ord b) => Ord (T a b)``
(``Functor`` instead collects exactly the ``Functor h`` constraints
its mapping needs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set, Tuple

from repro.errors import StaticError
from repro.lang import ast
from repro.util.names import NameSupply

if TYPE_CHECKING:
    from repro.core.static import DataConInfo, StaticEnv

DERIVABLE = ("Eq", "Ord", "Text", "Bounded", "Enum", "Functor")

#: classes only derivable for enumerations (all constructors nullary)
_ENUM_ONLY = ("Bounded", "Enum")


def derive_instances(env: "StaticEnv",
                     decl: ast.DataDecl) -> List[ast.InstanceDecl]:
    """Instance declarations for *decl*'s ``deriving`` clause."""
    out: List[ast.InstanceDecl] = []
    for class_name in decl.deriving:
        if class_name not in DERIVABLE:
            raise StaticError(
                f"cannot derive {class_name} for {decl.name}: only "
                f"{', '.join(DERIVABLE)} are derivable", decl.pos)
        cons = env.data_types[decl.name].constructors
        if class_name in _ENUM_ONLY:
            if decl.tyvars or any(c.arity for c in cons):
                raise StaticError(
                    f"cannot derive {class_name} for {decl.name}: only "
                    f"enumerations (all constructors nullary, no type "
                    f"parameters) support it", decl.pos)
        if class_name == "Functor":
            out.append(_derive_functor(decl, cons))
            continue
        context = [ast.SPred(class_name, ast.STyVar(v)) for v in decl.tyvars]
        head: ast.SType = ast.STyCon(decl.name)
        for v in decl.tyvars:
            head = ast.STyApp(head, ast.STyVar(v))
        if class_name == "Eq":
            bindings = [_derive_eq(cons)]
        elif class_name == "Ord":
            bindings = [_derive_compare(cons)]
        elif class_name == "Bounded":
            bindings = _derive_bounded(cons)
        elif class_name == "Enum":
            bindings = _derive_enum(decl.name, cons)
        else:
            bindings = [_derive_show(cons), _derive_reads(cons)]
        out.append(ast.InstanceDecl(context, class_name, head, bindings,
                                    pos=decl.pos))
    return out


# --------------------------------------------------------------------------
# Small kernel-AST building blocks
# --------------------------------------------------------------------------

def _var(name: str) -> ast.Var:
    return ast.Var(name)


def _app(fn: ast.Expr, *args: ast.Expr) -> ast.Expr:
    return ast.apply_expr(fn, *args)


def _con_pat(con: "DataConInfo", names: List[str]) -> ast.Pat:
    return ast.PCon(con.name, [ast.PVar(n) for n in names])


def _alt(pat: ast.Pat, body: ast.Expr) -> ast.CaseAlt:
    return ast.CaseAlt(pat, [ast.GuardedRhs(None, body)])


def _string_lit(text: str) -> ast.Expr:
    return ast.Lit(text, "string")


def _raw_int(value: int) -> ast.Expr:
    # Deriving runs after desugaring, so literals must be built in their
    # final form: a raw Int, not a fromInteger application.
    return ast.Lit(value, "int")


def _list_expr(items: List[ast.Expr]) -> ast.Expr:
    out: ast.Expr = ast.Con("[]")
    for item in reversed(items):
        out = _app(ast.Con(":"), item, out)
    return out


# --------------------------------------------------------------------------
# Eq
# --------------------------------------------------------------------------

def _derive_eq(cons: List["DataConInfo"]) -> ast.FunBind:
    """``(==) = \\x y -> case (x, y) of ...``"""
    names = NameSupply()
    alts: List[ast.CaseAlt] = []
    for con in cons:
        lhs = [names.fresh("a") for _ in range(con.arity)]
        rhs = [names.fresh("b") for _ in range(con.arity)]
        comparisons: ast.Expr = ast.Con("True")
        for a, b in zip(reversed(lhs), reversed(rhs)):
            test = _app(_var("=="), _var(a), _var(b))
            if isinstance(comparisons, ast.Con) and comparisons.name == "True":
                comparisons = test
            else:
                comparisons = _app(_var("&&"), test, comparisons)
        alts.append(_alt(
            ast.PTuple([_con_pat(con, lhs), _con_pat(con, rhs)]),
            comparisons))
    if len(cons) > 1:
        alts.append(_alt(ast.PTuple([ast.PWild(), ast.PWild()]),
                         ast.Con("False")))
    body = ast.Lam(
        [ast.PVar("x$d"), ast.PVar("y$d")],
        ast.Case(ast.TupleExpr([_var("x$d"), _var("y$d")]), alts))
    return ast.simple_bind("==", body)


# --------------------------------------------------------------------------
# Ord
# --------------------------------------------------------------------------

def _derive_compare(cons: List["DataConInfo"]) -> ast.FunBind:
    """``compare`` ordering by declaration tag, lexicographic in fields."""
    names = NameSupply()
    alts: List[ast.CaseAlt] = []
    for con in cons:
        lhs = [names.fresh("a") for _ in range(con.arity)]
        rhs = [names.fresh("b") for _ in range(con.arity)]
        alts.append(_alt(
            ast.PTuple([_con_pat(con, lhs), _con_pat(con, rhs)]),
            _lex_compare(lhs, rhs)))
    if len(cons) > 1:
        # Different constructors: compare the tags.
        tag_alts = [
            _alt(ast.PCon(con.name, [ast.PWild()] * con.arity),
                 _raw_int(con.tag))
            for con in cons
        ]
        tag_fn = ast.Lam([ast.PVar("v$t")],
                         ast.Case(_var("v$t"), tag_alts))
        fallback = ast.If(
            _app(_var("primLtInt"),
                 _app(_var("tag$d"), _var("x$d")),
                 _app(_var("tag$d"), _var("y$d"))),
            ast.Con("LT"), ast.Con("GT"))
        alts.append(_alt(ast.PTuple([ast.PWild(), ast.PWild()]), fallback))
        case = ast.Case(ast.TupleExpr([_var("x$d"), _var("y$d")]), alts)
        body_expr: ast.Expr = ast.Let([ast.simple_bind("tag$d", tag_fn)], case)
    else:
        body_expr = ast.Case(ast.TupleExpr([_var("x$d"), _var("y$d")]), alts)
    body = ast.Lam([ast.PVar("x$d"), ast.PVar("y$d")], body_expr)
    return ast.simple_bind("compare", body)


def _lex_compare(lhs: List[str], rhs: List[str]) -> ast.Expr:
    if not lhs:
        return ast.Con("EQ")
    head = _app(_var("compare"), _var(lhs[0]), _var(rhs[0]))
    rest = _lex_compare(lhs[1:], rhs[1:])
    return ast.Case(head, [
        _alt(ast.PCon("EQ", []), rest),
        _alt(ast.PVar("r$d"), _var("r$d")),
    ])


# --------------------------------------------------------------------------
# Bounded and Enum (enumerations only)
# --------------------------------------------------------------------------

def _derive_bounded(cons: List["DataConInfo"]) -> List[ast.FunBind]:
    return [
        ast.simple_bind("minBound", ast.Con(cons[0].name)),
        ast.simple_bind("maxBound", ast.Con(cons[-1].name)),
    ]


def _derive_enum(type_name: str,
                 cons: List["DataConInfo"]) -> List[ast.FunBind]:
    # fromEnum: tag by constructor.
    from_alts = [_alt(ast.PCon(c.name, []), _raw_int(c.tag)) for c in cons]
    from_enum = ast.Lam([ast.PVar("v$e")],
                        ast.Case(_var("v$e"), from_alts))
    # toEnum: chain of primitive comparisons ending in a range error.
    to_body: ast.Expr = _app(
        _var("error"),
        ast.Lit(f"toEnum: index out of range for {type_name}", "string"))
    for c in reversed(cons):
        to_body = ast.If(
            _app(_var("primEqInt"), _var("n$e"), _raw_int(c.tag)),
            ast.Con(c.name), to_body)
    to_enum = ast.Lam([ast.PVar("n$e")], to_body)
    return [
        ast.simple_bind("fromEnum", from_enum),
        ast.simple_bind("toEnum", to_enum),
    ]


# --------------------------------------------------------------------------
# Text: show and reads
# --------------------------------------------------------------------------

def _derive_show(cons: List["DataConInfo"]) -> ast.FunBind:
    names = NameSupply()
    alts: List[ast.CaseAlt] = []
    for con in cons:
        fields = [names.fresh("a") for _ in range(con.arity)]
        if not fields:
            body: ast.Expr = _string_lit(con.name)
        else:
            parts: List[ast.Expr] = [_string_lit(f"({con.name}")]
            for f in fields:
                parts.append(_string_lit(" "))
                parts.append(_app(_var("show"), _var(f)))
            parts.append(_string_lit(")"))
            body = parts[0]
            for p in parts[1:]:
                body = _app(_var("++"), body, p)
        alts.append(_alt(_con_pat(con, fields), body))
    lam = ast.Lam([ast.PVar("x$d")], ast.Case(_var("x$d"), alts))
    return ast.simple_bind("show", lam)


def _derive_reads(cons: List["DataConInfo"]) -> ast.FunBind:
    """``reads`` parsing the derived ``show`` format.

    For each constructor a parser expression is generated with the
    prelude combinators; the results are concatenated, so the grammar
    is unambiguous by construction (constructor names differ).
    """
    names = NameSupply()
    parsers = [_reads_con(con, names) for con in cons]
    body: ast.Expr = parsers[0]
    for p in parsers[1:]:
        body = _app(_var("++"), body, p)
    lam = ast.Lam([ast.PVar("s$d")], body)
    return ast.simple_bind("reads", lam)


def _reads_con(con: "DataConInfo", names: NameSupply) -> ast.Expr:
    """Parser for one constructor, as an expression over ``s$d``."""
    fields = [names.fresh("p") for _ in range(con.arity)]

    def success(rest_var: str) -> ast.Expr:
        value = ast.Con(con.name)
        built: ast.Expr = value
        for f in fields:
            built = ast.App(built, _var(f))
        return _list_expr([ast.TupleExpr([built, _var(rest_var)])])

    if con.arity == 0:
        # bindReads (readToken "K" s) (\_ r -> [(K, r)])
        u = names.fresh("u")
        r = names.fresh("r")
        return _app(_var("bindReads"),
                    _app(_var("readToken"), _string_lit(con.name), _var("s$d")),
                    ast.Lam([ast.PVar(u), ast.PVar(r)], success(r)))

    # bindReads (readToken "(" s)  (\_ r0 ->
    # bindReads (readToken "K" r0) (\_ r1 ->
    # bindReads (reads r1)         (\p1 r2 -> ... [( K p1 .. pn, rLast )] )))
    steps: List = []  # (kind, payload)
    steps.append(("token", "("))
    steps.append(("token", con.name))
    for f in fields:
        steps.append(("field", f))
    steps.append(("token", ")"))

    def build(i: int, rest_var: str) -> ast.Expr:
        if i == len(steps):
            return success(rest_var)
        kind, payload = steps[i]
        next_rest = names.fresh("r")
        if kind == "token":
            u = names.fresh("u")
            return _app(
                _var("bindReads"),
                _app(_var("readToken"), _string_lit(payload), _var(rest_var)),
                ast.Lam([ast.PVar(u), ast.PVar(next_rest)],
                        build(i + 1, next_rest)))
        return _app(
            _var("bindReads"),
            _app(_var("reads"), _var(rest_var)),
            ast.Lam([ast.PVar(payload), ast.PVar(next_rest)],
                    build(i + 1, next_rest)))

    return build(0, "s$d")


# --------------------------------------------------------------------------
# Functor (higher-kinded: the instance head is a partial application)
# --------------------------------------------------------------------------

def _derive_functor(decl: ast.DataDecl,
                    cons: List["DataConInfo"]) -> ast.InstanceDecl:
    """``instance (Functor h, ...) => Functor (T a1 .. a_{n-1})``."""
    if not decl.tyvars:
        raise StaticError(
            f"cannot derive Functor for {decl.name}: the type has no "
            f"parameters to map over", decl.pos)
    var = decl.tyvars[-1]
    functor_vars: Set[str] = set()
    names = NameSupply()
    alts: List[ast.CaseAlt] = []
    for con, condef in zip(cons, decl.constructors):
        fields = [names.fresh("a") for _ in range(con.arity)]
        built: ast.Expr = ast.Con(con.name)
        for fname, fty in zip(fields, condef.arg_types):
            built = ast.App(built, _map_field(decl, fty, var, fname,
                                              functor_vars))
        alts.append(_alt(_con_pat(con, fields), built))
    body = ast.Lam([ast.PVar("f$d"), ast.PVar("x$d")],
                   ast.Case(_var("x$d"), alts))
    context = [ast.SPred("Functor", ast.STyVar(w))
               for w in sorted(functor_vars)]
    head: ast.SType = ast.STyCon(decl.name)
    for v in decl.tyvars[:-1]:
        head = ast.STyApp(head, ast.STyVar(v))
    return ast.InstanceDecl(context, "Functor", head,
                            [ast.simple_bind("fmap", body)], pos=decl.pos)


def _mentions(ty: ast.SType, var: str) -> bool:
    if isinstance(ty, ast.STyVar):
        return ty.name == var
    if isinstance(ty, ast.STyApp):
        return _mentions(ty.fn, var) or _mentions(ty.arg, var)
    return False


def _sty_spine(ty: ast.SType) -> Tuple[ast.SType, List[ast.SType]]:
    args: List[ast.SType] = []
    while isinstance(ty, ast.STyApp):
        args.append(ty.arg)
        ty = ty.fn
    return ty, list(reversed(args))


def _map_field(decl: ast.DataDecl, ty: ast.SType, var: str, field_var: str,
               functor_vars: Set[str]) -> ast.Expr:
    """The expression for one constructor field under ``fmap``."""
    if not _mentions(ty, var):
        return _var(field_var)
    return _app(_map_fn(decl, ty, var, functor_vars), _var(field_var))


def _map_fn(decl: ast.DataDecl, ty: ast.SType, var: str,
            functor_vars: Set[str]) -> ast.Expr:
    """A function expression mapping ``f$d`` over *ty*'s ``var`` sites.

    Only covariant, last-argument occurrences are coverable; anything
    else is rejected (this mirrors GHC's DeriveFunctor minus the
    contravariant double-flip, which the paper's fragment omits).
    """
    if isinstance(ty, ast.STyVar) and ty.name == var:
        return _var("f$d")
    head, args = _sty_spine(ty)
    container_ok = (
        args
        and _mentions(args[-1], var)
        and not any(_mentions(a, var) for a in args[:-1])
        and not _mentions(head, var))
    if not container_ok:
        raise StaticError(
            f"cannot derive Functor for {decl.name}: type parameter "
            f"{var} occurs in a position fmap cannot map over",
            getattr(ty, "pos", None) or decl.pos)
    if isinstance(head, ast.STyVar):
        functor_vars.add(head.name)
    return _app(_var("fmap"), _map_fn(decl, args[-1], var, functor_vars))
