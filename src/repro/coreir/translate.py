"""Translation from (dictionary-converted) kernel AST to core IR.

The type checker leaves a kernel program whose overloading has been
made explicit; this pass finishes the job of reaching a runnable form:

* **pattern-match compilation**: kernel ``case`` still has nested
  patterns, guards (with fall-through semantics) and ``where`` clauses;
  core ``case`` is flat.  Alternatives compile sequentially: each
  alternative's failure continuation is let-bound (so code is linear,
  not exponential) and guard failure falls through to it.
* placeholder links (:class:`repro.lang.ast.PlaceholderExpr`) are read
  through;
* tuples in dictionary-constructor bindings become :class:`CDict`
  nodes so the evaluator can count dictionary constructions;
* string literals stay literal (the evaluator expands them to character
  lists lazily); character-list *patterns* from desugared string
  patterns compile to nested cases as usual.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StaticError
from repro.lang import ast
from repro.limits import DEFAULT_TRANSFORM_DEPTH, DepthGuard
from repro.util.names import NameSupply
from repro.coreir.syntax import (
    Ann,
    CAlt,
    CApp,
    CCase,
    CCon,
    CDict,
    CLam,
    CLet,
    CLit,
    CLitAlt,
    CoreBinding,
    CoreExpr,
    CoreProgram,
    CTuple,
    CVar,
    capp,
)


class Translator:
    def __init__(self, con_arity: Dict[str, int],
                 max_depth: int = DEFAULT_TRANSFORM_DEPTH,
                 data_cons=None) -> None:
        """*con_arity* maps data constructor names to their arities
        (needed to emit saturation-aware ``CCon`` nodes).  *data_cons*,
        when given, maps constructor names to
        :class:`repro.core.static.DataConInfo`; it lets case binders be
        annotated with the constructor's field types."""
        self.con_arity = con_arity
        self.data_cons = data_cons
        self.names = NameSupply()
        self._depth = DepthGuard(max_depth, "max_transform_depth",
                                 "core translation")
        # Rendered field types per constructor — the rendering is pure
        # string work on the constructor's scheme, so one computation
        # per constructor keeps annotation emission off the hot path.
        self._field_types: Dict[str, Optional[List[str]]] = {}

    # ------------------------------------------------------------ programs

    def binding(self, name: str, expr: ast.Expr, kind: str,
                dict_arity: int = 0, scheme=None,
                dict_classes: Optional[Sequence[str]] = None) -> CoreBinding:
        ann_classes: Optional[Tuple[str, ...]] = None
        if dict_classes is not None and len(dict_classes) == dict_arity:
            ann_classes = tuple(dict_classes)
        if kind == "dict":
            body = self.dict_body(expr, name)
            if (ann_classes and isinstance(body, CLam)
                    and len(body.params) == dict_arity):
                body.anns = [Ann(dict_class=c) for c in ann_classes]
            return CoreBinding(name, body, kind, dict_arity,
                               type_ann=scheme, dict_classes=ann_classes)
        if dict_arity > 0:
            # Keep the dictionary lambda separate from the value lambda:
            # the boundary is where hoisted dictionary constructions
            # land (section 8.8) and where the inner entry point is
            # introduced (section 7).
            expr2 = ast.unwrap_placeholders(expr)
            assert isinstance(expr2, ast.Lam) \
                and len(expr2.params) == dict_arity
            params = [p.name for p in expr2.params]  # type: ignore[union-attr]
            anns = ([Ann(dict_class=c) for c in ann_classes]
                    if ann_classes else None)
            return CoreBinding(name, CLam(params, self.expr(expr2.body), anns),
                               kind, dict_arity,
                               type_ann=scheme, dict_classes=ann_classes)
        return CoreBinding(name, self.expr(expr), kind, dict_arity,
                           type_ann=scheme, dict_classes=ann_classes)

    def dict_body(self, expr: ast.Expr, tag: str) -> CoreExpr:
        """Translate a dictionary-constructor binding, marking its
        dictionary tuple for instrumentation."""
        expr = ast.unwrap_placeholders(expr)
        if isinstance(expr, ast.Lam):
            params = [p.name for p in expr.params]  # type: ignore[union-attr]
            return CLam(params, self.dict_body(expr.body, tag))
        if isinstance(expr, ast.Let):
            binds = []
            for d in expr.decls:
                assert isinstance(d, ast.FunBind) and d.is_simple
                binds.append((d.name, self.dict_body(d.simple_rhs, tag)))
            return CLet(binds, self.dict_body(expr.body, tag), recursive=True)
        if isinstance(expr, ast.TupleExpr):
            return CDict([self.expr(item) for item in expr.items], tag)
        # Bare (single-slot) dictionary: the construction is the slot
        # expression itself.
        return self.expr(expr)

    # --------------------------------------------------------- expressions

    def expr(self, expr: ast.Expr) -> CoreExpr:
        self._depth.enter(getattr(expr, "pos", None))
        try:
            return self._expr(expr)
        finally:
            self._depth.exit()

    def _expr(self, expr: ast.Expr) -> CoreExpr:
        expr = ast.unwrap_placeholders(expr)
        if isinstance(expr, ast.Var):
            return CVar(expr.name)
        if isinstance(expr, ast.Con):
            arity = self.con_arity.get(expr.name)
            if arity is None:
                raise StaticError(f"unknown constructor {expr.name}", expr.pos)
            return CCon(expr.name, arity)
        if isinstance(expr, ast.Lit):
            return CLit(expr.value, expr.kind)
        if isinstance(expr, ast.App):
            return CApp(self.expr(expr.fn), self.expr(expr.arg))
        if isinstance(expr, ast.Lam):
            params = []
            for p in expr.params:
                assert isinstance(p, ast.PVar)
                params.append(p.name)
            body = self.expr(expr.body)
            # Merge directly nested lambdas for cheaper application.
            if isinstance(body, CLam):
                anns = ([None] * len(params) + body.anns
                        if body.anns is not None else None)
                return CLam(params + body.params, body.body, anns)
            return CLam(params, body)
        if isinstance(expr, ast.Let):
            binds = []
            names = []
            for d in expr.decls:
                if isinstance(d, ast.TypeSig):
                    continue
                assert isinstance(d, ast.FunBind) and d.is_simple
                names.append(d.name)
                binds.append((d.name, self.expr(d.simple_rhs)))
            body = self.expr(expr.body)
            if not binds:
                return body
            recursive = self._is_recursive(binds, names)
            return CLet(binds, body, recursive)
        if isinstance(expr, ast.If):
            return CCase(
                self.expr(expr.cond),
                [CAlt("True", [], self.expr(expr.then_branch)),
                 CAlt("False", [], self.expr(expr.else_branch))],
                [], None)
        if isinstance(expr, ast.Case):
            return self.case_expr(expr)
        if isinstance(expr, ast.TupleExpr):
            return CTuple([self.expr(i) for i in expr.items])
        if isinstance(expr, ast.PlaceholderExpr):
            raise StaticError(
                f"unresolved placeholder <{expr.payload}> reached the "
                f"translator — the type checker must resolve all "
                f"placeholders", expr.pos)
        if isinstance(expr, ast.Annot):
            return self.expr(expr.expr)
        raise StaticError(f"cannot translate expression {expr!r}",
                          getattr(expr, "pos", None))

    @staticmethod
    def _is_recursive(binds: List, names: List[str]) -> bool:
        from repro.coreir.syntax import free_vars
        bound = set(names)
        for _, rhs in binds:
            if bound & set(free_vars(rhs)):
                return True
        return False

    # ------------------------------------------------ match compilation

    def case_expr(self, expr: ast.Case) -> CoreExpr:
        scrut = self.expr(expr.scrutinee)
        scrut_var = self.names.fresh("m")
        fail: CoreExpr = capp(
            CVar("error"),
            CLit("pattern match failure", "string"))
        body = self.compile_alts(scrut_var, expr.alts, fail)
        return CLet([(scrut_var, scrut)], body, recursive=False)

    def compile_alts(self, scrut_var: str, alts: Sequence[ast.CaseAlt],
                     fail: CoreExpr) -> CoreExpr:
        """Compile alternatives sequentially, last-to-first, threading
        the failure continuation through let-bound join points."""
        result = fail
        for alt in reversed(alts):
            fail_var = self.names.fresh("fail")
            success = self.alt_body(alt, CVar(fail_var))
            matched = self.match_pattern(CVar(scrut_var), alt.pat,
                                         success, CVar(fail_var))
            result = CLet([(fail_var, result)], matched, recursive=False)
        return result

    def alt_body(self, alt: ast.CaseAlt, fail: CoreExpr) -> CoreExpr:
        """The right-hand side of one alternative: guards become a
        conditional chain falling through to *fail*; ``where`` wraps the
        whole thing."""
        out = fail
        for rhs in reversed(alt.rhss):
            body = self.expr(rhs.body)
            if rhs.guard is None:
                out = body
            else:
                out = CCase(self.expr(rhs.guard),
                            [CAlt("True", [], body),
                             CAlt("False", [], out)],
                            [], None)
        if alt.where_decls:
            binds = []
            names = []
            for d in alt.where_decls:
                if isinstance(d, ast.TypeSig):
                    continue
                assert isinstance(d, ast.FunBind) and d.is_simple
                names.append(d.name)
                binds.append((d.name, self.expr(d.simple_rhs)))
            if binds:
                out = CLet(binds, out, self._is_recursive(binds, names))
        return out

    def match_pattern(self, scrut: CoreExpr, pat: ast.Pat,
                      success: CoreExpr, fail: CoreExpr) -> CoreExpr:
        if isinstance(pat, ast.PWild):
            return success
        if isinstance(pat, ast.PVar):
            return CLet([(pat.name, scrut)], success, recursive=False)
        if isinstance(pat, ast.PAs):
            return CLet([(pat.name, scrut)],
                        self.match_pattern(CVar(pat.name), pat.pat,
                                           success, fail),
                        recursive=False)
        if isinstance(pat, ast.PLit):
            return CCase(scrut, [], [CLitAlt(pat.value, pat.kind, success)],
                         fail)
        if isinstance(pat, ast.PTuple):
            binders = [self.names.fresh("p") for _ in pat.items]
            body = success
            for name, sub in reversed(list(zip(binders, pat.items))):
                body = self.match_pattern(CVar(name), sub, body, fail)
            con_name = "(" + "," * (len(pat.items) - 1) + ")"
            return CCase(scrut, [CAlt(con_name, binders, body)], [], fail)
        assert isinstance(pat, ast.PCon)
        binders = [self.names.fresh("p") for _ in pat.args]
        body = success
        for name, sub in reversed(list(zip(binders, pat.args))):
            body = self.match_pattern(CVar(name), sub, body, fail)
        return CCase(scrut,
                     [CAlt(pat.name, binders, body,
                           self._alt_anns(pat.name, len(binders)))],
                     [], fail)

    def _alt_anns(self, con_name: str,
                  n_binders: int) -> Optional[List[Optional[Ann]]]:
        """Field-type annotations for a case alternative's binders, from
        the constructor's declared scheme (None when unavailable)."""
        if self.data_cons is None or n_binders == 0:
            return None
        if con_name not in self._field_types:
            fields: Optional[List[str]] = None
            info = self.data_cons.get(con_name)
            if info is not None and info.scheme is not None:
                from repro.core.types import scheme_arg_types
                args = scheme_arg_types(info.scheme)
                if len(args) >= info.arity:
                    fields = args[:info.arity]
            self._field_types[con_name] = fields
        fields = self._field_types[con_name]
        if fields is None or len(fields) != n_binders:
            return None
        return [Ann(type=t) for t in fields]


def translate_bindings(compiled, con_arity: Dict[str, int],
                       data_cons=None) -> CoreProgram:
    """Translate a list of :class:`CompiledBinding` into a core program.

    With *data_cons* (constructor name -> ``DataConInfo``), case binders
    are annotated with field types; binding schemes and dictionary
    classes carry over from inference either way."""
    tr = Translator(con_arity, data_cons=data_cons)
    out = CoreProgram()
    for b in compiled:
        out.bindings.append(tr.binding(
            b.name, b.expr, b.kind, len(b.dict_params),
            scheme=b.scheme, dict_classes=getattr(b, "dict_classes", None)))
    return out


def translate_expr(expr: ast.Expr, con_arity: Dict[str, int]) -> CoreExpr:
    """Translate a single (resolved) kernel expression."""
    return Translator(con_arity).expr(expr)
