"""Free-variable and occurrence analysis over core expressions.

One home for the walkers that were duplicated across the transforms:
dead-code elimination builds its reachability graph from
:func:`free_vars`, dictionary hoisting asks for the deepest binder of a
float's free variables, and the specialiser's dead-dictionary sweep
needs the recursive-let liveness fixpoint in
:func:`live_let_binders`.  Keeping them here means every transform
agrees on scoping — and the core lint checks exactly the same rules.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.coreir.syntax import (
    CApp,
    CCase,
    CDict,
    CLam,
    CLet,
    CoreExpr,
    CSel,
    CTuple,
    CVar,
)


def free_vars(expr: CoreExpr) -> List[str]:
    """Free variables in first-occurrence order."""
    out: List[str] = []
    seen: Set[str] = set()

    def go(e: CoreExpr, bound: frozenset) -> None:
        if isinstance(e, CVar):
            if e.name not in bound and e.name not in seen:
                seen.add(e.name)
                out.append(e.name)
        elif isinstance(e, CApp):
            go(e.fn, bound)
            go(e.arg, bound)
        elif isinstance(e, CLam):
            go(e.body, bound | frozenset(e.params))
        elif isinstance(e, CLet):
            names = frozenset(n for n, _ in e.binds)
            inner = bound | names if e.recursive else bound
            for _, rhs in e.binds:
                go(rhs, inner)
            go(e.body, bound | names)
        elif isinstance(e, CCase):
            go(e.scrutinee, bound)
            for alt in e.alts:
                go(alt.body, bound | frozenset(alt.binders))
            for lalt in e.lit_alts:
                go(lalt.body, bound)
            if e.default is not None:
                go(e.default, bound)
        elif isinstance(e, (CTuple, CDict)):
            for item in e.items:
                go(item, bound)
        elif isinstance(e, CSel):
            go(e.expr, bound)
        # CLit, CCon: nothing

    go(expr, frozenset())
    return out


def free_var_set(expr: CoreExpr) -> Set[str]:
    """Free variables as a set (order-insensitive callers)."""
    return set(free_vars(expr))


def count_occurrences(expr: CoreExpr, name: str) -> int:
    """Number of *free* occurrences of *name* in *expr*."""
    count = 0

    def go(e: CoreExpr, bound: frozenset) -> None:
        nonlocal count
        if isinstance(e, CVar):
            if e.name == name and name not in bound:
                count += 1
        elif isinstance(e, CApp):
            go(e.fn, bound)
            go(e.arg, bound)
        elif isinstance(e, CLam):
            go(e.body, bound | frozenset(e.params))
        elif isinstance(e, CLet):
            names = frozenset(n for n, _ in e.binds)
            inner = bound | names if e.recursive else bound
            for _, rhs in e.binds:
                go(rhs, inner)
            go(e.body, bound | names)
        elif isinstance(e, CCase):
            go(e.scrutinee, bound)
            for alt in e.alts:
                go(alt.body, bound | frozenset(alt.binders))
            for lalt in e.lit_alts:
                go(lalt.body, bound)
            if e.default is not None:
                go(e.default, bound)
        elif isinstance(e, (CTuple, CDict)):
            for item in e.items:
                go(item, bound)
        elif isinstance(e, CSel):
            go(e.expr, bound)

    go(expr, frozenset())
    return count


def live_let_binders(binds: Sequence[Tuple[str, CoreExpr]], body: CoreExpr,
                     recursive: bool) -> Set[str]:
    """The binders of a let group that are transitively referenced.

    Liveness starts from the body's free variables; for recursive
    groups it is a fixpoint, so a self-referential knot (e.g. the
    ``dict$this`` dictionary) whose external references have all been
    rewritten away is correctly recognised as dead.
    """
    used = free_var_set(body)
    if recursive:
        # Only in a recursive group do binder names scope over the
        # right-hand sides, so only there can one binder keep another
        # alive.
        rhs_vars: Dict[str, Set[str]] = {n: free_var_set(rhs)
                                         for n, rhs in binds}
        changed = True
        while changed:
            changed = False
            for n in list(rhs_vars):
                if n in used:
                    extra = rhs_vars[n] - used
                    if extra:
                        used.update(extra)
                        changed = True
    return {n for n, _ in binds if n in used}
