"""The core intermediate representation.

A deliberately small untyped language::

    e ::= x | lit | K | e e | \\x1 .. xn -> e
        | let[rec] { x = e; ... } in e
        | case e of { K x1..xk -> e ; ... ; lit -> e ; ... ; _ -> e }
        | (e1, ..., en)            -- tuple
        | dict(e1, ..., en)        -- dictionary tuple (instrumented)
        | sel_i/n e                -- tuple/dictionary selection

Dictionaries are ordinary tuples operationally; the distinct node kinds
(:class:`CDict`, :class:`CSel` with ``from_dict``) exist so the
evaluator can count dictionary constructions and method selections —
the two run-time costs the paper attributes to type classes
(section 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


class CoreExpr:
    """Base class for core expressions."""

    __slots__ = ()


@dataclass
class CVar(CoreExpr):
    __slots__ = ("name",)
    name: str


@dataclass
class CLit(CoreExpr):
    """Literal.  ``kind`` in {int, float, char, string}; string literals
    expand to character lists lazily at evaluation time."""

    __slots__ = ("value", "kind")
    value: Any
    kind: str


@dataclass
class CCon(CoreExpr):
    """A data constructor used as a (curried) value."""

    __slots__ = ("name", "arity")
    name: str
    arity: int


@dataclass
class CApp(CoreExpr):
    __slots__ = ("fn", "arg")
    fn: CoreExpr
    arg: CoreExpr


@dataclass
class CLam(CoreExpr):
    __slots__ = ("params", "body")
    params: List[str]
    body: CoreExpr


@dataclass
class CLet(CoreExpr):
    __slots__ = ("binds", "body", "recursive")
    binds: List[Tuple[str, CoreExpr]]
    body: CoreExpr
    recursive: bool


@dataclass
class CAlt:
    """``K x1 .. xk -> body``"""

    __slots__ = ("con_name", "binders", "body")
    con_name: str
    binders: List[str]
    body: CoreExpr


@dataclass
class CLitAlt:
    """``lit -> body`` (chars and unboxed ints from derived code)."""

    __slots__ = ("value", "kind", "body")
    value: Any
    kind: str
    body: CoreExpr


@dataclass
class CCase(CoreExpr):
    __slots__ = ("scrutinee", "alts", "lit_alts", "default")
    scrutinee: CoreExpr
    alts: List[CAlt]
    lit_alts: List[CLitAlt]
    default: Optional[CoreExpr]


@dataclass
class CTuple(CoreExpr):
    __slots__ = ("items",)
    items: List[CoreExpr]


@dataclass
class CDict(CoreExpr):
    """A dictionary tuple; evaluation counts as one dictionary
    construction."""

    __slots__ = ("items", "tag")
    items: List[CoreExpr]
    tag: str  # e.g. "Eq@[]" — which instance built it (for dumps)


@dataclass
class CSel(CoreExpr):
    """Select component *index* of an *arity*-tuple.

    ``from_dict`` marks dictionary selections — "a reference to a tuple
    element followed by a function call" is the paper's cost model for
    method dispatch, and this is the tuple-element reference."""

    __slots__ = ("index", "arity", "expr", "from_dict")
    index: int
    arity: int
    expr: CoreExpr
    from_dict: bool


@dataclass
class CoreBinding:
    """One top-level core definition."""

    name: str
    expr: CoreExpr
    kind: str = "user"  # user | default | impl | dict | selector | prim
    #: how many leading lambda parameters are dictionary parameters —
    #: the transforms (inner entry points, specialisation) key off this
    dict_arity: int = 0


@dataclass
class CoreProgram:
    """A complete translated program: an ordered list of top-level
    bindings (all mutually visible, i.e. one big letrec)."""

    bindings: List[CoreBinding] = field(default_factory=list)

    def names(self) -> List[str]:
        return [b.name for b in self.bindings]

    def binding(self, name: str) -> CoreBinding:
        for b in self.bindings:
            if b.name == name:
                return b
        raise KeyError(name)

    def extend(self, more: List[CoreBinding]) -> "CoreProgram":
        return CoreProgram(self.bindings + more)


# --------------------------------------------------------------------------
# Construction and traversal helpers
# --------------------------------------------------------------------------

def capp(fn: CoreExpr, *args: CoreExpr) -> CoreExpr:
    out = fn
    for a in args:
        out = CApp(out, a)
    return out


def app_spine(expr: CoreExpr) -> Tuple[CoreExpr, List[CoreExpr]]:
    args: List[CoreExpr] = []
    while isinstance(expr, CApp):
        args.append(expr.arg)
        expr = expr.fn
    args.reverse()
    return expr, args


def free_vars(expr: CoreExpr) -> List[str]:
    """Free variables in first-occurrence order."""
    out: List[str] = []
    seen = set()

    def go(e: CoreExpr, bound: frozenset) -> None:
        if isinstance(e, CVar):
            if e.name not in bound and e.name not in seen:
                seen.add(e.name)
                out.append(e.name)
        elif isinstance(e, CApp):
            go(e.fn, bound)
            go(e.arg, bound)
        elif isinstance(e, CLam):
            go(e.body, bound | frozenset(e.params))
        elif isinstance(e, CLet):
            names = frozenset(n for n, _ in e.binds)
            inner = bound | names if e.recursive else bound
            for _, rhs in e.binds:
                go(rhs, inner)
            go(e.body, bound | names)
        elif isinstance(e, CCase):
            go(e.scrutinee, bound)
            for alt in e.alts:
                go(alt.body, bound | frozenset(alt.binders))
            for lalt in e.lit_alts:
                go(lalt.body, bound)
            if e.default is not None:
                go(e.default, bound)
        elif isinstance(e, (CTuple, CDict)):
            for item in e.items:
                go(item, bound)
        elif isinstance(e, CSel):
            go(e.expr, bound)
        # CLit, CCon: nothing

    go(expr, frozenset())
    return out


def map_subexprs(expr: CoreExpr, fn) -> CoreExpr:
    """Rebuild *expr* with *fn* applied to each immediate child."""
    if isinstance(expr, CApp):
        return CApp(fn(expr.fn), fn(expr.arg))
    if isinstance(expr, CLam):
        return CLam(list(expr.params), fn(expr.body))
    if isinstance(expr, CLet):
        return CLet([(n, fn(e)) for n, e in expr.binds], fn(expr.body),
                    expr.recursive)
    if isinstance(expr, CCase):
        return CCase(
            fn(expr.scrutinee),
            [CAlt(a.con_name, list(a.binders), fn(a.body)) for a in expr.alts],
            [CLitAlt(a.value, a.kind, fn(a.body)) for a in expr.lit_alts],
            fn(expr.default) if expr.default is not None else None)
    if isinstance(expr, CTuple):
        return CTuple([fn(i) for i in expr.items])
    if isinstance(expr, CDict):
        return CDict([fn(i) for i in expr.items], expr.tag)
    if isinstance(expr, CSel):
        return CSel(expr.index, expr.arity, fn(expr.expr), expr.from_dict)
    return expr


def count_nodes(expr: CoreExpr) -> int:
    n = 1
    if isinstance(expr, CApp):
        return 1 + count_nodes(expr.fn) + count_nodes(expr.arg)
    if isinstance(expr, CLam):
        return 1 + count_nodes(expr.body)
    if isinstance(expr, CLet):
        return (1 + sum(count_nodes(e) for _, e in expr.binds)
                + count_nodes(expr.body))
    if isinstance(expr, CCase):
        n += count_nodes(expr.scrutinee)
        for alt in expr.alts:
            n += count_nodes(alt.body)
        for lalt in expr.lit_alts:
            n += count_nodes(lalt.body)
        if expr.default is not None:
            n += count_nodes(expr.default)
        return n
    if isinstance(expr, (CTuple, CDict)):
        return 1 + sum(count_nodes(i) for i in expr.items)
    if isinstance(expr, CSel):
        return 1 + count_nodes(expr.expr)
    return n
