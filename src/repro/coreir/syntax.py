"""The core intermediate representation.

A deliberately small untyped language::

    e ::= x | lit | K | e e | \\x1 .. xn -> e
        | let[rec] { x = e; ... } in e
        | case e of { K x1..xk -> e ; ... ; lit -> e ; ... ; _ -> e }
        | (e1, ..., en)            -- tuple
        | dict(e1, ..., en)        -- dictionary tuple (instrumented)
        | sel_i/n e                -- tuple/dictionary selection

Dictionaries are ordinary tuples operationally; the distinct node kinds
(:class:`CDict`, :class:`CSel` with ``from_dict``) exist so the
evaluator can count dictionary constructions and method selections —
the two run-time costs the paper attributes to type classes
(section 9).

The language stays *operationally* untyped, but binders may carry
optional annotations (:class:`Ann` on :class:`CLam` parameters and
:class:`CAlt` binders; a type scheme and dictionary-parameter classes
on :class:`CoreBinding`).  Translation emits them from the inference
results instead of discarding them; the transforms preserve or update
them; ``repro.coreir.lint`` checks them after every pass (see
docs/CORE.md).  Annotations never change evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(slots=True)
class Ann:
    """An optional binder annotation.

    ``type`` is a rendered type (stable positional variable names, the
    same rendering ``scheme_str`` uses), carried for dumps and docs;
    ``dict_class`` names the class whose dictionary the binder receives
    when the binder is a dictionary parameter.  Both default to None —
    an :class:`Ann` records whatever inference knew, no more.
    """

    type: Optional[str] = None
    dict_class: Optional[str] = None


class CoreExpr:
    """Base class for core expressions."""

    __slots__ = ()


@dataclass
class CVar(CoreExpr):
    __slots__ = ("name",)
    name: str


@dataclass
class CLit(CoreExpr):
    """Literal.  ``kind`` in {int, float, char, string}; string literals
    expand to character lists lazily at evaluation time."""

    __slots__ = ("value", "kind")
    value: Any
    kind: str


@dataclass
class CCon(CoreExpr):
    """A data constructor used as a (curried) value."""

    __slots__ = ("name", "arity")
    name: str
    arity: int


@dataclass
class CApp(CoreExpr):
    __slots__ = ("fn", "arg")
    fn: CoreExpr
    arg: CoreExpr


@dataclass(slots=True)
class CLam(CoreExpr):
    """``\\x1 .. xn -> body``.

    ``anns``, when present, is parallel to ``params`` (one entry per
    parameter, entries may be None).  Transforms that split, merge or
    drop parameters must keep the two lists in step — the lint checks
    the lengths agree.
    """

    params: List[str]
    body: CoreExpr
    anns: Optional[List[Optional[Ann]]] = None


@dataclass
class CLet(CoreExpr):
    __slots__ = ("binds", "body", "recursive")
    binds: List[Tuple[str, CoreExpr]]
    body: CoreExpr
    recursive: bool


@dataclass(slots=True)
class CAlt:
    """``K x1 .. xk -> body``.

    ``anns``, when present, is parallel to ``binders`` — the translator
    fills in the constructor's field types."""

    con_name: str
    binders: List[str]
    body: CoreExpr
    anns: Optional[List[Optional[Ann]]] = None


@dataclass
class CLitAlt:
    """``lit -> body`` (chars and unboxed ints from derived code)."""

    __slots__ = ("value", "kind", "body")
    value: Any
    kind: str
    body: CoreExpr


@dataclass
class CCase(CoreExpr):
    __slots__ = ("scrutinee", "alts", "lit_alts", "default")
    scrutinee: CoreExpr
    alts: List[CAlt]
    lit_alts: List[CLitAlt]
    default: Optional[CoreExpr]


@dataclass
class CTuple(CoreExpr):
    __slots__ = ("items",)
    items: List[CoreExpr]


@dataclass
class CDict(CoreExpr):
    """A dictionary tuple; evaluation counts as one dictionary
    construction."""

    __slots__ = ("items", "tag")
    items: List[CoreExpr]
    tag: str  # e.g. "Eq@[]" — which instance built it (for dumps)


@dataclass
class CSel(CoreExpr):
    """Select component *index* of an *arity*-tuple.

    ``from_dict`` marks dictionary selections — "a reference to a tuple
    element followed by a function call" is the paper's cost model for
    method dispatch, and this is the tuple-element reference."""

    __slots__ = ("index", "arity", "expr", "from_dict")
    index: int
    arity: int
    expr: CoreExpr
    from_dict: bool


@dataclass
class CoreBinding:
    """One top-level core definition."""

    name: str
    expr: CoreExpr
    kind: str = "user"  # user | default | impl | dict | selector | prim
    #: how many leading lambda parameters are dictionary parameters —
    #: the transforms (inner entry points, specialisation) key off this
    dict_arity: int = 0
    #: the binding's type scheme (a ``repro.core.types.Scheme``), when
    #: inference produced one; None for generated helpers.  The lint
    #: checks that the scheme's predicate list agrees with
    #: ``dict_arity``/``dict_classes``, so transforms that drop
    #: dictionary parameters must clear (or rewrite) this too.
    type_ann: Optional[Any] = None
    #: class constrained by each dictionary parameter, in parameter
    #: order; None when unannotated.  When present its length must
    #: equal ``dict_arity``.
    dict_classes: Optional[Tuple[str, ...]] = None
    #: where a generated binding came from — the specializer records
    #: "clone of f at <dict vector> ..." here; the pretty-printer shows
    #: it as a comment (``--dump-after=specialize``).  None for
    #: ordinary bindings.
    provenance: Optional[str] = None


@dataclass
class CoreProgram:
    """A complete translated program: an ordered list of top-level
    bindings (all mutually visible, i.e. one big letrec)."""

    bindings: List[CoreBinding] = field(default_factory=list)

    def names(self) -> List[str]:
        return [b.name for b in self.bindings]

    def binding(self, name: str) -> CoreBinding:
        for b in self.bindings:
            if b.name == name:
                return b
        raise KeyError(name)

    def extend(self, more: List[CoreBinding]) -> "CoreProgram":
        return CoreProgram(self.bindings + more)


# --------------------------------------------------------------------------
# Construction and traversal helpers
# --------------------------------------------------------------------------

def capp(fn: CoreExpr, *args: CoreExpr) -> CoreExpr:
    out = fn
    for a in args:
        out = CApp(out, a)
    return out


def app_spine(expr: CoreExpr) -> Tuple[CoreExpr, List[CoreExpr]]:
    args: List[CoreExpr] = []
    while isinstance(expr, CApp):
        args.append(expr.arg)
        expr = expr.fn
    args.reverse()
    return expr, args


# Free-variable analysis lives in repro.coreir.fv (shared with the
# transforms and the lint); re-exported here for the many existing
# importers.  The import sits below the class definitions because fv
# imports them from this module.
from repro.coreir.fv import free_vars  # noqa: E402


def map_subexprs(expr: CoreExpr, fn) -> CoreExpr:
    """Rebuild *expr* with *fn* applied to each immediate child.

    Binder annotations are preserved verbatim — the children change,
    the binders do not.  When every child maps to itself the original
    node is returned unchanged: transforms built on this walker
    preserve object identity for untouched subtrees, which the
    pass-manager lint cache relies on to skip re-checking them."""
    if isinstance(expr, CApp):
        f, a = fn(expr.fn), fn(expr.arg)
        if f is expr.fn and a is expr.arg:
            return expr
        return CApp(f, a)
    if isinstance(expr, CLam):
        body = fn(expr.body)
        if body is expr.body:
            return expr
        return CLam(list(expr.params), body, expr.anns)
    if isinstance(expr, CLet):
        binds = [(n, fn(e)) for n, e in expr.binds]
        body = fn(expr.body)
        if body is expr.body and all(
                new is old for (_, new), (_, old) in zip(binds, expr.binds)):
            return expr
        return CLet(binds, body, expr.recursive)
    if isinstance(expr, CCase):
        scrut = fn(expr.scrutinee)
        alt_bodies = [fn(a.body) for a in expr.alts]
        lit_bodies = [fn(a.body) for a in expr.lit_alts]
        default = fn(expr.default) if expr.default is not None else None
        if (scrut is expr.scrutinee and default is expr.default
                and all(b is a.body for b, a in zip(alt_bodies, expr.alts))
                and all(b is a.body
                        for b, a in zip(lit_bodies, expr.lit_alts))):
            return expr
        return CCase(
            scrut,
            [CAlt(a.con_name, list(a.binders), b, a.anns)
             for a, b in zip(expr.alts, alt_bodies)],
            [CLitAlt(a.value, a.kind, b)
             for a, b in zip(expr.lit_alts, lit_bodies)],
            default)
    if isinstance(expr, CTuple):
        items = [fn(i) for i in expr.items]
        if all(n is o for n, o in zip(items, expr.items)):
            return expr
        return CTuple(items)
    if isinstance(expr, CDict):
        items = [fn(i) for i in expr.items]
        if all(n is o for n, o in zip(items, expr.items)):
            return expr
        return CDict(items, expr.tag)
    if isinstance(expr, CSel):
        sub = fn(expr.expr)
        if sub is expr.expr:
            return expr
        return CSel(expr.index, expr.arity, sub, expr.from_dict)
    return expr


def count_nodes(expr: CoreExpr) -> int:
    n = 1
    if isinstance(expr, CApp):
        return 1 + count_nodes(expr.fn) + count_nodes(expr.arg)
    if isinstance(expr, CLam):
        return 1 + count_nodes(expr.body)
    if isinstance(expr, CLet):
        return (1 + sum(count_nodes(e) for _, e in expr.binds)
                + count_nodes(expr.body))
    if isinstance(expr, CCase):
        n += count_nodes(expr.scrutinee)
        for alt in expr.alts:
            n += count_nodes(alt.body)
        for lalt in expr.lit_alts:
            n += count_nodes(lalt.body)
        if expr.default is not None:
            n += count_nodes(expr.default)
        return n
    if isinstance(expr, (CTuple, CDict)):
        return 1 + sum(count_nodes(i) for i in expr.items)
    if isinstance(expr, CSel):
        return 1 + count_nodes(expr.expr)
    return n
