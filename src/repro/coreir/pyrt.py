"""Runtime support for the compiled (core → Python) backend.

:mod:`repro.coreir.pygen` translates core IR into Python source; the
generated code runs against this tiny runtime:

* :class:`Thunk` — a mutable, memoised suspension (call-by-need);
* :class:`Con` — a saturated data constructor;
* :class:`PFun` — a curried function value carrying its arity, so that
  partial and over-application both work through :func:`apply_fn`;
* counters mirroring the interpreter's :class:`~repro.coreir.eval.EvalStats`
  fields, so compiled runs report the same §9 quantities.

The generated code is self-contained modulo this module — it can be
dumped to a file, inspected, and executed with only ``pyrt`` on the
path, which is exactly what a native backend of the paper's era would
have produced (closure-converted code plus a small RTS).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


class Counters:
    __slots__ = ("dict_constructions", "dict_selections", "fun_calls",
                 "prim_calls")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.dict_constructions = 0
        self.dict_selections = 0
        self.fun_calls = 0
        self.prim_calls = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "dict_constructions": self.dict_constructions,
            "dict_selections": self.dict_selections,
            "fun_calls": self.fun_calls,
            "prim_calls": self.prim_calls,
        }


class Thunk:
    """A suspended computation; ``fn`` is dropped after memoisation."""

    __slots__ = ("fn", "value", "busy")

    def __init__(self, fn: Optional[Callable[[], Any]] = None) -> None:
        self.fn = fn
        self.value: Any = _PENDING
        self.busy = False


_PENDING = object()


class Con:
    """A saturated data constructor value."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple[Any, ...]) -> None:
        self.name = name
        self.args = args

    def __repr__(self) -> str:
        return f"Con({self.name}, {len(self.args)})"


class PFun:
    """A function value of known arity, possibly partially applied."""

    __slots__ = ("arity", "fn", "applied", "counters", "is_prim")

    def __init__(self, arity: int, fn: Callable,
                 applied: Tuple[Any, ...] = (),
                 counters: Optional[Counters] = None,
                 is_prim: bool = False) -> None:
        self.arity = arity
        self.fn = fn
        self.applied = applied
        self.counters = counters
        self.is_prim = is_prim


class PyRtError(Exception):
    """Raised by compiled programs (pattern failures, user error)."""


def force(value: Any) -> Any:
    """Weak-head normal form."""
    while type(value) is Thunk:
        if value.value is not _PENDING:
            value = value.value
            continue
        if value.busy:
            raise PyRtError("<<loop>>: value depends on itself")
        value.busy = True
        try:
            result = force(value.fn())  # type: ignore[misc]
        finally:
            value.busy = False
        value.value = result
        value.fn = None
        value = result
    return value


def apply_fn(counters: Counters, fn: Any, *args: Any) -> Any:
    """Apply *fn* (after forcing) to thunked arguments, handling
    partial and over-application."""
    fn = force(fn)
    pending: Tuple[Any, ...] = args
    while pending:
        if type(fn) is PFun:
            have = fn.applied + pending[: fn.arity - len(fn.applied)]
            pending = pending[fn.arity - len(fn.applied):]
            if len(have) < fn.arity:
                return PFun(fn.arity, fn.fn, have, fn.counters, fn.is_prim)
            if fn.is_prim:
                counters.prim_calls += 1
            else:
                counters.fun_calls += 1
            fn = force(fn.fn(*have))
        elif isinstance(fn, _ConMaker):
            have = fn.applied + pending[: fn.arity - len(fn.applied)]
            pending = pending[fn.arity - len(fn.applied):]
            if len(have) < fn.arity:
                return _ConMaker(fn.name, fn.arity, have)
            fn = Con(fn.name, tuple(have))
        else:
            raise PyRtError(f"cannot apply non-function value {fn!r}")
    return fn


class _ConMaker:
    """A data constructor used as a first-class (curried) function."""

    __slots__ = ("name", "arity", "applied")

    def __init__(self, name: str, arity: int,
                 applied: Tuple[Any, ...] = ()) -> None:
        self.name = name
        self.arity = arity
        self.applied = applied


def con_maker(name: str, arity: int) -> Any:
    if arity == 0:
        return Con(name, ())
    return _ConMaker(name, arity)


def mkdict(counters: Counters, items: Tuple[Any, ...]) -> Tuple[Any, ...]:
    counters.dict_constructions += 1
    return items

def dsel(counters: Counters, index: int, value: Any) -> Any:
    counters.dict_selections += 1
    return force(value)[index]


def tsel(index: int, value: Any) -> Any:
    return force(value)[index]


def string_value(text: str) -> Any:
    out: Any = Con("[]", ())
    for ch in reversed(text):
        out = Con(":", (ch, out))
    return out


def match_fail(detail: str = "") -> Any:
    raise PyRtError(f"pattern match failure{': ' + detail if detail else ''}")


def to_python(value: Any) -> Any:
    """Mirror of :func:`repro.coreir.eval.value_to_python` for compiled
    values."""
    value = force(value)
    if isinstance(value, tuple):  # dictionaries
        return ("<dict>",)
    if isinstance(value, Con):
        if value.name == "True":
            return True
        if value.name == "False":
            return False
        if value.name == "()":
            return ()
        if value.name.startswith("(,"):
            return tuple(to_python(a) for a in value.args)
        if value.name in ("[]", ":"):
            items: List[Any] = []
            node = value
            while True:
                node = force(node)
                if node.name == "[]":
                    break
                items.append(to_python(node.args[0]))
                node = node.args[1]
            if items and all(isinstance(i, str) and len(i) == 1
                             for i in items):
                return "".join(items)
            return items
        return (value.name, *[to_python(a) for a in value.args])
    if isinstance(value, (PFun, _ConMaker)):
        return "<function>"
    return value


# ---------------------------------------------------------------------------
# Primitive implementations for compiled code.  Scalars are raw Python
# ints/floats/1-char strings; Bool is Con("True"/"False").
# ---------------------------------------------------------------------------

TRUE = Con("True", ())
FALSE = Con("False", ())


def _b(x: bool) -> Con:
    return TRUE if x else FALSE


def _reads_float(s: Any) -> Any:
    text = to_python(s)
    if not isinstance(text, str):
        text = ""
    stripped = text.lstrip()
    i, n = 0, len(stripped)
    if i < n and stripped[i] in "+-":
        i += 1
    start = i
    while i < n and stripped[i].isdigit():
        i += 1
    if i == start:
        return Con("[]", ())
    if i < n and stripped[i] == "." and i + 1 < n and stripped[i + 1].isdigit():
        i += 1
        while i < n and stripped[i].isdigit():
            i += 1
    if i < n and stripped[i] in "eE":
        j = i + 1
        if j < n and stripped[j] in "+-":
            j += 1
        if j < n and stripped[j].isdigit():
            i = j
            while i < n and stripped[i].isdigit():
                i += 1
    try:
        value = float(stripped[:i])
    except ValueError:
        return Con("[]", ())
    pair = (value, string_value(stripped[i:]))
    return Con(":", (Con("(,)", pair), Con("[]", ())))


def _error(msg: Any) -> Any:
    raise PyRtError(f"error: {to_python(msg)}")


def _div(a: int, b: int) -> int:
    if b == 0:
        raise PyRtError("division by zero")
    return a // b


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise PyRtError("division by zero")
    return a % b


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise PyRtError("division by zero")
    return a / b


def primitives(counters: Counters) -> Dict[str, Any]:
    """The primitive environment for one compiled program instance."""
    f = force

    def p(arity: int, fn: Callable) -> PFun:
        return PFun(arity, fn, (), counters, is_prim=True)

    return {
        "primAddInt": p(2, lambda a, b: f(a) + f(b)),
        "primSubInt": p(2, lambda a, b: f(a) - f(b)),
        "primMulInt": p(2, lambda a, b: f(a) * f(b)),
        "primDivInt": p(2, lambda a, b: _div(f(a), f(b))),
        "primModInt": p(2, lambda a, b: _mod(f(a), f(b))),
        "primNegInt": p(1, lambda a: -f(a)),
        "primEqInt": p(2, lambda a, b: _b(f(a) == f(b))),
        "primLtInt": p(2, lambda a, b: _b(f(a) < f(b))),
        "primLeInt": p(2, lambda a, b: _b(f(a) <= f(b))),
        "primShowInt": p(1, lambda a: string_value(str(f(a)))),
        "primAddFloat": p(2, lambda a, b: f(a) + f(b)),
        "primSubFloat": p(2, lambda a, b: f(a) - f(b)),
        "primMulFloat": p(2, lambda a, b: f(a) * f(b)),
        "primDivFloat": p(2, lambda a, b: _fdiv(f(a), f(b))),
        "primNegFloat": p(1, lambda a: -f(a)),
        "primEqFloat": p(2, lambda a, b: _b(f(a) == f(b))),
        "primLtFloat": p(2, lambda a, b: _b(f(a) < f(b))),
        "primLeFloat": p(2, lambda a, b: _b(f(a) <= f(b))),
        "primShowFloat": p(1, lambda a: string_value(repr(float(f(a))))),
        "primReadsFloat": p(1, _reads_float),
        "primIntToFloat": p(1, lambda a: float(f(a))),
        "primFloatToInt": p(1, lambda a: int(f(a))),
        "primEqChar": p(2, lambda a, b: _b(f(a) == f(b))),
        "primLeChar": p(2, lambda a, b: _b(f(a) <= f(b))),
        "primLtChar": p(2, lambda a, b: _b(f(a) < f(b))),
        "primOrd": p(1, lambda a: ord(f(a))),
        "primChr": p(1, lambda a: chr(f(a))),
        "error": p(1, _error),
        "seq": p(2, lambda a, b: (f(a), b)[1]),
    }
