"""A lazy (call-by-need) graph-reduction evaluator for the core IR.

Why an interpreter with counters: the paper's evaluation (section 9) is
about the *relative* run-time costs of dictionary passing — "the extra
level of indirection when dispatching a method function and the time
and space required to propagate dictionaries".  We cannot re-run the
Yale Haskell backend, so the evaluator charges a uniform cost model and
counts exactly the operations the paper talks about:

* ``dict_constructions`` — evaluations of :class:`CDict` nodes (one
  per dictionary tuple built at run time);
* ``dict_selections``   — evaluations of dictionary :class:`CSel`
  nodes (the "reference to a tuple element" in method dispatch);
* ``fun_calls``         — closure bodies entered;
* ``prim_calls``        — primitive applications;
* ``steps``             — total evaluation steps (a machine-independent
  time proxy);
* ``allocations``       — thunks + structures allocated.

Laziness is the default; ``call_by_need=False`` gives call-by-name
(no thunk memoisation), the "implementation that is not fully lazy"
whose repeated dictionary construction section 8.8 warns about.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import EvalError, ResourceLimitError
from repro.limits import DEFAULT_EVAL_DEPTH
from repro.coreir.syntax import (
    CApp,
    CCase,
    CCon,
    CDict,
    CLam,
    CLet,
    CLit,
    CoreExpr,
    CoreProgram,
    CSel,
    CTuple,
    CVar,
)


# --------------------------------------------------------------------------
# Values
# --------------------------------------------------------------------------

class Value:
    __slots__ = ()


class VInt(Value):
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"VInt({self.value})"


class VFloat(Value):
    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"VFloat({self.value})"


class VChar(Value):
    __slots__ = ("value",)

    def __init__(self, value: str) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"VChar({self.value!r})"


class VCon(Value):
    """A saturated data constructor; ``args`` are thunks or values."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[Any]) -> None:
        self.name = name
        self.args = args

    def __repr__(self) -> str:
        return f"VCon({self.name}, {len(self.args)} args)"


class VTuple(Value):
    __slots__ = ("items",)

    def __init__(self, items: List[Any]) -> None:
        self.items = items

    def __repr__(self) -> str:
        return f"VTuple({len(self.items)})"


class VDict(VTuple):
    """A dictionary: operationally a tuple, distinguished for dumps."""

    __slots__ = ("tag",)

    def __init__(self, items: List[Any], tag: str) -> None:
        super().__init__(items)
        self.tag = tag

    def __repr__(self) -> str:
        return f"VDict({self.tag}, {len(self.items)})"


class VClosure(Value):
    __slots__ = ("params", "body", "env", "applied")

    def __init__(self, params: List[str], body: CoreExpr, env: "Frame",
                 applied: Tuple[Any, ...] = ()) -> None:
        self.params = params
        self.body = body
        self.env = env
        self.applied = applied

    def __repr__(self) -> str:
        return f"VClosure({self.params})"


class VPrim(Value):
    __slots__ = ("name", "arity", "fn", "applied")

    def __init__(self, name: str, arity: int, fn: Callable,
                 applied: Tuple[Any, ...] = ()) -> None:
        self.name = name
        self.arity = arity
        self.fn = fn
        self.applied = applied

    def __repr__(self) -> str:
        return f"VPrim({self.name})"


class VPartialCon(Value):
    """A data constructor applied to fewer arguments than its arity."""

    __slots__ = ("name", "arity", "applied")

    def __init__(self, name: str, arity: int,
                 applied: Tuple[Any, ...] = ()) -> None:
        self.name = name
        self.arity = arity
        self.applied = applied


class Thunk:
    """A suspended computation, memoised under call-by-need."""

    __slots__ = ("expr", "env", "value", "forcing")

    def __init__(self, expr: CoreExpr, env: "Frame") -> None:
        self.expr = expr
        self.env = env
        self.value: Optional[Value] = None
        self.forcing = False


class Frame:
    """An environment frame: a dict of bindings plus a parent link."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Frame"] = None) -> None:
        self.vars: Dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        frame: Optional[Frame] = self
        while frame is not None:
            hit = frame.vars.get(name)
            if hit is not None:
                return hit
            if name in frame.vars:  # bound to None explicitly? not used
                return hit
            frame = frame.parent
        raise EvalError(f"unbound variable {name!r} at run time")


# --------------------------------------------------------------------------
# Statistics
# --------------------------------------------------------------------------

@dataclass
class EvalStats:
    steps: int = 0
    fun_calls: int = 0
    prim_calls: int = 0
    dict_constructions: int = 0
    dict_selections: int = 0
    tuple_selections: int = 0
    allocations: int = 0
    max_stack: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "steps": self.steps,
            "fun_calls": self.fun_calls,
            "prim_calls": self.prim_calls,
            "dict_constructions": self.dict_constructions,
            "dict_selections": self.dict_selections,
            "tuple_selections": self.tuple_selections,
            "allocations": self.allocations,
        }

    def reset(self) -> None:
        self.steps = 0
        self.fun_calls = 0
        self.prim_calls = 0
        self.dict_constructions = 0
        self.dict_selections = 0
        self.tuple_selections = 0
        self.allocations = 0
        self.max_stack = 0


# --------------------------------------------------------------------------
# The evaluator
# --------------------------------------------------------------------------

class Evaluator:
    def __init__(self, program: CoreProgram,
                 primitives: Optional[Dict[str, VPrim]] = None,
                 call_by_need: bool = True,
                 step_limit: int = 0,
                 max_depth: int = DEFAULT_EVAL_DEPTH) -> None:
        self.stats = EvalStats()
        self.call_by_need = call_by_need
        self.step_limit = step_limit
        # Interpreted recursion nests Python frames (eval -> force ->
        # eval ...).  The evaluator does NOT touch the process recursion
        # limit: raising it on a default-stack thread lets the C stack
        # overflow (SIGSEGV) before Python notices.  Deep evaluation must
        # run under with_big_stack(); the max_depth budget below turns
        # exhaustion into a clean ResourceLimitError either way.
        self.max_depth = max_depth
        self.depth = 0
        self.globals = Frame()
        if primitives:
            for name, prim in primitives.items():
                self.globals.vars[name] = prim
        for binding in program.bindings:
            self.globals.vars[binding.name] = Thunk(binding.expr, self.globals)

    # ------------------------------------------------------------ driving

    def run(self, name: str) -> Value:
        """Force the top-level binding *name* to weak head normal form."""
        return self.force(self.globals.lookup(name))

    def run_expr(self, expr: CoreExpr) -> Value:
        return self.force(self.eval(expr, self.globals))

    def deep(self, value: Any) -> Value:
        """Force *value* and, iteratively, every component — used to
        extract complete results.  An explicit worklist (with a visited
        set, so cyclic structures terminate) keeps result extraction
        from ever overflowing the Python stack, however long the list."""
        value = self.force(value)
        stack: List[Value] = [value]
        seen = set()
        while stack:
            v = stack.pop()
            if id(v) in seen:
                continue
            seen.add(id(v))
            if isinstance(v, VCon):
                v.args = [self.force(a) for a in v.args]
                stack.extend(v.args)
            elif isinstance(v, VTuple):
                v.items = [self.force(i) for i in v.items]
                stack.extend(v.items)
        return value

    # --------------------------------------------------------------- eval

    def force(self, value: Any) -> Value:
        while isinstance(value, Thunk):
            if value.value is not None:
                value = value.value
                continue
            if value.forcing:
                raise EvalError("<<loop>>: value depends on itself")
            value.forcing = True
            try:
                result = self.eval(value.expr, value.env)
                result = self.force(result)
            finally:
                value.forcing = False
            if self.call_by_need:
                value.value = result
                # Free the closure for the GC once memoised.
                value.expr = None  # type: ignore[assignment]
                value.env = None   # type: ignore[assignment]
            value = result
        return value

    def eval(self, expr: CoreExpr, env: Frame) -> Any:
        # One eval() frame per level of *non-tail* interpreted nesting
        # (tail calls loop inside this frame), so self.depth tracks the
        # real recursion depth.  The budget fires deterministically well
        # before a big-stack thread's 1M recursion limit is in danger.
        self.depth += 1
        stats = self.stats
        if self.depth > stats.max_stack:
            stats.max_stack = self.depth
        if self.max_depth and self.depth > self.max_depth:
            self.depth -= 1
            raise ResourceLimitError(
                f"evaluation nests too deeply (more than "
                f"{self.max_depth} levels); raise eval_depth_limit for "
                f"deeply recursive programs",
                limit="eval_depth_limit",
            )
        try:
            while True:
                stats.steps += 1
                if self.step_limit and stats.steps > self.step_limit:
                    raise EvalError(
                        f"evaluation exceeded the step limit "
                        f"({self.step_limit})")
                t = type(expr)
                if t is CVar:
                    return env.lookup(expr.name)
                if t is CLit:
                    return self.literal(expr)
                if t is CCon:
                    if expr.arity == 0:
                        return VCon(expr.name, [])
                    return VPartialCon(expr.name, expr.arity)
                if t is CLam:
                    return VClosure(expr.params, expr.body, env)
                if t is CApp:
                    # Evaluate the spine iteratively.
                    args: List[Any] = []
                    node = expr
                    while type(node) is CApp:
                        args.append(node.arg)
                        node = node.fn
                    args.reverse()
                    fn = self.force(self.eval(node, env))
                    arg_thunks = [self.mk_thunk(a, env) for a in args]
                    result = self.apply_many(fn, arg_thunks)
                    if isinstance(result, _TailCall):
                        expr, env = result.body, result.env
                        continue
                    return result
                if t is CLet:
                    frame = Frame(env)
                    if expr.recursive:
                        for name, rhs in expr.binds:
                            frame.vars[name] = Thunk(rhs, frame)
                            stats.allocations += 1
                    else:
                        for name, rhs in expr.binds:
                            frame.vars[name] = Thunk(rhs, env)
                            stats.allocations += 1
                    expr, env = expr.body, frame
                    continue
                if t is CCase:
                    scrut = self.force(self.eval(expr.scrutinee, env))
                    selected = self.select_alt(expr, scrut, env)
                    if selected is None:
                        raise EvalError(
                            f"no matching case alternative for {scrut!r}")
                    expr, env = selected
                    continue
                if t is CTuple:
                    stats.allocations += 1
                    return VTuple([self.mk_thunk(i, env) for i in expr.items])
                if t is CDict:
                    stats.allocations += 1
                    stats.dict_constructions += 1
                    return VDict([self.mk_thunk(i, env) for i in expr.items],
                                 expr.tag)
                if t is CSel:
                    value = self.force(self.eval(expr.expr, env))
                    if not isinstance(value, VTuple):
                        raise EvalError(
                            f"selection from non-tuple value {value!r}")
                    if expr.from_dict:
                        stats.dict_selections += 1
                    else:
                        stats.tuple_selections += 1
                    return value.items[expr.index]
                raise EvalError(f"cannot evaluate core node {expr!r}")
        finally:
            self.depth -= 1

    def mk_thunk(self, expr: CoreExpr, env: Frame) -> Any:
        # Trivial expressions do not need a suspension.
        t = type(expr)
        if t is CVar:
            return env.lookup(expr.name)
        if t is CLit and expr.kind != "string":
            return self.literal(expr)
        if t is CCon and expr.arity == 0:
            return VCon(expr.name, [])
        self.stats.allocations += 1
        return Thunk(expr, env)

    def literal(self, expr: CLit) -> Value:
        kind = expr.kind
        if kind == "int":
            return VInt(expr.value)
        if kind == "float":
            return VFloat(expr.value)
        if kind == "char":
            return VChar(expr.value)
        assert kind == "string"
        # Strings are [Char]: build the cons chain (lazily enough —
        # the chain itself is small and shared).
        out: Value = VCon("[]", [])
        for ch in reversed(expr.value):
            out = VCon(":", [VChar(ch), out])
        return out

    # ---------------------------------------------------------- applying

    def apply_many(self, fn: Value, args: List[Any]) -> Any:
        """Apply *fn* to *args*; returns a value or a _TailCall."""
        stats = self.stats
        while args:
            if isinstance(fn, VClosure):
                have = list(fn.applied)
                need = len(fn.params)
                take = min(need - len(have), len(args))
                have.extend(args[:take])
                args = args[take:]
                if len(have) < need:
                    return VClosure(fn.params, fn.body, fn.env, tuple(have))
                stats.fun_calls += 1
                frame = Frame(fn.env)
                for name, value in zip(fn.params, have):
                    frame.vars[name] = value
                if not args:
                    return _TailCall(fn.body, frame)
                fn = self.force(self.eval(fn.body, frame))
            elif isinstance(fn, VPrim):
                have = list(fn.applied)
                take = min(fn.arity - len(have), len(args))
                have.extend(args[:take])
                args = args[take:]
                if len(have) < fn.arity:
                    return VPrim(fn.name, fn.arity, fn.fn, tuple(have))
                stats.prim_calls += 1
                fn = fn.fn(self, *have)
                fn = self.force(fn)
            elif isinstance(fn, VPartialCon):
                have = list(fn.applied)
                take = min(fn.arity - len(have), len(args))
                have.extend(args[:take])
                args = args[take:]
                if len(have) < fn.arity:
                    return VPartialCon(fn.name, fn.arity, tuple(have))
                fn = VCon(fn.name, have)
                self.stats.allocations += 1
            else:
                raise EvalError(f"cannot apply non-function value {fn!r}")
        return fn

    # ------------------------------------------------------------ matching

    def select_alt(self, case: CCase, scrut: Value,
                   env: Frame) -> Optional[Tuple[CoreExpr, Frame]]:
        if isinstance(scrut, VCon):
            for alt in case.alts:
                if alt.con_name == scrut.name:
                    frame = Frame(env)
                    for name, value in zip(alt.binders, scrut.args):
                        frame.vars[name] = value
                    return alt.body, frame
        elif isinstance(scrut, VTuple):
            for alt in case.alts:
                if alt.con_name.startswith("(") and \
                        len(alt.binders) == len(scrut.items):
                    frame = Frame(env)
                    for name, value in zip(alt.binders, scrut.items):
                        frame.vars[name] = value
                    return alt.body, frame
        elif isinstance(scrut, (VInt, VFloat, VChar)):
            raw = scrut.value
            for lalt in case.lit_alts:
                if lalt.value == raw:
                    return lalt.body, env
        if case.default is not None:
            return case.default, env
        return None


class _TailCall:
    """Internal: a saturated closure call turned into a loop iteration."""

    __slots__ = ("body", "env")

    def __init__(self, body: CoreExpr, env: Frame) -> None:
        self.body = body
        self.env = env


# --------------------------------------------------------------------------
# Result extraction
# --------------------------------------------------------------------------

def value_to_python(evaluator: Evaluator, value: Any) -> Any:
    """Convert a core value to a Python object: Int/Float/Char to their
    Python counterparts, Bool to bool, [Char] to str, other lists to
    list, tuples to tuple, other constructors to ``(name, args...)``."""
    value = evaluator.force(value)
    if isinstance(value, VInt):
        return value.value
    if isinstance(value, VFloat):
        return value.value
    if isinstance(value, VChar):
        return value.value
    if isinstance(value, VDict):
        return ("<dict>", value.tag)
    if isinstance(value, VTuple):
        return tuple(value_to_python(evaluator, i) for i in value.items)
    if isinstance(value, VCon):
        if value.name == "True":
            return True
        if value.name == "False":
            return False
        if value.name == "()":
            return ()
        if value.name in ("[]", ":"):
            items = []
            node: Value = value
            while True:
                node = evaluator.force(node)
                if isinstance(node, VCon) and node.name == "[]":
                    break
                assert isinstance(node, VCon) and node.name == ":"
                items.append(value_to_python(evaluator, node.args[0]))
                node = node.args[1]
            if items and all(isinstance(i, str) and len(i) == 1
                             for i in items):
                return "".join(items)
            return items
        return (value.name,
                *[value_to_python(evaluator, a) for a in value.args])
    if isinstance(value, (VClosure, VPrim, VPartialCon)):
        return f"<function {getattr(value, 'name', '')}>"
    raise EvalError(f"cannot convert value {value!r}")


#: Recursion limit inside big-stack threads; a 512 MB stack holds this
#: many interpreted frames comfortably.
BIG_STACK_RECURSION_LIMIT = 1_000_000

_big_stack_lock: Any = None
_big_stack_active = 0
_big_stack_saved_limit = 0


def with_big_stack(fn: Callable[[], Any], stack_mb: int = 512) -> Any:
    """Run *fn* in a thread with a large stack — deep recursion in
    interpreted programs nests Python frames.

    The recursion limit and ``threading.stack_size`` are process-global,
    so concurrent callers coordinate through a lock and a nesting count:
    the limit is raised when the first big-stack thread starts and
    restored only when the last one finishes (restoring earlier would
    yank the floor out from under a thread that is still deep).
    """
    import threading

    global _big_stack_lock, _big_stack_active, _big_stack_saved_limit
    if _big_stack_lock is None:
        _big_stack_lock = threading.Lock()

    result: List[Any] = []
    error: List[BaseException] = []

    def runner() -> None:
        try:
            result.append(fn())
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            error.append(exc)

    with _big_stack_lock:
        if _big_stack_active == 0:
            _big_stack_saved_limit = sys.getrecursionlimit()
            if _big_stack_saved_limit < BIG_STACK_RECURSION_LIMIT:
                sys.setrecursionlimit(BIG_STACK_RECURSION_LIMIT)
        _big_stack_active += 1
        # stack_size is global too: set it, start the thread (which
        # snapshots it), and reset before releasing the lock.
        threading.stack_size(stack_mb * 1024 * 1024)
        try:
            thread = threading.Thread(target=runner)
            thread.start()
        except BaseException:
            _big_stack_active -= 1
            if (_big_stack_active == 0
                    and sys.getrecursionlimit() == BIG_STACK_RECURSION_LIMIT):
                sys.setrecursionlimit(_big_stack_saved_limit)
            raise
        finally:
            threading.stack_size(0)
    try:
        thread.join()
    finally:
        with _big_stack_lock:
            _big_stack_active -= 1
            if (_big_stack_active == 0
                    and sys.getrecursionlimit() == BIG_STACK_RECURSION_LIMIT):
                sys.setrecursionlimit(_big_stack_saved_limit)
    if error:
        raise error[0]
    return result[0]
