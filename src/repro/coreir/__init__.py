"""The dictionary-passing core language and its evaluator.

After type checking and dictionary conversion, programs are translated
into a small untyped lambda calculus with explicit data constructors,
tuples, *dictionaries* (tuples tagged for instrumentation) and flat
case expressions.  The lazy evaluator counts dictionary constructions,
selector applications and function calls so the paper's performance
claims (section 9) can be measured as operation counts as well as
wall-clock time.
"""

from repro.coreir.syntax import (
    CApp,
    CCase,
    CAlt,
    CLitAlt,
    CCon,
    CDict,
    CLam,
    CLet,
    CLit,
    CSel,
    CTuple,
    CVar,
    CoreBinding,
    CoreExpr,
    CoreProgram,
)
from repro.coreir.eval import Evaluator, EvalStats, value_to_python
from repro.coreir.translate import translate_bindings, translate_expr

__all__ = [
    "CApp", "CCase", "CAlt", "CLitAlt", "CCon", "CDict", "CLam", "CLet",
    "CLit", "CSel", "CTuple", "CVar", "CoreBinding", "CoreExpr",
    "CoreProgram", "Evaluator", "EvalStats", "value_to_python",
    "translate_bindings", "translate_expr",
]
