"""Pretty printer for core IR — used by ``dump_core``, tests and the
paper-example goldens.

Every core node kind prints distinctly:

* ``dict<tag>[e1, ..]`` — a :class:`CDict` with its provenance tag
  (``dict[..]`` when untagged);
* ``e!i`` / ``e.i`` — a :class:`CSel`, ``!`` marking a
  dictionary-method selection (``from_dict``) and ``.`` a plain tuple
  selection;
* ``pp_binding(b, annotations=True)`` additionally renders the typed
  annotations the translator records — the binding's scheme and its
  dictionary-parameter classes — as ``--`` comment lines, which is the
  form ``--dump-after`` uses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coreir.syntax import (
    CApp,
    CCase,
    CCon,
    CDict,
    CLam,
    CLet,
    CLit,
    CoreBinding,
    CoreProgram,
    CSel,
    CTuple,
    CVar,
)


def pp_core(expr, prec: int = 0) -> str:
    if isinstance(expr, CVar):
        return expr.name
    if isinstance(expr, CCon):
        return expr.name if expr.name != ":" else "(:)"
    if isinstance(expr, CLit):
        if expr.kind == "string":
            return '"' + str(expr.value) + '"'
        if expr.kind == "char":
            return f"'{expr.value}'"
        return str(expr.value)
    if isinstance(expr, CApp):
        inner = f"{pp_core(expr.fn, 10)} {pp_core(expr.arg, 11)}"
        return f"({inner})" if prec > 10 else inner
    if isinstance(expr, CLam):
        inner = f"\\{' '.join(expr.params)} -> {pp_core(expr.body)}"
        return f"({inner})" if prec > 0 else inner
    if isinstance(expr, CLet):
        word = "letrec" if expr.recursive else "let"
        binds = "; ".join(f"{n} = {pp_core(e)}" for n, e in expr.binds)
        inner = f"{word} {{ {binds} }} in {pp_core(expr.body)}"
        return f"({inner})" if prec > 0 else inner
    if isinstance(expr, CCase):
        parts = []
        for alt in expr.alts:
            lhs = " ".join([alt.con_name] + alt.binders)
            parts.append(f"{lhs} -> {pp_core(alt.body)}")
        for lalt in expr.lit_alts:
            parts.append(f"{lalt.value!r} -> {pp_core(lalt.body)}")
        if expr.default is not None:
            parts.append(f"_ -> {pp_core(expr.default)}")
        inner = f"case {pp_core(expr.scrutinee)} of {{ {'; '.join(parts)} }}"
        return f"({inner})" if prec > 0 else inner
    if isinstance(expr, CTuple):
        return "(" + ", ".join(pp_core(i) for i in expr.items) + ")"
    if isinstance(expr, CDict):
        tag = f"<{expr.tag}>" if expr.tag else ""
        return f"dict{tag}[" + \
            ", ".join(pp_core(i) for i in expr.items) + "]"
    if isinstance(expr, CSel):
        mark = "!" if expr.from_dict else "."
        return f"{pp_core(expr.expr, 11)}{mark}{expr.index}"
    return repr(expr)


def pp_binding(binding: CoreBinding, annotations: bool = False) -> str:
    line = f"{binding.name} = {pp_core(binding.expr)}"
    if not annotations:
        return line
    notes = []
    if binding.provenance:
        notes.append(f"-- {binding.name}: {binding.provenance}")
    if binding.type_ann is not None:
        notes.append(f"-- {binding.name} :: {binding.type_ann}")
    if binding.dict_classes:
        notes.append(f"-- {binding.name} dicts: "
                     f"{', '.join(binding.dict_classes)}")
    return "\n".join(notes + [line])


def pp_program(program: CoreProgram,
               names: Optional[List[str]] = None,
               annotations: bool = False) -> str:
    lines = []
    for b in program.bindings:
        if names is None or b.name in names:
            lines.append(pp_binding(b, annotations))
    return "\n".join(lines)
