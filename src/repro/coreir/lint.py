"""Core Lint: check the invariants every pipeline pass must preserve.

GHC runs a lint over its typed Core after every simplifier pass; this
module is the analogue for our core IR.  A lint failure is always a
*compiler* bug — a transform broke scoping, an arity, a dictionary
shape or an annotation — never a user error, so every failure names
the offending pass (when run as a pass-manager verifier) and the
top-level binding it was found in.

Checks, with their stable error codes (see docs/CORE.md):

``lint.scope``
    every variable occurrence is bound by an enclosing binder, a
    top-level binding, a primitive, or a caller-supplied extra global;
``lint.shadow``
    no duplicate binders within a single group (a lambda's parameter
    list, one let group, one case alternative), and no duplicate
    top-level names for *generated* bindings (dictionaries, selectors,
    method implementations).  Ordinary nested shadowing is legal, and
    so is a later ``user`` binding redefining an earlier one — that is
    how a program shadows a prelude name (the evaluator's globals are
    last-wins);
``lint.con-arity``
    constructor values and case alternatives agree with the declared
    constructor arities;
``lint.sel``
    tuple/dictionary selections are in bounds, and agree with literal
    tuple or dictionary operands;
``lint.dict-shape``
    a dictionary tuple has exactly the slots its class's layout
    prescribes (the tag names the instance that built it);
``lint.annotation``
    binder annotation lists stay parallel to binder lists, and
    dictionary-parameter annotations agree with the binding's declared
    ``dict_classes``;
``lint.type``
    where a binding carries its inference scheme, the scheme's
    predicates agree with the dictionary parameters, and a positive
    ``dict_arity`` is realised by an actual lambda.

The lint never mutates the program and runs in one walk per binding.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.errors import (
    LintAnnotationError,
    LintConArityError,
    LintDictShapeError,
    LintScopeError,
    LintSelError,
    LintShadowError,
    LintTypeError,
)
from repro.coreir.syntax import (
    CApp,
    CCase,
    CCon,
    CDict,
    CLam,
    CLet,
    CoreBinding,
    CoreProgram,
    CSel,
    CTuple,
    CVar,
)


_PRIMITIVES: Optional[frozenset] = None


def _primitive_names() -> frozenset:
    """The primitive global scope, computed once — the set is identical
    for every lint and ``primitive_schemes()`` rebuilds its table per
    call."""
    global _PRIMITIVES
    if _PRIMITIVES is None:
        from repro.prelude import primitive_schemes
        _PRIMITIVES = frozenset(primitive_schemes())
    return _PRIMITIVES


def _duplicates(names: Iterable[str]) -> List[str]:
    seen: Set[str] = set()
    dupes: List[str] = []
    for n in names:
        if n in seen and n not in dupes:
            dupes.append(n)
        seen.add(n)
    return dupes


def _tuple_con_arity(name: str) -> Optional[int]:
    """Arity of a tuple constructor name ``(,)``/``(,,)``/…, else None.
    The unit constructor ``()`` is an ordinary registered data con."""
    if (len(name) >= 3 and name[0] == "(" and name[-1] == ")"
            and set(name[1:-1]) == {","}):
        return len(name) - 1
    return None


def dict_tag_class(tag: str) -> Optional[str]:
    """The class a dictionary tag commits to, if it names one.

    Two producer formats exist: instance dictionaries are tagged with
    their binding name ``d$Class$Tycon`` and superclass converters with
    ``Need<=Have`` (the tuple built has *Need*'s layout).  Anything
    else (tests, ad-hoc cores) makes no claim and is not shape-checked.
    """
    if "<=" in tag:
        cls = tag.split("<=", 1)[0]
        return cls or None
    if tag.startswith("d$"):
        parts = tag.split("$")
        if len(parts) >= 3 and parts[1]:
            return parts[1]
    return None


class _Linter:
    def __init__(self, globals_: Set[str], con_arity, class_env,
                 pass_name: Optional[str]) -> None:
        self.globals = globals_
        self.con_arity = con_arity
        self.class_env = class_env
        self.pass_name = pass_name
        self.binding: Optional[str] = None
        # Dictionary sizes resolve through the class layout once per
        # class, not once per CDict node.
        self._dict_size: Dict[str, Optional[int]] = {}

    # ------------------------------------------------------------- failures

    def _fail(self, exc_class, message: str) -> None:
        raise exc_class(message, pass_name=self.pass_name,
                        binding=self.binding)

    # ------------------------------------------------------------- bindings

    def check_binding(self, b: CoreBinding) -> None:
        self.binding = b.name
        if b.dict_classes is not None and len(b.dict_classes) != b.dict_arity:
            self._fail(
                LintAnnotationError,
                f"dict_classes {list(b.dict_classes)} has "
                f"{len(b.dict_classes)} entries but dict_arity is "
                f"{b.dict_arity}")
        if b.dict_arity > 0:
            # Hoisting may leave the dictionary lambda under a let of
            # floated constructions; the lambda itself must still be
            # there.
            lam = b.expr
            while isinstance(lam, CLet):
                lam = lam.body
            if not (isinstance(lam, CLam)
                    and len(lam.params) >= b.dict_arity):
                self._fail(
                    LintTypeError,
                    f"dict_arity {b.dict_arity} but the right-hand side "
                    f"is not a lambda of at least that many parameters")
            if b.dict_classes is not None and lam.anns is not None:
                for i, cls in enumerate(b.dict_classes):
                    ann = lam.anns[i] if i < len(lam.anns) else None
                    if (ann is not None and ann.dict_class is not None
                            and ann.dict_class != cls):
                        self._fail(
                            LintAnnotationError,
                            f"dictionary parameter {i} annotated as class "
                            f"{ann.dict_class} but the binding declares "
                            f"{cls}")
        scheme = b.type_ann
        if scheme is not None:
            preds = getattr(scheme, "preds", None)
            if preds is not None:
                if len(preds) != b.dict_arity:
                    self._fail(
                        LintTypeError,
                        f"type scheme has {len(preds)} class "
                        f"constraint(s) but dict_arity is {b.dict_arity}")
                if b.dict_classes is not None:
                    declared = [p.class_name for p in preds]
                    if declared != list(b.dict_classes):
                        self._fail(
                            LintTypeError,
                            f"scheme constraints {declared} disagree with "
                            f"dict_classes {list(b.dict_classes)}")
        # Counting scope map: name -> number of live binders, so exiting
        # an inner binder never unbinds an outer one of the same name.
        self.expr(b.expr, {})

    # ---------------------------------------------------------- expressions

    def _enter(self, bound: Dict[str, int], names: Iterable[str]) -> None:
        for n in names:
            bound[n] = bound.get(n, 0) + 1

    def _exit(self, bound: Dict[str, int], names: Iterable[str]) -> None:
        for n in names:
            k = bound[n] - 1
            if k:
                bound[n] = k
            else:
                del bound[n]

    def _check_group(self, what: str, names: List[str]) -> None:
        # Fast path: most groups are one or two distinct names.
        if len(names) > 1 and len(set(names)) != len(names):
            self._fail(LintShadowError,
                       f"duplicate binder(s) {_duplicates(names)} "
                       f"in one {what}")

    def _check_anns(self, what: str, names: List[str], anns) -> None:
        if anns is not None and len(anns) != len(names):
            self._fail(
                LintAnnotationError,
                f"{what} has {len(names)} binder(s) but "
                f"{len(anns)} annotation(s)")

    def expr(self, e, bound: Dict[str, int]) -> None:
        # The walk is on every compile's critical path when the lint is
        # enabled, so the dispatch is by exact class (core nodes are
        # never subclassed) with the hottest nodes first, and an
        # application spine is unrolled iteratively.
        t = e.__class__
        while t is CApp:
            self.expr(e.arg, bound)
            e = e.fn
            t = e.__class__
        if t is CVar:
            if e.name not in bound and e.name not in self.globals:
                self._fail(LintScopeError,
                           f"variable '{e.name}' is not in scope")
        elif t is CLam:
            self._check_group("lambda parameter list", e.params)
            self._check_anns("lambda", e.params, e.anns)
            self._enter(bound, e.params)
            self.expr(e.body, bound)
            self._exit(bound, e.params)
        elif t is CLet:
            names = [n for n, _ in e.binds]
            self._check_group("let group", names)
            if e.recursive:
                self._enter(bound, names)
                for _, rhs in e.binds:
                    self.expr(rhs, bound)
            else:
                for _, rhs in e.binds:
                    self.expr(rhs, bound)
                self._enter(bound, names)
            self.expr(e.body, bound)
            self._exit(bound, names)
        elif t is CCase:
            self.expr(e.scrutinee, bound)
            for alt in e.alts:
                self._check_group("case alternative", alt.binders)
                self._check_anns(f"alternative for {alt.con_name}",
                                 alt.binders, alt.anns)
                self._check_alt_arity(alt)
                self._enter(bound, alt.binders)
                self.expr(alt.body, bound)
                self._exit(bound, alt.binders)
            for lalt in e.lit_alts:
                self.expr(lalt.body, bound)
            if e.default is not None:
                self.expr(e.default, bound)
        elif t is CTuple:
            for item in e.items:
                self.expr(item, bound)
        elif t is CDict:
            self._check_dict_shape(e)
            for item in e.items:
                self.expr(item, bound)
        elif t is CSel:
            if not 0 <= e.index < e.arity:
                self._fail(LintSelError,
                           f"selection index {e.index} out of bounds for "
                           f"a {e.arity}-tuple")
            if (isinstance(e.expr, (CTuple, CDict))
                    and len(e.expr.items) != e.arity):
                self._fail(
                    LintSelError,
                    f"selection expects a {e.arity}-tuple but the operand "
                    f"literally has {len(e.expr.items)} component(s)")
            self.expr(e.expr, bound)
        elif t is CCon:
            self._check_con(e)
        # CLit: nothing to check

    # ------------------------------------------------------- shape checking

    def _expected_con_arity(self, name: str) -> Optional[int]:
        if self.con_arity is not None and name in self.con_arity:
            return self.con_arity[name]
        return _tuple_con_arity(name)

    def _check_con(self, e: CCon) -> None:
        expected = self._expected_con_arity(e.name)
        if expected is not None and e.arity != expected:
            self._fail(LintConArityError,
                       f"constructor {e.name} used with arity {e.arity} "
                       f"but it is declared with arity {expected}")

    def _check_alt_arity(self, alt) -> None:
        expected = self._expected_con_arity(alt.con_name)
        if expected is not None and len(alt.binders) != expected:
            self._fail(
                LintConArityError,
                f"alternative for {alt.con_name} binds "
                f"{len(alt.binders)} variable(s) but the constructor has "
                f"arity {expected}")

    def _check_dict_shape(self, e: CDict) -> None:
        if self.class_env is None:
            return
        cls = dict_tag_class(e.tag)
        if cls is None:
            return
        if cls not in self._dict_size:
            size: Optional[int] = None
            if cls in getattr(self.class_env, "classes", {}):
                if not self.class_env.uses_bare_dict(cls):
                    size = self.class_env.dict_size(cls)
            self._dict_size[cls] = size
        expected = self._dict_size[cls]
        if expected is not None and len(e.items) != expected:
            self._fail(
                LintDictShapeError,
                f"dictionary tagged '{e.tag}' has {len(e.items)} slot(s) "
                f"but a {cls} dictionary has {expected}")


def lint_program(program: CoreProgram, *,
                 extra_globals: Optional[Iterable[str]] = None,
                 con_arity: Optional[Dict[str, int]] = None,
                 class_env=None,
                 pass_name: Optional[str] = None,
                 cache: Optional[Dict] = None) -> None:
    """Lint a whole core program; raises a :class:`CoreLintError`
    subclass on the first violation.

    *con_arity* and *class_env* enable the arity and dictionary-shape
    checks; without them only scoping, shadowing, selection-bounds and
    annotation invariants are checked.  *pass_name* is stamped into any
    failure so a pipeline verifier can say which pass broke the
    program.

    *cache* (a dict the caller keeps for one compilation, e.g. on the
    compile context) lets consecutive lints of the same program skip
    bindings that are the *same objects* as last time.  Core nodes are
    immutable and every binding-local check depends only on the binding
    itself, so a previously clean binding can only become dirty through
    its free variables — and only if a name it relied on disappeared.
    The cache therefore remembers the global scope it last checked
    against and flushes whenever the new scope is not a superset of it;
    while the scope only grows (the pipeline adds selectors and
    specialised clones, it never deletes), skipping identical bindings
    is sound."""
    globals_: Set[str] = set(_primitive_names())
    if extra_globals is not None:
        globals_.update(extra_globals)
    names = [b.name for b in program.bindings]
    # Last-wins redefinition of a 'user' binding is the documented way
    # a later unit shadows an earlier one (e.g. a program redefining a
    # prelude function); a *generated* binding appearing twice is a
    # compiler bug.
    generated = {b.name for b in program.bindings if b.kind != "user"}
    dupes = [n for n in _duplicates(names) if n in generated]
    if dupes:
        raise LintShadowError(
            f"duplicate top-level binding(s) {dupes} of generated kind",
            pass_name=pass_name)
    globals_.update(names)
    linter = _Linter(globals_, con_arity, class_env, pass_name)
    if cache is None:
        for b in program.bindings:
            linter.check_binding(b)
        return
    seen: Dict[int, CoreBinding] = cache.get("seen") or {}
    prev = cache.get("globals")
    if prev is None or not prev.issubset(globals_):
        seen = {}
    for b in program.bindings:
        if seen.get(id(b)) is b:
            continue
        linter.check_binding(b)
        seen[id(b)] = b
    cache["seen"] = seen
    cache["globals"] = globals_


def lint_expr(expr, *, globals_: Optional[Iterable[str]] = None,
              con_arity: Optional[Dict[str, int]] = None,
              class_env=None,
              pass_name: Optional[str] = None) -> None:
    """Lint one expression against a caller-supplied global scope
    (REPL snippets, test fragments)."""
    linter = _Linter(set(globals_ or ()), con_arity, class_env, pass_name)
    linter.expr(expr, {})
