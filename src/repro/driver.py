"""Public compilation entry points over the shared pass pipeline.

    source text
      -> parse / desugar / static / install-methods / infer   (per unit)
      -> translate -> selectors -> core transforms            (program)
      -> evaluation           (repro.coreir.eval)

The sequence itself lives in :mod:`repro.pipeline.passes`; this module
wraps a pipeline run into a :class:`CompiledProgram`.  The same
sequence serves the prelude snapshot builder and the compile server
(:mod:`repro.service.snapshot`), so there is exactly one definition of
"how a program is compiled".

Use :func:`compile_source` for a one-shot compile (the prelude is
compiled in front of the user program) and
:meth:`CompiledProgram.run` / :meth:`CompiledProgram.eval` to execute.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.errors import MonomorphismWarning
from repro.limits import ensure_recursion_headroom, recursion_fence
from repro.core.infer import Inferencer, InferResult
from repro.core.static import StaticEnv
from repro.core.types import Scheme, qual_type_str
from repro.coreir.eval import (Evaluator, EvalStats, Thunk, value_to_python,
                               with_big_stack)
from repro.coreir.syntax import CoreBinding, CoreExpr, CoreProgram
from repro.coreir.translate import Translator
from repro.lang.desugar import desugar_expr
from repro.lang.parser import parse_expr
from repro.options import CompilerOptions
from repro.pipeline import CompileContext, PhaseTrace, default_pass_manager
from repro.prelude import PRELUDE_SOURCE, PRIMITIVES


@dataclass
class CompileStats:
    """Front-end statistics (experiment E1 reads these).

    ``phases`` is the pipeline's :class:`~repro.pipeline.PhaseTrace` —
    per-pass wall time and invocation counts for this compilation; the
    other fields are totals from the unifier.
    """

    unify_count: int = 0
    context_reductions: int = 0
    constraint_propagations: int = 0
    bindings: int = 0
    phases: Optional[PhaseTrace] = None


@dataclass(frozen=True)
class CompiledExpr:
    """An expression compiled against a program's scope, ready to be
    evaluated repeatedly (see :meth:`CompiledProgram.compile_expr`).

    ``core_extra`` holds the helper bindings (hoisted dictionaries,
    local lets) the inferencer generated for this expression; they are
    installed into an evaluator's globals on first use.  All fields are
    immutable after construction, so instances are safe to share across
    threads and to memoise.
    """

    source: str
    core_expr: "CoreExpr"
    core_extra: "tuple"  # of CoreBinding


class CompiledProgram:
    """A fully compiled program, ready to run."""

    def __init__(self, core: CoreProgram, result: InferResult,
                 static_env: StaticEnv, options: CompilerOptions,
                 inferencer: Inferencer,
                 trace: Optional[PhaseTrace] = None) -> None:
        self.core = core
        self.static_env = static_env
        self.class_env = static_env.class_env
        self.options = options
        self.schemes: Dict[str, Scheme] = result.schemes
        self.warnings: List[MonomorphismWarning] = result.warnings
        self._inferencer = inferencer
        self._lock = threading.RLock()
        self._eval_pool: List[Evaluator] = []
        self.last_stats: Optional[EvalStats] = None
        self.compile_stats = CompileStats(
            unify_count=result.unifier.unify_count,
            context_reductions=result.unifier.context_reduction_count,
            constraint_propagations=result.unifier.constraint_propagations,
            bindings=len(core.bindings),
            phases=trace,
        )

    # The lock guards the shared inferencer during expression compilation
    # (``eval`` / ``type_of``) so one program can serve concurrent
    # requests from the compile server; it must not be pickled (the disk
    # compile cache stores whole programs).

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        # Warm evaluators hold closures over live frames — process-local
        # state that must not ride into the disk cache.
        state.pop("_eval_pool", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._eval_pool = []

    # ------------------------------------------------------------- running

    def evaluator(self, **overrides: Any) -> Evaluator:
        call_by_need = overrides.get("call_by_need",
                                     self.options.call_by_need)
        step_limit = overrides.get("step_limit",
                                   self.options.eval_step_limit)
        max_depth = overrides.get(
            "max_depth", getattr(self.options, "eval_depth_limit", 200_000))
        return Evaluator(self.core, PRIMITIVES(), call_by_need=call_by_need,
                         step_limit=step_limit, max_depth=max_depth)

    def run(self, name: str = "main", deep: bool = True,
            big_stack: bool = True, **overrides: Any) -> Any:
        """Evaluate the top-level binding *name* to a Python value.

        Deep work runs on a dedicated big-stack thread by default —
        never by raising the recursion limit on the caller's thread,
        which is how interpreters segfault.  ``big_stack=False`` stays
        available for hosts that already run on a big stack (the
        compile server's workers).
        """
        evaluator = self.evaluator(**overrides)

        def go() -> Any:
            with recursion_fence(f"evaluation of '{name}'"):
                value = evaluator.run(name)
                if deep:
                    return value_to_python(evaluator, value)
                return value

        try:
            result = with_big_stack(go) if big_stack else go()
        finally:
            # Record the counters even when evaluation fails, so callers
            # (e.g. ``repro run --stats``) can report partial work.
            self.last_stats = evaluator.stats
        return result

    def compile_expr(self, source: str) -> "CompiledExpr":
        """Parse, type check and translate an expression against this
        program's scope, without evaluating it.

        The result is immutable and reusable: compilation is
        deterministic, so a :class:`CompiledExpr` may be cached (the
        compile service memoises them per program) and evaluated any
        number of times via :meth:`eval_compiled`.
        """
        ensure_recursion_headroom()
        with recursion_fence("expression compilation"):
            expr = desugar_expr(
                parse_expr(
                    source,
                    max_depth=getattr(self.options, "max_parse_depth", 300)),
                self.options.overload_literals)
            with self._lock:
                n_before = len(self._inferencer.output)
                _ty, resolved = self._inferencer.infer_expression(expr)
                extra = self._inferencer.output[n_before:]
                # Helper bindings generated for this expression (local
                # lets, hoisted dictionaries) must not accumulate in the
                # shared inferencer: they are only meaningful to this
                # evaluation, and leaving them would grow ``output`` by
                # one suffix per ``eval`` for the lifetime of the
                # program.
                del self._inferencer.output[n_before:]
                translator = Translator(self._arity_map())
                core_extra = [translator.binding(b.name, b.expr, b.kind)
                              for b in extra]
                core_expr = translator.expr(resolved)
        return CompiledExpr(source=source, core_expr=core_expr,
                            core_extra=tuple(core_extra))

    def eval(self, source: str, deep: bool = True, big_stack: bool = True,
             **overrides: Any) -> Any:
        """Type check and evaluate an expression in this program's
        scope (e.g. ``program.eval("member 2 [1,2,3]")``).

        As with :meth:`run`, evaluation uses a big-stack thread by
        default instead of mutating the caller's recursion limit.
        """
        return self.eval_compiled(self.compile_expr(source), deep=deep,
                                  big_stack=big_stack, **overrides)

    # Cap on generated-name bindings a pooled evaluator may accumulate
    # (each distinct expression binds its helpers once) before it is
    # retired instead of returned to the pool.
    _EVAL_POOL_EXTRAS = 8192
    _EVAL_POOL_SIZE = 4

    def _acquire_evaluator(self, reuse: bool) -> Evaluator:
        if reuse:
            with self._lock:
                if self._eval_pool:
                    return self._eval_pool.pop()
        return self.evaluator()

    def _release_evaluator(self, evaluator: Evaluator) -> None:
        baseline = len(self.core.bindings) + self._EVAL_POOL_EXTRAS
        if len(evaluator.globals.vars) > baseline:
            return  # retired: too many per-expression helper bindings
        with self._lock:
            if len(self._eval_pool) < self._EVAL_POOL_SIZE:
                self._eval_pool.append(evaluator)

    def eval_compiled(self, compiled: "CompiledExpr", deep: bool = True,
                      big_stack: bool = True, reuse: bool = False,
                      **overrides: Any) -> Any:
        """Evaluate a :class:`CompiledExpr` produced by
        :meth:`compile_expr`.

        With ``reuse=True`` (and no evaluator overrides) the evaluation
        runs on a pooled warm evaluator: constructing an evaluator
        costs more than running a small expression, and under
        call-by-need the memoised top-level thunks are deterministic
        values, so sharing them across requests is observationally
        sound.  An evaluator that raises is discarded, never returned
        to the pool — a partially forced thunk left by an aborted
        evaluation (step/depth budget) must not leak into the next
        request.  ``last_stats`` always reports this evaluation alone.
        """
        reuse = reuse and not overrides
        evaluator = self._acquire_evaluator(reuse)
        for binding in compiled.core_extra:
            if binding.name not in evaluator.globals.vars:
                evaluator.globals.vars[binding.name] = \
                    Thunk(binding.expr, evaluator.globals)
        if overrides:
            evaluator.call_by_need = overrides.get(
                "call_by_need", self.options.call_by_need)
            evaluator.step_limit = overrides.get(
                "step_limit", self.options.eval_step_limit)
            evaluator.max_depth = overrides.get(
                "max_depth",
                getattr(self.options, "eval_depth_limit", 200_000))
        before = evaluator.stats.snapshot() if reuse else None

        def go() -> Any:
            with recursion_fence("expression evaluation"):
                value = evaluator.run_expr(compiled.core_expr)
                if deep:
                    return value_to_python(evaluator, value)
                return value

        ok = False
        try:
            result = with_big_stack(go) if big_stack else go()
            ok = True
        finally:
            stats = evaluator.stats
            if before is not None:
                delta = EvalStats(**{name: value - before.get(name, 0)
                                     for name, value in
                                     stats.snapshot().items()})
                delta.max_stack = stats.max_stack
                stats = delta
            self.last_stats = stats
            if ok and reuse:
                self._release_evaluator(evaluator)
        return result

    def type_of(self, source: str) -> str:
        """The inferred (qualified) type of an expression, as a string —
        handy for tests and the examples."""
        ensure_recursion_headroom()
        expr = desugar_expr(
            parse_expr(
                source,
                max_depth=getattr(self.options, "max_parse_depth", 300)),
            self.options.overload_literals)
        with self._lock:
            # Use a scratch inferencer so defaulting does not pollute
            # state.
            scratch = Inferencer(self.static_env, self.options,
                                 global_env=self._inferencer.env)
            with scratch.scoped_level():
                ty, _ = scratch.infer_expr(expr, scratch.env)
            return qual_type_str(ty)

    def scheme_of(self, name: str) -> Optional[Scheme]:
        return self.schemes.get(name)

    def to_python(self, roots: Optional[List[str]] = None):
        """Compile the core program to Python source and return a
        runnable :class:`repro.coreir.pygen.PyProgram` — the compiled
        backend, with the same §9 operation counters.

        When *roots* is given, the program is tree-shaken to the
        bindings reachable from them first.
        """
        from repro.coreir.pygen import PyProgram
        core = self.core
        if roots is not None:
            from repro.transform.dce import shake
            core = shake(core, roots)
        return PyProgram(core)

    def shake(self, roots: List[str]) -> "CompiledProgram":
        """A copy of this program keeping only the bindings reachable
        from *roots* (dead-code elimination; sound under laziness)."""
        from repro.transform.dce import shake
        import copy
        clone = copy.copy(self)
        clone.core = shake(self.core, roots)
        if getattr(self.options, "lint", False):
            from repro.coreir.lint import lint_program
            lint_program(clone.core, con_arity=self._arity_map(),
                         class_env=self.class_env, pass_name="shake")
        return clone

    def _arity_map(self) -> Dict[str, int]:
        return {name: info.arity
                for name, info in self.static_env.data_cons.items()}

    def dump_core(self, names: Optional[List[str]] = None) -> str:
        from repro.coreir.pretty import pp_program
        return pp_program(self.core, names)

    def info(self, name: str) -> str:
        """Information about a name: for a class, its methods,
        superclasses and instances; for a binding, its scheme; for a
        data type, its constructors."""
        lines: List[str] = []
        if self.class_env.is_class(name):
            cls = self.class_env.class_info(name)
            header = f"class {name}"
            if cls.superclasses:
                ctx = ", ".join(f"{s} a" for s in cls.superclasses)
                header = (f"class {ctx} => {name} a"
                          if len(cls.superclasses) > 1
                          else f"class {cls.superclasses[0]} a => {name} a")
            else:
                header = f"class {name} a"
            lines.append(header + " where")
            for method in cls.methods:
                lines.append(f"  {method.name} :: {method.scheme}")
            for inst in self.class_env.instances_of_class(name):
                ctx = ""
                preds = [f"{c} a{i}" for i, cs in enumerate(inst.context)
                         for c in cs]
                if preds:
                    ctx = (f"({', '.join(preds)}) => " if len(preds) > 1
                           else f"{preds[0]} => ")
                lines.append(f"instance {ctx}{name} {inst.tycon_name}")
            return "\n".join(lines)
        if name in self.static_env.data_types:
            info = self.static_env.data_types[name]
            lines.append(f"data {name}  -- {info.n_params} parameter(s)")
            for con in info.constructors:
                lines.append(f"  {con.name} :: {con.scheme}")
            return "\n".join(lines)
        scheme = self.schemes.get(name)
        if scheme is not None:
            return f"{name} :: {scheme}"
        return f"{name} is not defined"

    def kinds_listing(self) -> str:
        """``info --kinds``: every type constructor and class in scope
        with its inferred kind, sorted by name.  Classes print as
        constraint formers (``... -> Constraint``)."""
        from repro.core.kinds import kind_str
        lines: List[str] = []
        for name in sorted(self.static_env._tycons):
            con = self.static_env._tycons[name]
            lines.append(f"type  {name} :: {kind_str(con.kind)}")
        for name in sorted(self.class_env.classes):
            cls = self.class_env.classes[name]
            parts = []
            for k in cls.param_kinds:
                txt = kind_str(k)
                parts.append(f"({txt})" if "->" in txt else txt)
            sig = " -> ".join(parts + ["Constraint"])
            lines.append(f"class {name} :: {sig}")
        return "\n".join(lines)

    def interface(self) -> str:
        """An interface-file style listing (section 8.6: "interfaces
        provide the signature of each definition in a module ... these
        interface signatures define a specific ordering on the
        dictionaries").  One line per user-visible binding; the printed
        context order *is* the dictionary parameter order."""
        lines = []
        for name in sorted(self.schemes):
            if "$" in name or "@" in name:
                continue
            lines.append(f"{name} :: {self.schemes[name]}")
        return "\n".join(lines)


def program_from_context(ctx: CompileContext) -> CompiledProgram:
    """Wrap a finished pipeline context into a :class:`CompiledProgram`
    (shared by the cold path here and the snapshot fork path in
    :mod:`repro.service.snapshot`)."""
    inferencer = ctx.inferencer
    final = InferResult(ctx.compiled, inferencer.schemes,
                        inferencer.warnings, inferencer.env,
                        inferencer.unifier)
    return CompiledProgram(ctx.core, final, ctx.static_env, ctx.options,
                           inferencer, trace=ctx.trace)


def compile_source(source: str,
                   options: Optional[CompilerOptions] = None,
                   include_prelude: bool = True,
                   filename: str = "<input>",
                   snapshot: Optional["object"] = None,
                   observer: Optional[Callable[[str, CompileContext], None]]
                   = None) -> CompiledProgram:
    """Compile *source* (with the prelude) into a runnable program.

    When *snapshot* (a :class:`repro.service.snapshot.PreludeSnapshot`)
    is given, the prelude is not re-compiled: the user program is built
    on a cheap fork of the snapshot's compiled state, producing the same
    schemes and core as a cold compile at a fraction of the cost.

    *observer* — ``callable(pass_name, ctx)`` — fires after every
    pipeline pass (the CLI's ``--dump-after`` uses it).
    """
    if snapshot is not None and include_prelude:
        from repro.service.snapshot import compile_with_snapshot
        return compile_with_snapshot(source, snapshot, options=options,
                                     filename=filename, observer=observer)
    options = options if options is not None else CompilerOptions()
    sources = []
    if include_prelude:
        sources.append((PRELUDE_SOURCE, "<prelude>"))
    sources.append((source, filename))
    ctx = CompileContext.fresh(options, sources)
    default_pass_manager().run(ctx, observer=observer)
    return program_from_context(ctx)


def compile_and_run(source: str, name: str = "main",
                    options: Optional[CompilerOptions] = None,
                    **kwargs: Any) -> Any:
    """Convenience: compile and immediately run one binding."""
    return compile_source(source, options).run(name, **kwargs)
