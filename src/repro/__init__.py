"""repro — a reproduction of *Implementing Type Classes*
(John Peterson & Mark Jones, PLDI 1993).

A complete Mini-Haskell compiler in Python whose type checker performs
the paper's combined type inference and dictionary conversion:
contexts on mutable type variables, context reduction against the
instance environment, placeholders resolved at generalization into
dictionary parameters, selectors and instance dictionaries — plus the
optimisations of sections 8 and 9 (superclass layouts, default
methods, dictionary hoisting, inner entry points, specialisation, the
monomorphism restriction) and the run-time tagging baseline of
section 3.

Quick start::

    from repro import compile_source

    program = compile_source('''
    double :: Num a => a -> a
    double x = x + x

    main = (double 21, member 2 [1,2,3])
    ''')
    assert program.run("main") == (42, True)
    assert program.eval("show (double 1.5)") == "3.0"
"""

from repro.driver import CompiledProgram, compile_and_run, compile_source
from repro.options import NAIVE, OPTIMIZED, CompilerOptions
from repro.errors import (
    AmbiguityError,
    EvalError,
    KindError,
    LexError,
    NoInstanceError,
    ParseError,
    ReproError,
    SignatureError,
    StaticError,
    TagDispatchError,
    TypeCheckError,
    UnificationError,
)

__version__ = "1.0.0"

__all__ = [
    "compile_source",
    "compile_and_run",
    "CompiledProgram",
    "CompilerOptions",
    "NAIVE",
    "OPTIMIZED",
    "ReproError",
    "LexError",
    "ParseError",
    "StaticError",
    "KindError",
    "TypeCheckError",
    "UnificationError",
    "NoInstanceError",
    "AmbiguityError",
    "SignatureError",
    "EvalError",
    "TagDispatchError",
    "__version__",
]
