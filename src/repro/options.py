"""Compiler configuration.

Every optimisation and language rule the paper discusses as a choice is
a flag here, so that the benchmarks can run controlled ablations:

* ``dict_layout`` / ``single_slot_opt`` — section 8.1 (nested vs
  flattened dictionaries; bare dictionaries for single-slot classes);
* ``monomorphism_restriction`` — section 8.7;
* ``defaulting`` — section 6.3 case 4;
* ``overload_literals`` — whether integer literals go through
  ``fromInteger`` (Haskell behaviour) or are monomorphic ``Int``;
* ``hoist_dictionaries`` — section 8.8 (float dictionary construction
  out of lambdas; the full-laziness cure for repeated construction);
* ``inner_entry_points`` — sections 6.3/7 (avoid passing dictionaries
  to recursive calls by entering past the dictionary lambda);
* ``specialize`` — section 9 (type-specific clones of overloaded
  functions at constant dictionaries);
* ``constant_dict_reduction`` — section 8.4 (overloaded local functions
  used at a single overloading collapse to that overloading);
* ``call_by_need`` — the evaluator's sharing mode; switching it off
  (call-by-name) reproduces the "implementation that is not fully lazy"
  whose repeated dictionary construction motivates section 8.8.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace

#: Fields of :class:`CompilerOptions` that configure the compilation
#: *service* (cache sizing, server transport) or the development
#: harness rather than the compiler's output.  They are excluded from
#: :func:`options_fingerprint` so that, e.g., resizing the cache — or
#: turning the core lint on — does not invalidate every cached
#: program.  (``lint`` belongs here precisely because it never changes
#: what is compiled, only whether the result is verified; note the
#: corollary that a compile-cache hit skips the lint.)
SERVICE_OPTION_FIELDS = (
    "cache_size",
    "cache_dir",
    "cache_disk_budget",
    "server_host",
    "server_port",
    "server_workers",
    "server_shards",
    "server_queue_depth",
    "server_rate_limit",
    "server_rate_burst",
    "server_expr_cache",
    "server_fastpath_ms",
    "server_drain_grace",
    "request_timeout",
    "request_timeout_ceiling",
    "build_jobs",
    "lint",
    # Provenance only changes how *failures* are reported (positions on
    # diagnostics), never what a successful compile produces, so it must
    # not invalidate cached programs.
    "constraint_provenance",
    # The minimization cap bounds diagnostic *effort* on failures only;
    # like constraint_provenance it never changes a successful compile.
    "provenance_minimize_cap",
)


def _lint_default() -> bool:
    """Core lint defaults off; ``REPRO_LINT=1`` in the environment turns
    it on for every compilation in the process — that is how CI runs
    the whole tier-1 suite under the lint without threading a flag
    through every test."""
    return os.environ.get("REPRO_LINT", "") not in ("", "0")


def _solver_default() -> str:
    """Constraint solver defaults to the paper's §5 reduce path;
    ``REPRO_SOLVER=chr`` in the environment selects the CHR backend for
    every compilation in the process — that is how CI runs the whole
    suite under the alternative solver (docs/SOLVER.md)."""
    return os.environ.get("REPRO_SOLVER", "") or "reduce"


@dataclass
class CompilerOptions:
    # ---- language rules
    monomorphism_restriction: bool = True
    defaulting: bool = True
    overload_literals: bool = True
    #: constraint solver: "reduce" (the paper's §5 recursive context
    #: reduction) or "chr" (the CHR engine in repro.solver, required
    #: for multi-parameter classes).  Part of the options fingerprint —
    #: the solvers agree on every single-parameter program, but the set
    #: of *accepted* programs differs, so cached output is keyed on it.
    solver: str = field(default_factory=_solver_default)

    # ---- dictionary representation (section 8.1)
    dict_layout: str = "nested"  # "nested" | "flat"
    single_slot_opt: bool = True

    # ---- optimisations
    hoist_dictionaries: bool = True       # section 8.8
    inner_entry_points: bool = True       # sections 6.3 / 7
    specialize: bool = False              # section 9
    #: §9 at link time: clone overloaded calls that cross a module
    #: boundary, using the unfoldings shipped in ``.ri`` interfaces.
    #: Fires only in linked (multi-module) builds; single-file
    #: compilation is unaffected.
    specialize_xmodule: bool = True
    #: maximum number of clones one specialisation pass may create
    #: (was the module constant CLONE_BUDGET); exhaustion emits a
    #: structured ``spec.budget-exhausted`` warning
    specialize_budget: int = 400
    constant_dict_reduction: bool = False  # section 8.4

    # ---- evaluator
    call_by_need: bool = True
    eval_step_limit: int = 0  # 0 = unlimited

    # ---- resource limits (crash containment; 0 = unlimited)
    # Budgets fire as located ResourceLimitError long before the Python
    # stack is in danger; raise them (e.g. --set max_parse_depth=2000)
    # for batch workloads with unusually deep inputs.  See docs/SERVICE.md.
    max_parse_depth: int = 300      # parser expression/pattern/type nesting
    max_type_depth: int = 10_000    # unifier worklist depth
    eval_depth_limit: int = 200_000  # evaluator nesting (non-tail calls)

    # ---- compilation service (repro.service)
    cache_size: int = 64          # in-memory compile cache capacity
    cache_dir: str = ""           # "" = memory only; a path enables disk cache
    cache_disk_budget: int = 0    # max bytes for the disk tier (0 = unlimited)
    build_jobs: int = 4           # thread-pool width for `repro build`
    server_host: str = "127.0.0.1"
    server_port: int = 0          # 0 = pick an ephemeral port
    server_workers: int = 4       # thread-pool width for request handling
    #: worker *processes* behind the async front; 0 = in-process
    #: threads (no sharding), N > 0 = N processes, each with its own
    #: prelude snapshot + compile cache, sharded by content hash
    server_shards: int = 0
    #: per-shard outstanding-request ceiling; requests beyond it are
    #: shed with a ``service.overloaded`` error (admission control)
    server_queue_depth: int = 64
    #: per-connection token-bucket rate limit, requests/second
    #: (0 = unlimited); excess requests fail ``service.rate-limited``
    server_rate_limit: float = 0.0
    #: token-bucket burst size; 0 = twice the rate
    server_rate_burst: float = 0.0
    #: compiled-expression memo entries per service (0 disables)
    server_expr_cache: int = 512
    #: eval requests whose cached expression historically completes
    #: under this many milliseconds run directly on the event loop
    #: (no executor hop); 0 disables the fast path
    server_fastpath_ms: float = 2.0
    #: graceful-drain deadline on SIGTERM/drain(), seconds
    server_drain_grace: float = 5.0
    request_timeout: float = 10.0  # per-request budget, seconds (0 = none)
    #: ceiling for the client-supplied per-request ``timeout`` field;
    #: out-of-range values are rejected (``service.limit-exceeded``)
    request_timeout_ceiling: float = 120.0

    # ---- development harness
    #: run the core lint (repro.coreir.lint) on the output of every
    #: pipeline pass; CLI --lint / env REPRO_LINT=1
    lint: bool = field(default_factory=_lint_default)
    #: track constraint origins during inference and, on a type error,
    #: minimize the recorded constraint set into a multi-location
    #: ``positions`` diagnostic (docs/SERVICE.md); also rolls failed
    #: inference episodes back, keeping shared inferencers clean
    constraint_provenance: bool = True
    #: constraint sets larger than this are not minimized (deletion-
    #: based minimization is quadratic in replays); hits are counted as
    #: the ``provenance.minimize-capped`` phase counter.  0 disables
    #: minimization entirely.
    provenance_minimize_cap: int = 300

    def with_(self, **kwargs) -> "CompilerOptions":
        """A copy with some fields replaced (ablation helper)."""
        return replace(self, **kwargs)


def options_fingerprint(options: CompilerOptions) -> str:
    """A stable digest of every option that can change compilation
    output.  Two option sets with the same fingerprint produce the same
    compiled program for the same source, so the fingerprint is a
    component of the compile-cache key (service-only fields are left
    out; see :data:`SERVICE_OPTION_FIELDS`)."""
    relevant = {name: value for name, value in sorted(vars(options).items())
                if name not in SERVICE_OPTION_FIELDS}
    blob = json.dumps(relevant, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: The configuration closest to the paper's "naive translation": no
#: hoisting, no inner entry points, no specialisation.
NAIVE = CompilerOptions(hoist_dictionaries=False, inner_entry_points=False,
                        specialize=False, constant_dict_reduction=False)

#: Everything on.
OPTIMIZED = CompilerOptions(hoist_dictionaries=True, inner_entry_points=True,
                            specialize=True, constant_dict_reduction=True)
