"""The run-time tagging baseline (section 3 of the paper).

    "One standard technique used in the implementation of run-time
    overloading is to attach some kind of tag to the concrete
    representation of each object.  Overloaded functions such as the
    equality operator ... can be implemented by inspecting the tags of
    their arguments and dispatching the appropriate function based on
    the tag value.  ...  This is essentially the method used to deal
    with the equality function in Standard ML of New Jersey."

And its two drawbacks, which this module makes measurable:

1. "It can complicate data representation" — every structured value
   carries a tag word (counted as an allocation), and every overloaded
   operation performs a *tag dispatch* at every use — for structural
   equality on a list, one dispatch per element, where dictionary
   passing selects a method once and reuses it.
2. "it is not possible to implement functions where the overloading is
   defined by the returned type.  A simple example of this is the read
   function" — :meth:`TagRuntime.call_result_overloaded` raises
   :class:`TagDispatchError`, because there is no argument whose tag
   could drive the dispatch.

The runtime is deliberately shaped like the paper's description rather
than like our dictionary compiler: a flat method table indexed by
``(class, method, tag)``, consulted at run time on the tag of the first
argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import TagDispatchError


@dataclass
class TagStats:
    dispatches: int = 0
    tag_allocations: int = 0
    calls: int = 0

    def reset(self) -> None:
        self.dispatches = 0
        self.tag_allocations = 0
        self.calls = 0


class TaggedValue:
    """A value carrying its run-time type tag.

    The tag is the name of the value's outermost type constructor —
    exactly enough for the dispatch the paper describes, and exactly
    what dictionary passing avoids materialising.
    """

    __slots__ = ("tag", "payload")

    def __init__(self, tag: str, payload: Any) -> None:
        self.tag = tag
        self.payload = payload

    def __repr__(self) -> str:
        return f"<{self.tag}: {self.payload!r}>"


class TagRuntime:
    """A tag-dispatch overloading runtime."""

    def __init__(self) -> None:
        self.methods: Dict[Tuple[str, str, str], Callable] = {}
        self.stats = TagStats()
        self._install_standard_methods()

    # ------------------------------------------------------------- tagging

    def tag_int(self, n: int) -> TaggedValue:
        self.stats.tag_allocations += 1
        return TaggedValue("Int", n)

    def tag_float(self, x: float) -> TaggedValue:
        self.stats.tag_allocations += 1
        return TaggedValue("Float", x)

    def tag_char(self, c: str) -> TaggedValue:
        self.stats.tag_allocations += 1
        return TaggedValue("Char", c)

    def tag_list(self, items: List[TaggedValue]) -> TaggedValue:
        self.stats.tag_allocations += 1
        return TaggedValue("[]", list(items))

    def tag_tuple(self, items: Tuple[TaggedValue, ...]) -> TaggedValue:
        self.stats.tag_allocations += 1
        return TaggedValue("(,)", tuple(items))

    def tag_bool(self, b: bool) -> TaggedValue:
        self.stats.tag_allocations += 1
        return TaggedValue("Bool", b)

    def inject(self, value: Any) -> TaggedValue:
        """Tag a Python value structurally (ints, floats, chars, bools,
        lists, tuples) — "uniformly tagging every data object"."""
        if isinstance(value, bool):
            return self.tag_bool(value)
        if isinstance(value, int):
            return self.tag_int(value)
        if isinstance(value, float):
            return self.tag_float(value)
        if isinstance(value, str) and len(value) == 1:
            return self.tag_char(value)
        if isinstance(value, str):
            return self.tag_list([self.tag_char(c) for c in value])
        if isinstance(value, list):
            return self.tag_list([self.inject(v) for v in value])
        if isinstance(value, tuple):
            return self.tag_tuple(tuple(self.inject(v) for v in value))
        raise TagDispatchError(f"cannot tag value {value!r}")

    def project(self, value: TaggedValue) -> Any:
        if value.tag == "[]":
            return [self.project(v) for v in value.payload]
        if value.tag == "(,)":
            return tuple(self.project(v) for v in value.payload)
        return value.payload

    # ------------------------------------------------------------ dispatch

    def define(self, class_name: str, method: str, tag: str,
               fn: Callable) -> None:
        key = (class_name, method, tag)
        if key in self.methods:
            raise TagDispatchError(
                f"duplicate method {method} for tag {tag}")
        self.methods[key] = fn

    def call(self, class_name: str, method: str,
             *args: TaggedValue) -> TaggedValue:
        """Dispatch *method* on the tag of the first argument — one
        table lookup at every call."""
        self.stats.calls += 1
        self.stats.dispatches += 1
        if not args:
            return self.call_result_overloaded(class_name, method)
        tag = args[0].tag
        fn = self.methods.get((class_name, method, tag))
        if fn is None:
            raise TagDispatchError(
                f"no implementation of {method} for values tagged {tag}")
        return fn(self, *args)

    def call_result_overloaded(self, class_name: str,
                               method: str) -> TaggedValue:
        """Section 3: overloading "defined by the returned type" has no
        argument tag to dispatch on — the scheme simply cannot express
        it."""
        raise TagDispatchError(
            f"cannot resolve {class_name}.{method}: the overloading is "
            f"determined by the result type, and run-time tags are only "
            f"attached to argument values (this is why Haskell's 'read' "
            f"needs dictionary passing)")

    # ------------------------------------------- standard method table

    def _install_standard_methods(self) -> None:
        def eq_int(rt: TagRuntime, a: TaggedValue, b: TaggedValue) -> TaggedValue:
            return rt.tag_bool(a.payload == b.payload)

        def eq_scalar(rt: TagRuntime, a: TaggedValue, b: TaggedValue) -> TaggedValue:
            return rt.tag_bool(a.payload == b.payload)

        def eq_list(rt: TagRuntime, a: TaggedValue, b: TaggedValue) -> TaggedValue:
            xs, ys = a.payload, b.payload
            if len(xs) != len(ys):
                return rt.tag_bool(False)
            for x, y in zip(xs, ys):
                # The recursive call re-dispatches on every element.
                inner = rt.call("Eq", "==", x, y)
                if not inner.payload:
                    return rt.tag_bool(False)
            return rt.tag_bool(True)

        def eq_tuple(rt: TagRuntime, a: TaggedValue, b: TaggedValue) -> TaggedValue:
            for x, y in zip(a.payload, b.payload):
                inner = rt.call("Eq", "==", x, y)
                if not inner.payload:
                    return rt.tag_bool(False)
            return rt.tag_bool(True)

        for tag in ("Int", "Float", "Char", "Bool"):
            self.define("Eq", "==", tag, eq_scalar)
        self.define("Eq", "==", "[]", eq_list)
        self.define("Eq", "==", "(,)", eq_tuple)

        def add_int(rt: TagRuntime, a: TaggedValue, b: TaggedValue) -> TaggedValue:
            return rt.tag_int(a.payload + b.payload)

        def add_float(rt: TagRuntime, a: TaggedValue, b: TaggedValue) -> TaggedValue:
            return rt.tag_float(a.payload + b.payload)

        self.define("Num", "+", "Int", add_int)
        self.define("Num", "+", "Float", add_float)
        self.define("Num", "*", "Int",
                    lambda rt, a, b: rt.tag_int(a.payload * b.payload))
        self.define("Num", "*", "Float",
                    lambda rt, a, b: rt.tag_float(a.payload * b.payload))

        def show_int(rt: TagRuntime, a: TaggedValue) -> TaggedValue:
            return rt.inject(str(a.payload))

        self.define("Text", "show", "Int", show_int)

    # --------------------------------------------------- paper's examples

    def member(self, x: TaggedValue, xs: TaggedValue) -> TaggedValue:
        """The paper's member function under tag dispatch: equality
        re-dispatches on tags for every list element visited."""
        self.stats.calls += 1
        for y in xs.payload:
            if self.call("Eq", "==", x, y).payload:
                return self.tag_bool(True)
        return self.tag_bool(False)

    def double(self, x: TaggedValue) -> TaggedValue:
        """``double = \\x -> x + x`` — works under tags because the
        argument carries one (the case tags *can* handle)."""
        return self.call("Num", "+", x, x)

    def read(self, _s: TaggedValue) -> TaggedValue:
        """``read`` — the case tags cannot handle (section 3)."""
        return self.call_result_overloaded("Text", "read")
