"""Baselines the paper compares dictionary passing against.

:mod:`repro.baselines.tags` implements the run-time tagging scheme of
section 3 ("attach some kind of tag to the concrete representation of
each object ... dispatching the appropriate function based on the tag
value" — the Standard ML of New Jersey approach to polymorphic
equality), including its two documented shortcomings: per-use dispatch
cost and the impossibility of result-type overloading (``read``).
"""

from repro.baselines.tags import (
    TagDispatchError,
    TagRuntime,
    TaggedValue,
)

__all__ = ["TagRuntime", "TaggedValue", "TagDispatchError"]
