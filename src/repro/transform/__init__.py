"""Core-level program transformations.

Each module implements one of the paper's optimisations:

* :mod:`repro.transform.float_dicts` — section 8.8: hoist dictionary
  construction out of lambdas (restricted full laziness) so that
  recursion does not rebuild the same dictionary at every step;
* :mod:`repro.transform.entrypoints` — sections 6.3/7: inner entry
  points so recursive calls skip re-passing unchanged dictionaries;
* :mod:`repro.transform.specialize` — section 9: type-specific clones
  of overloaded functions at constant dictionaries, eliminating
  dynamic method dispatch;
* :mod:`repro.transform.constdict` — section 8.4: overloaded functions
  used at only one overloading collapse to that overloading.
"""
