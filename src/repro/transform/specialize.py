"""Specialisation: type-specific clones of overloaded functions (§9).

    "It is possible to completely eliminate dynamic method dispatch
    within an overloaded function at specific overloadings by creating
    type specific clones of overloaded functions."

The pass finds applications of an overloaded top-level function to
*constant* dictionary arguments (dictionary constructors applied to
constant dictionaries, all the way down), creates one clone per
distinct dictionary vector, and rewrites the call sites.  Inside a
clone, the now-known dictionaries are simplified away:

* a selector application becomes a tuple selection;
* a selection from a known dictionary constructor becomes the selected
  slot — a direct call to the instance's method implementation;
* recursive calls to the original function at the same dictionaries
  become calls to the clone itself.

Method implementations are themselves overloaded functions (over the
instance context), so specialisation cascades through them; a clone
budget (``options.specialize_budget``) guarantees termination even
under polymorphic recursion.

The :class:`Specializer` runs in two configurations:

* **whole-program** (the classic ``specialize`` pass): every constant-
  dictionary call site is a candidate;
* **cross-module** (the link-time ``specialize-xmodule`` pass): only
  call sites whose caller and callee live in *different* modules are
  roots, and the body of a callee from another user module comes from
  the **unfolding** its interface shipped (see
  :mod:`repro.specialize.unfold`) — exactly what a build against
  ``.ri`` files alone could see.  Cascades inside generated clones are
  unrestricted; the filter applies to original bindings only.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.coreir.fv import live_let_binders
from repro.coreir.syntax import (
    CApp,
    CDict,
    CLam,
    CLet,
    CoreBinding,
    CoreExpr,
    CoreProgram,
    CSel,
    CVar,
    app_spine,
    capp,
    map_subexprs,
)
from repro.transform.subst import substitute
from repro.util.names import specialized_name

#: Default clone budget — the :class:`~repro.options.CompilerOptions`
#: field ``specialize_budget`` starts here; kept as a module constant
#: for callers that drive the specializer directly.
CLONE_BUDGET = 400

#: Fuel for the local simplifier (nodes rewritten per clone body).
SIMPLIFY_FUEL = 10_000

#: Origin-map value for bindings that predate every module (the
#: prelude core and link-generated selectors).
PRELUDE_ORIGIN = "<prelude>"

#: Composite dictionary keys wider than this are interned to a short
#: alias while still being built — under polymorphic recursion the
#: textual key doubles per clone level, so an unbounded key is
#: exponential in the clone depth.
_MAX_KEY_WIDTH = 64

#: Deepest dictionary nesting still treated as a specialisation
#: candidate.  Polymorphic recursion manufactures a *new, deeper*
#: constant dictionary per clone level ad infinitum; past this depth
#: the call keeps its dictionary arguments (always correct — just
#: unspecialised), cutting the cascade off long before the clone
#: budget burns down and before the shared dictionary DAGs grow
#: exponential path counts in the body walks.
_MAX_DICT_DEPTH = 8

@dataclass
class SpecializeReport:
    """What one specializer run did — feeds ``compile_stats.phases``
    counters and the budget-exhaustion warning."""

    clones_created: int = 0
    budget_exhausted: bool = False
    #: names of the clones created, in creation order
    clone_names: List[str] = field(default_factory=list)
    #: clones whose body came from an imported unfolding
    from_unfoldings: int = 0


class Specializer:
    """One specialisation run over *program*.

    *origin* maps top-level binding names to the module that defined
    them (:data:`PRELUDE_ORIGIN` for prelude bindings).  When
    *xmodule_only* is set, a call site in an original binding is a
    specialisation root only if its callee's origin differs from the
    caller's — the cross-module calls that separate compilation left
    dispatching through dictionaries.  *unfoldings* maps names to
    :class:`~repro.specialize.unfold.Unfolding` objects; in
    cross-module mode the body of a callee defined in another user
    module is taken from there (no unfolding ⇒ no clone), so the
    interface file really is the only channel for cross-module bodies.
    """

    def __init__(self, program: CoreProgram,
                 budget: int = CLONE_BUDGET,
                 origin: Optional[Mapping[str, str]] = None,
                 unfoldings: Optional[Mapping[str, object]] = None,
                 xmodule_only: bool = False) -> None:
        self.by_name: Dict[str, CoreBinding] = {
            b.name: b for b in program.bindings}
        self.order = [b.name for b in program.bindings]
        self.clones: Dict[Tuple[str, str], str] = {}
        self.new_bindings: List[CoreBinding] = []
        self.budget = budget
        self.origin: Mapping[str, str] = origin or {}
        self.unfoldings: Mapping[str, object] = unfoldings or {}
        self.xmodule_only = xmodule_only
        self.report = SpecializeReport()
        #: origin of the binding currently being rewritten; None inside
        #: clone bodies (cascades are never origin-filtered)
        self._caller_origin: Optional[str] = None
        self._in_clone = False
        #: per-run memo for const_dict_key, keyed by expression
        #: identity.  Substitution shares dictionary subexpressions, so
        #: under polymorphic recursion the dict argument at clone depth
        #: k is a DAG with 2^k *paths* — without the memo the key walk
        #: re-renders every path and the budget never gets a say.  The
        #: value stores the keyed expression itself: id() alone is only
        #: unique among live objects, so the entry must pin its key
        #: object (and lookups re-check identity) or a freed
        #: expression's recycled id would serve a stale answer.
        self._key_memo: Dict[
            int, Tuple[CoreExpr, Optional[Tuple[str, int]]]] = {}

    # --------------------------------------------------- dictionary forms

    def const_dict_key(self, expr: CoreExpr) -> Optional[str]:
        """A canonical key when *expr* is a compile-time-constant
        dictionary expression of bounded nesting depth, else None.

        Memoised by expression identity (substitution shares
        dictionary subexpressions, so the naive walk revisits every
        *path* through the DAG), keys wider than
        :data:`_MAX_KEY_WIDTH` are interned to a short alias, and
        nesting deeper than :data:`_MAX_DICT_DEPTH` disqualifies the
        site — the three bounds that keep polymorphic recursion from
        driving the specializer exponential.
        """
        info = self._key_info(expr)
        return None if info is None else info[0]

    def _key_info(self, expr: CoreExpr) -> Optional[Tuple[str, int]]:
        """(key, nesting depth) for a constant dictionary, memoised."""
        cached = self._key_memo.get(id(expr))
        if cached is not None and cached[0] is expr:
            return cached[1]
        info = self._key_info_uncached(expr)
        self._key_memo[id(expr)] = (expr, info)
        return info

    def _key_info_uncached(self, expr: CoreExpr
                           ) -> Optional[Tuple[str, int]]:
        head, args = app_spine(expr)
        if not isinstance(head, CVar):
            return None
        binding = self.by_name.get(head.name)
        if binding is None or binding.kind != "dict":
            return None
        if len(args) != binding.dict_arity:
            return None
        keys = []
        depth = 1
        for a in args:
            child = self._key_info(a)
            if child is None:
                return None
            keys.append(child[0])
            depth = max(depth, child[1] + 1)
        if depth > _MAX_DICT_DEPTH:
            return None
        if not keys:
            return head.name, depth
        key = f"{head.name}({','.join(keys)})"
        if len(key) > _MAX_KEY_WIDTH:
            key = _short_key(key)
        return key, depth

    # ------------------------------------------------------------ rewrite

    def run(self) -> CoreProgram:
        out: List[CoreBinding] = []
        for name in self.order:
            b = self.by_name[name]
            if b.kind in ("selector", "dict"):
                out.append(b)
                continue
            self._caller_origin = self.origin.get(name, PRELUDE_ORIGIN)
            self._in_clone = False
            expr = self.rewrite(b.expr)
            # Identity-preserving when no call site was specialised —
            # the lint cache skips bindings that pass through unchanged.
            out.append(b if expr is b.expr else replace(b, expr=expr))
        # Clone generation may enqueue further clones.
        self._in_clone = True
        self._caller_origin = None
        while self.new_bindings:
            clone = self.new_bindings.pop(0)
            clone = replace(clone, expr=self.rewrite(clone.expr))
            out.append(clone)
            self.by_name[clone.name] = clone
        return CoreProgram(out)

    def _is_root(self, callee: str) -> bool:
        """In cross-module mode, only calls that leave the caller's
        module start a specialisation (cascades inside clones always
        qualify — they inherit the cross-module root's justification)."""
        if not self.xmodule_only:
            return True
        if self._in_clone:
            return True
        callee_origin = self.origin.get(callee, PRELUDE_ORIGIN)
        return callee_origin != self._caller_origin

    def rewrite(self, expr: CoreExpr) -> CoreExpr:
        head, args = app_spine(expr)
        if isinstance(head, CVar) and args:
            target = self.by_name.get(head.name)
            if (target is not None and target.dict_arity > 0
                    and target.kind in ("user", "impl", "default")
                    and len(args) >= target.dict_arity
                    and self._is_root(head.name)):
                dict_args = args[:target.dict_arity]
                keys = [self.const_dict_key(a) for a in dict_args]
                if all(k is not None for k in keys):
                    clone_name = self.clone_of(head.name, dict_args,
                                               ",".join(keys))  # type: ignore[arg-type]
                    if clone_name is not None:
                        rest = [self.rewrite(a)
                                for a in args[target.dict_arity:]]
                        return capp(CVar(clone_name), *rest)
        return map_subexprs(expr, self.rewrite)

    def _clone_source(self, fname: str) -> Optional[Tuple[CoreExpr, int]]:
        """The lambda to clone from and its dictionary arity.

        Cross-module mode takes the body of a callee defined in a user
        module from its interface's unfolding — the merged core is off
        limits (a real separate linker would not have it); without an
        unfolding the call keeps its dictionaries.  Prelude bodies are
        always at hand (every build embeds the prelude core)."""
        original = self.by_name[fname]
        if self.xmodule_only and \
                self.origin.get(fname, PRELUDE_ORIGIN) != PRELUDE_ORIGIN:
            unfolding = self.unfoldings.get(fname)
            if unfolding is None:
                return None
            self.report.from_unfoldings += 1
            return unfolding.expr, unfolding.dict_arity
        return original.expr, original.dict_arity

    def clone_of(self, fname: str, dict_args: List[CoreExpr],
                 key: str) -> Optional[str]:
        cache_key = (fname, key)
        existing = self.clones.get(cache_key)
        if existing is not None:
            return existing
        if self.budget <= 0:
            self.report.budget_exhausted = True
            return None
        original = self.by_name[fname]
        source = self._clone_source(fname)
        if source is None:
            return None
        expr, dict_arity = source
        if not isinstance(expr, CLam) or len(expr.params) < dict_arity:
            return None
        self.budget -= 1
        short = _short_key(key)
        clone_name = specialized_name(fname, short)
        self.clones[cache_key] = clone_name
        params = expr.params
        anns = expr.anns
        body: CoreExpr
        if len(params) > dict_arity:
            # The clone sheds the dictionary parameters, so its lambda
            # keeps only the value-parameter annotations.
            body = CLam(params[dict_arity:], expr.body,
                        anns[dict_arity:] if anns is not None else None)
        else:
            body = expr.body
        subst = {p: d for p, d in zip(params[:dict_arity], dict_args)}
        body = substitute(body, subst)
        body = simplify(body, self.by_name, SIMPLIFY_FUEL)
        # Self-calls at the same dictionaries become self-calls of the
        # clone (handled by the rewrite pass when the clone is emitted).
        # A clone is monomorphic in its dictionaries: dict_arity 0 and
        # no scheme/dict-class annotations (the original's would lie).
        self.report.clones_created += 1
        self.report.clone_names.append(clone_name)
        self.new_bindings.append(
            CoreBinding(clone_name, body, original.kind, 0,
                        provenance=self._provenance(fname, short)))
        return clone_name

    def _provenance(self, fname: str, short: str) -> str:
        origin = self.origin.get(fname, PRELUDE_ORIGIN) if self.origin \
            else None
        where = ""
        if origin == PRELUDE_ORIGIN:
            where = ", body from the prelude"
        elif origin is not None:
            where = f", unfolding from module '{origin}'"
        return f"clone of {fname} at <{short}>{where}"


def _short_key(key: str) -> str:
    """Human-readable but bounded clone suffix.

    Wide composite keys collapse to ``k<hash>`` where the hash is a
    content digest of the key — the alias is a pure function of the
    dictionary vector, so clone names and provenance are identical
    across processes and build orders (reproducible emitted Python and
    dumps), and the long-lived compile server carries no alias table.
    """
    if len(key) <= 48:
        return key.replace("d$", "")
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
    return f"k{digest}"


# --------------------------------------------------------------------------
# The local simplifier
# --------------------------------------------------------------------------

def simplify(expr: CoreExpr, by_name: Dict[str, CoreBinding],
             fuel: int) -> CoreExpr:
    """Reduce dictionary plumbing inside a specialised body.

    Tracks let-bound dictionary tuples (including the ``dict$this``
    knot produced for defaulted method slots) so selections through
    them reduce to direct slot expressions; dead dictionary bindings
    are then dropped.
    """
    state = {"fuel": fuel}

    def go(e: CoreExpr, env: Dict[str, CoreExpr]) -> CoreExpr:
        if state["fuel"] <= 0:
            return e
        if isinstance(e, CLet):
            inner = dict(env)
            # Bindings visible to RHSs (recursive) and body alike; only
            # dictionary-shaped RHSs are tracked.
            for name, rhs in e.binds:
                if isinstance(rhs, CDict):
                    inner[name] = rhs
                else:
                    inner.pop(name, None)
            rhs_env = inner if e.recursive else env
            binds = [(n, go(rhs, rhs_env)) for n, rhs in e.binds]
            for name, rhs in binds:
                if isinstance(rhs, CDict):
                    inner[name] = rhs
            body = go(e.body, inner)
            e = _drop_dead_dict_binds(CLet(binds, body, e.recursive))
            return e
        if isinstance(e, CLam):
            inner = dict(env)
            for p in e.params:
                inner.pop(p, None)
            return CLam(list(e.params), go(e.body, inner), e.anns)
        e = map_subexprs(e, lambda sub: go(sub, env))
        changed = True
        while changed and state["fuel"] > 0:
            changed = False
            # selector application -> selection
            if isinstance(e, CApp):
                head, args = app_spine(e)
                if isinstance(head, CVar) and args:
                    binding = by_name.get(head.name)
                    if binding is not None and binding.kind == "selector" \
                            and isinstance(binding.expr, CLam) \
                            and len(args) >= len(binding.expr.params):
                        n = len(binding.expr.params)
                        inlined = substitute(
                            binding.expr.body,
                            dict(zip(binding.expr.params, args[:n])))
                        e = capp(go(inlined, env), *args[n:])
                        state["fuel"] -= 1
                        changed = True
                        continue
            # selection pushed through let
            if isinstance(e, CSel) and isinstance(e.expr, CLet):
                inner_let = e.expr
                e = CLet(inner_let.binds,
                         CSel(e.index, e.arity, inner_let.body, e.from_dict),
                         inner_let.recursive)
                e = go(e, env)
                state["fuel"] -= 1
                changed = True
                continue
            # selection from a known dictionary
            if isinstance(e, CSel):
                target = e.expr
                if isinstance(target, CDict):
                    e = go(target.items[e.index], env)
                    state["fuel"] -= 1
                    changed = True
                    continue
                if isinstance(target, CVar) and target.name in env:
                    e = go(env[target.name].items[e.index], env)
                    state["fuel"] -= 1
                    changed = True
                    continue
                inlined = _inline_dict(target, by_name)
                if inlined is not None:
                    e = CSel(e.index, e.arity, go(inlined, env), e.from_dict)
                    state["fuel"] -= 1
                    changed = True
                    continue
        return e

    return go(expr, {})


def _drop_dead_dict_binds(let: CLet) -> CoreExpr:
    """Remove let-bound dictionaries that are no longer referenced.

    Liveness (including the recursive fixpoint that lets a
    self-referential ``dict$this`` knot die once its selections are
    reduced away) is :func:`repro.coreir.fv.live_let_binders` — the
    same analysis the lint and the other transforms use.
    """
    used = live_let_binders(let.binds, let.body, let.recursive)
    binds = [(n, rhs) for n, rhs in let.binds
             if n in used or not isinstance(rhs, CDict)]
    if not binds:
        return let.body
    return CLet(binds, let.body, let.recursive)


def _inline_dict(expr: CoreExpr,
                 by_name: Dict[str, CoreBinding]) -> Optional[CoreExpr]:
    """Inline a constant dictionary reference/application one step."""
    head, args = app_spine(expr)
    if not isinstance(head, CVar):
        return None
    binding = by_name.get(head.name)
    if binding is None or binding.kind != "dict":
        return None
    body = binding.expr
    if isinstance(body, CLam):
        if len(args) != len(body.params):
            return None
        return substitute(body.body, dict(zip(body.params, args)))
    if args:
        return None
    return body


def specialize_program(program: CoreProgram,
                       budget: int = CLONE_BUDGET) -> CoreProgram:
    """Create clones for every overloaded call at constant dictionaries
    and rewrite call sites (section 9)."""
    return Specializer(program, budget=budget).run()
