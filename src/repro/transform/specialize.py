"""Specialisation: type-specific clones of overloaded functions (§9).

    "It is possible to completely eliminate dynamic method dispatch
    within an overloaded function at specific overloadings by creating
    type specific clones of overloaded functions."

The pass finds applications of an overloaded top-level function to
*constant* dictionary arguments (dictionary constructors applied to
constant dictionaries, all the way down), creates one clone per
distinct dictionary vector, and rewrites the call sites.  Inside a
clone, the now-known dictionaries are simplified away:

* a selector application becomes a tuple selection;
* a selection from a known dictionary constructor becomes the selected
  slot — a direct call to the instance's method implementation;
* recursive calls to the original function at the same dictionaries
  become calls to the clone itself.

Method implementations are themselves overloaded functions (over the
instance context), so specialisation cascades through them; a global
clone budget guarantees termination even under polymorphic recursion.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.coreir.fv import live_let_binders
from repro.coreir.syntax import (
    CApp,
    CDict,
    CLam,
    CLet,
    CoreBinding,
    CoreExpr,
    CoreProgram,
    CSel,
    CVar,
    app_spine,
    capp,
    map_subexprs,
)
from repro.transform.subst import substitute
from repro.util.names import specialized_name

#: Safety valve: the maximum number of clones one run may create.
CLONE_BUDGET = 400

#: Fuel for the local simplifier (nodes rewritten per clone body).
SIMPLIFY_FUEL = 10_000


class _Specializer:
    def __init__(self, program: CoreProgram) -> None:
        self.by_name: Dict[str, CoreBinding] = {
            b.name: b for b in program.bindings}
        self.order = [b.name for b in program.bindings]
        self.clones: Dict[Tuple[str, str], str] = {}
        self.new_bindings: List[CoreBinding] = []
        self.budget = CLONE_BUDGET

    # --------------------------------------------------- dictionary forms

    def const_dict_key(self, expr: CoreExpr) -> Optional[str]:
        """A canonical key when *expr* is a compile-time-constant
        dictionary expression, else None."""
        head, args = app_spine(expr)
        if not isinstance(head, CVar):
            return None
        binding = self.by_name.get(head.name)
        if binding is None or binding.kind != "dict":
            return None
        if len(args) != binding.dict_arity:
            return None
        keys = []
        for a in args:
            k = self.const_dict_key(a)
            if k is None:
                return None
            keys.append(k)
        if keys:
            return f"{head.name}({','.join(keys)})"
        return head.name

    # ------------------------------------------------------------ rewrite

    def run(self) -> CoreProgram:
        out: List[CoreBinding] = []
        for name in self.order:
            b = self.by_name[name]
            if b.kind in ("selector", "dict"):
                out.append(b)
                continue
            expr = self.rewrite(b.expr)
            # Identity-preserving when no call site was specialised —
            # the lint cache skips bindings that pass through unchanged.
            out.append(b if expr is b.expr else replace(b, expr=expr))
        # Clone generation may enqueue further clones.
        while self.new_bindings:
            clone = self.new_bindings.pop(0)
            clone = replace(clone, expr=self.rewrite(clone.expr))
            out.append(clone)
            self.by_name[clone.name] = clone
        return CoreProgram(out)

    def rewrite(self, expr: CoreExpr) -> CoreExpr:
        head, args = app_spine(expr)
        if isinstance(head, CVar) and args:
            target = self.by_name.get(head.name)
            if (target is not None and target.dict_arity > 0
                    and target.kind in ("user", "impl", "default")
                    and len(args) >= target.dict_arity):
                dict_args = args[:target.dict_arity]
                keys = [self.const_dict_key(a) for a in dict_args]
                if all(k is not None for k in keys):
                    clone_name = self.clone_of(head.name, dict_args,
                                               ",".join(keys))  # type: ignore[arg-type]
                    if clone_name is not None:
                        rest = [self.rewrite(a)
                                for a in args[target.dict_arity:]]
                        return capp(CVar(clone_name), *rest)
        return map_subexprs(expr, self.rewrite)

    def clone_of(self, fname: str, dict_args: List[CoreExpr],
                 key: str) -> Optional[str]:
        cache_key = (fname, key)
        existing = self.clones.get(cache_key)
        if existing is not None:
            return existing
        if self.budget <= 0:
            return None
        original = self.by_name[fname]
        if not isinstance(original.expr, CLam) or \
                len(original.expr.params) < original.dict_arity:
            return None
        self.budget -= 1
        clone_name = specialized_name(fname, _short_key(key))
        self.clones[cache_key] = clone_name
        params = original.expr.params
        anns = original.expr.anns
        body: CoreExpr
        if len(params) > original.dict_arity:
            # The clone sheds the dictionary parameters, so its lambda
            # keeps only the value-parameter annotations.
            body = CLam(params[original.dict_arity:], original.expr.body,
                        anns[original.dict_arity:] if anns is not None
                        else None)
        else:
            body = original.expr.body
        subst = {p: d for p, d in zip(params[:original.dict_arity],
                                      dict_args)}
        body = substitute(body, subst)
        body = simplify(body, self.by_name, SIMPLIFY_FUEL)
        # Self-calls at the same dictionaries become self-calls of the
        # clone (handled by the rewrite pass when the clone is emitted).
        # A clone is monomorphic in its dictionaries: dict_arity 0 and
        # no scheme/dict-class annotations (the original's would lie).
        self.new_bindings.append(
            CoreBinding(clone_name, body, original.kind, 0))
        return clone_name


_KEY_CACHE: Dict[str, str] = {}


def _short_key(key: str) -> str:
    """Human-readable but bounded clone suffix."""
    if len(key) <= 48:
        return key.replace("d$", "")
    short = _KEY_CACHE.get(key)
    if short is None:
        short = f"k{len(_KEY_CACHE) + 1}"
        _KEY_CACHE[key] = short
    return short


# --------------------------------------------------------------------------
# The local simplifier
# --------------------------------------------------------------------------

def simplify(expr: CoreExpr, by_name: Dict[str, CoreBinding],
             fuel: int) -> CoreExpr:
    """Reduce dictionary plumbing inside a specialised body.

    Tracks let-bound dictionary tuples (including the ``dict$this``
    knot produced for defaulted method slots) so selections through
    them reduce to direct slot expressions; dead dictionary bindings
    are then dropped.
    """
    state = {"fuel": fuel}

    def go(e: CoreExpr, env: Dict[str, CoreExpr]) -> CoreExpr:
        if state["fuel"] <= 0:
            return e
        if isinstance(e, CLet):
            inner = dict(env)
            # Bindings visible to RHSs (recursive) and body alike; only
            # dictionary-shaped RHSs are tracked.
            for name, rhs in e.binds:
                if isinstance(rhs, CDict):
                    inner[name] = rhs
                else:
                    inner.pop(name, None)
            rhs_env = inner if e.recursive else env
            binds = [(n, go(rhs, rhs_env)) for n, rhs in e.binds]
            for name, rhs in binds:
                if isinstance(rhs, CDict):
                    inner[name] = rhs
            body = go(e.body, inner)
            e = _drop_dead_dict_binds(CLet(binds, body, e.recursive))
            return e
        if isinstance(e, CLam):
            inner = dict(env)
            for p in e.params:
                inner.pop(p, None)
            return CLam(list(e.params), go(e.body, inner), e.anns)
        e = map_subexprs(e, lambda sub: go(sub, env))
        changed = True
        while changed and state["fuel"] > 0:
            changed = False
            # selector application -> selection
            if isinstance(e, CApp):
                head, args = app_spine(e)
                if isinstance(head, CVar) and args:
                    binding = by_name.get(head.name)
                    if binding is not None and binding.kind == "selector" \
                            and isinstance(binding.expr, CLam) \
                            and len(args) >= len(binding.expr.params):
                        n = len(binding.expr.params)
                        inlined = substitute(
                            binding.expr.body,
                            dict(zip(binding.expr.params, args[:n])))
                        e = capp(go(inlined, env), *args[n:])
                        state["fuel"] -= 1
                        changed = True
                        continue
            # selection pushed through let
            if isinstance(e, CSel) and isinstance(e.expr, CLet):
                inner_let = e.expr
                e = CLet(inner_let.binds,
                         CSel(e.index, e.arity, inner_let.body, e.from_dict),
                         inner_let.recursive)
                e = go(e, env)
                state["fuel"] -= 1
                changed = True
                continue
            # selection from a known dictionary
            if isinstance(e, CSel):
                target = e.expr
                if isinstance(target, CDict):
                    e = go(target.items[e.index], env)
                    state["fuel"] -= 1
                    changed = True
                    continue
                if isinstance(target, CVar) and target.name in env:
                    e = go(env[target.name].items[e.index], env)
                    state["fuel"] -= 1
                    changed = True
                    continue
                inlined = _inline_dict(target, by_name)
                if inlined is not None:
                    e = CSel(e.index, e.arity, go(inlined, env), e.from_dict)
                    state["fuel"] -= 1
                    changed = True
                    continue
        return e

    return go(expr, {})


def _drop_dead_dict_binds(let: CLet) -> CoreExpr:
    """Remove let-bound dictionaries that are no longer referenced.

    Liveness (including the recursive fixpoint that lets a
    self-referential ``dict$this`` knot die once its selections are
    reduced away) is :func:`repro.coreir.fv.live_let_binders` — the
    same analysis the lint and the other transforms use.
    """
    used = live_let_binders(let.binds, let.body, let.recursive)
    binds = [(n, rhs) for n, rhs in let.binds
             if n in used or not isinstance(rhs, CDict)]
    if not binds:
        return let.body
    return CLet(binds, let.body, let.recursive)


def _inline_dict(expr: CoreExpr,
                 by_name: Dict[str, CoreBinding]) -> Optional[CoreExpr]:
    """Inline a constant dictionary reference/application one step."""
    head, args = app_spine(expr)
    if not isinstance(head, CVar):
        return None
    binding = by_name.get(head.name)
    if binding is None or binding.kind != "dict":
        return None
    body = binding.expr
    if isinstance(body, CLam):
        if len(args) != len(body.params):
            return None
        return substitute(body.body, dict(zip(body.params, args)))
    if args:
        return None
    return body


def specialize_program(program: CoreProgram) -> CoreProgram:
    """Create clones for every overloaded call at constant dictionaries
    and rewrite call sites (section 9)."""
    return _Specializer(program).run()
