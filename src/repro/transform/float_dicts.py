"""Dictionary hoisting — section 8.8.

    "many implementations of this definition will repeat the
    construction of the dictionary eqDList d at each step of the
    recursion.  One simple way to avoid this is to rewrite the
    definition in the form  eqList d = let eql = ... in ..."

This pass performs exactly that rewrite, mechanically: any application
of a *dictionary constructor* is floated outward to sit just inside the
binder of its deepest free variable.  If one or more lambdas stand
between that binder and the original site, the construction previously
re-ran on every call of those lambdas and now runs once per entry to
the binder — under call-by-need, once per dictionary, which is the
paper's improved translation.  Dictionaries are the only floated
expressions, making the pass a restricted (cheap, predictable) form of
the full-laziness transformation the paper cites.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set, Tuple

from repro.coreir.fv import free_vars
from repro.coreir.syntax import (
    CAlt,
    CApp,
    CCase,
    CLam,
    CLet,
    CLitAlt,
    CoreBinding,
    CoreExpr,
    CoreProgram,
    CVar,
    app_spine,
    map_subexprs,
)
from repro.util.names import NameSupply


class _Frame:
    """One binder on the walk stack."""

    __slots__ = ("binders", "is_lambda", "floats")

    def __init__(self, binders: Set[str], is_lambda: bool) -> None:
        self.binders = binders
        self.is_lambda = is_lambda
        self.floats: List[Tuple[str, CoreExpr]] = []


class _Hoister:
    def __init__(self, dict_constructors: Set[str],
                 selectors: Set[str]) -> None:
        self.dict_constructors = dict_constructors
        self.selectors = selectors
        self.names = NameSupply()
        self.frames: List[_Frame] = []
        self.top_floats: List[Tuple[str, CoreExpr]] = []

    def binding(self, b: CoreBinding) -> CoreBinding:
        if b.kind in ("selector",):
            return b
        self.top_floats = []
        body = self.expr(b.expr)
        if self.top_floats:
            body = CLet(self.top_floats, body, recursive=True)
        if body is b.expr:
            return b
        # replace() keeps the scheme and dict-class annotations: the
        # binding's type and dictionary parameters are unchanged, only
        # the body moved.
        return replace(b, expr=body)

    # ------------------------------------------------------------- helpers

    def _dest_of(self, names: List[str]) -> int:
        """The frame index of the deepest frame binding any of *names*;
        -1 when every variable is global."""
        for i in range(len(self.frames) - 1, -1, -1):
            if any(n in self.frames[i].binders for n in names):
                return i
        return -1

    def _lambda_between(self, dest: int) -> bool:
        """Is there a lambda frame strictly inside *dest* (i.e. whose
        entry would re-run the expression at its original site)?"""
        return any(f.is_lambda for f in self.frames[dest + 1:])

    def _is_dict_construction(self, expr: CoreExpr) -> bool:
        """Dictionary constructions *and* method selections are
        floated — the paper's improved eqList binds both:
        ``let eql = eq (eqDList d); eqa = eq d in ...`` (section 8.8)."""
        head, args = app_spine(expr)
        if not isinstance(head, CVar):
            return False
        if args and head.name in self.dict_constructors:
            return True
        return len(args) == 1 and head.name in self.selectors

    def _float(self, expr: CoreExpr) -> Optional[CoreExpr]:
        """Try to hoist *expr* (a dictionary construction); returns the
        replacement variable, or None when hoisting gains nothing."""
        dest = self._dest_of(free_vars(expr))
        if not self._lambda_between(dest):
            return None
        name = self.names.fresh("hd")
        if dest < 0:
            self.top_floats.append((name, expr))
        else:
            frame = self.frames[dest]
            frame.floats.append((name, expr))
            # The float is itself a binder of that frame, so later
            # floats referencing it cannot escape past it.
            frame.binders.add(name)
        return CVar(name)

    # ---------------------------------------------------------------- walk

    def expr(self, expr: CoreExpr) -> CoreExpr:
        # Untouched subtrees come back as the same objects (see
        # map_subexprs), so a binding with nothing to hoist survives the
        # pass identically.
        if self._is_dict_construction(expr):
            head, args = app_spine(expr)
            new_args = [self.expr(a) for a in args]
            if all(n is o for n, o in zip(new_args, args)):
                rebuilt: CoreExpr = expr
            else:
                rebuilt = head
                for a in new_args:
                    rebuilt = CApp(rebuilt, a)
            replacement = self._float(rebuilt)
            return replacement if replacement is not None else rebuilt
        if isinstance(expr, CLam):
            frame = _Frame(set(expr.params), True)
            self.frames.append(frame)
            body = self.expr(expr.body)
            self.frames.pop()
            if frame.floats:
                # recursive=True: floated dictionaries may reference
                # each other (nested constructions), in either order.
                body = CLet(frame.floats, body, recursive=True)
            elif body is expr.body:
                return expr
            return CLam(list(expr.params), body, expr.anns)
        if isinstance(expr, CLet):
            frame = _Frame({n for n, _ in expr.binds}, False)
            self.frames.append(frame)
            binds = [(n, self.expr(rhs)) for n, rhs in expr.binds]
            body = self.expr(expr.body)
            self.frames.pop()
            recursive = expr.recursive
            if frame.floats:
                # Merge floats into the binding group so they are in
                # scope for the right-hand sides as well as the body.
                binds = binds + frame.floats
                recursive = True
            elif body is expr.body and all(
                    new is old
                    for (_, new), (_, old) in zip(binds, expr.binds)):
                return expr
            return CLet(binds, body, recursive)
        if isinstance(expr, CCase):
            scrut = self.expr(expr.scrutinee)
            changed = scrut is not expr.scrutinee
            alts = []
            for alt in expr.alts:
                frame = _Frame(set(alt.binders), False)
                self.frames.append(frame)
                body = self.expr(alt.body)
                self.frames.pop()
                if frame.floats:
                    body = CLet(frame.floats, body, recursive=True)
                if body is not alt.body:
                    changed = True
                alts.append(CAlt(alt.con_name, list(alt.binders), body,
                                 alt.anns))
            lit_alts = [CLitAlt(a.value, a.kind, self.expr(a.body))
                        for a in expr.lit_alts]
            changed = changed or any(
                n.body is not o.body for n, o in zip(lit_alts, expr.lit_alts))
            default = (self.expr(expr.default)
                       if expr.default is not None else None)
            if not changed and default is expr.default:
                return expr
            return CCase(scrut, alts, lit_alts, default)
        return map_subexprs(expr, self.expr)


def hoist_dictionaries(program: CoreProgram) -> CoreProgram:
    """Apply dictionary hoisting to every binding of *program*."""
    dict_constructors = {b.name for b in program.bindings
                         if b.kind == "dict"}
    selectors = {b.name for b in program.bindings if b.kind == "selector"}
    if not dict_constructors and not selectors:
        return program
    hoister = _Hoister(dict_constructors, selectors)
    return CoreProgram([hoister.binding(b) for b in program.bindings])
