"""Dead-code elimination over top-level core bindings.

A compiled program carries the whole prelude plus every generated
dictionary, selector and implementation function; most entry points
reach only a fraction of them.  This pass keeps exactly the bindings
reachable from a set of roots — used by ``CompiledProgram.shake`` to
produce lean programs for the compiled backend and readable core
dumps.

Laziness makes this sound: an unreferenced top-level thunk can never be
forced, so removing it cannot change any observable behaviour.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.coreir.fv import free_vars
from repro.coreir.syntax import CoreProgram
from repro.util.graph import Digraph, reachable_from


def reachable_bindings(program: CoreProgram,
                       roots: Iterable[str]) -> Set[str]:
    """Names of bindings reachable from *roots* through free-variable
    references."""
    graph = Digraph()
    names = set(program.names())
    for binding in program.bindings:
        graph.add_node(binding.name)
        for ref in free_vars(binding.expr):
            if ref in names:
                graph.add_edge(binding.name, ref)
    wanted = [r for r in roots if r in names]
    return set(reachable_from(graph, wanted))


def shake(program: CoreProgram, roots: Iterable[str]) -> CoreProgram:
    """Drop every binding not reachable from *roots*."""
    keep = reachable_bindings(program, roots)
    return CoreProgram([b for b in program.bindings if b.name in keep])
