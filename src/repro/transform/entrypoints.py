"""Inner entry points for recursive overloaded functions (§6.3, §7).

    "since any dictionaries passed to a recursive call remain unchanged
    from the original entry to the function, the need to pass
    dictionaries to inner recursive calls can be eliminated by using an
    inner entry point where the dictionaries have already been bound."

For a top-level binding

    f = \\d1 .. dk x .. -> ... (f d1 .. dk) e ...

every self-application to exactly the original dictionary parameters is
replaced by a local recursive binding::

    f = \\d1 .. dk -> letrec f' = \\x .. -> ... f' e ... in f'

Bindings whose self-references are not all of that shape (for instance
``f`` passed higher-order, or applied to different dictionaries by
polymorphic recursion through a signature) are left untouched.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.coreir.fv import free_vars
from repro.coreir.syntax import (
    CApp,
    CLam,
    CLet,
    CoreBinding,
    CoreExpr,
    CoreProgram,
    CVar,
    app_spine,
    map_subexprs,
)


def add_inner_entry_points(program: CoreProgram) -> CoreProgram:
    out: List[CoreBinding] = []
    for b in program.bindings:
        out.append(_transform_binding(b) or b)
    return CoreProgram(out)


def _transform_binding(b: CoreBinding) -> Optional[CoreBinding]:
    if b.dict_arity <= 0:
        return None
    if not isinstance(b.expr, CLam) or len(b.expr.params) < b.dict_arity:
        return None
    params = b.expr.params
    dict_params = params[:b.dict_arity]
    rest_params = params[b.dict_arity:]
    body = b.expr.body
    if b.name not in free_vars(body):
        return None  # not recursive
    inner_name = f"{b.name}$enter"

    ok = True

    def rewrite(expr: CoreExpr) -> CoreExpr:
        nonlocal ok
        if not ok:
            return expr
        head, args = app_spine(expr)
        if isinstance(head, CVar) and head.name == b.name:
            if (len(args) >= b.dict_arity
                    and all(isinstance(a, CVar) and a.name == p
                            for a, p in zip(args, dict_params))):
                out: CoreExpr = CVar(inner_name)
                for a in args[b.dict_arity:]:
                    out = CApp(out, rewrite(a))
                return out
            ok = False
            return expr
        if isinstance(expr, CVar) and expr.name == b.name:
            # Bare reference (higher-order use): cannot transform.
            ok = False
            return expr
        if isinstance(expr, CLam) and b.name in expr.params:
            return expr  # shadowed below here
        if isinstance(expr, CLet) and any(n == b.name for n, _ in expr.binds):
            return expr  # shadowed
        return map_subexprs(expr, rewrite)

    new_body = rewrite(body)
    if not ok:
        return None
    # The original lambda's annotations split at the dictionary/value
    # boundary: the entry lambda keeps the dictionary-parameter
    # annotations, the inner entry point the rest.
    anns = b.expr.anns
    dict_anns = anns[:b.dict_arity] if anns is not None else None
    rest_anns = anns[b.dict_arity:] if anns is not None else None
    inner: CoreExpr
    if rest_params:
        inner = CLam(list(rest_params), new_body, rest_anns)
    else:
        inner = new_body
        if b.name in free_vars(new_body):
            # A zero-argument recursive value would loop; leave it.
            return None
    entry = CLam(list(dict_params),
                 CLet([(inner_name, inner)], CVar(inner_name),
                      recursive=True),
                 dict_anns)
    return replace(b, expr=entry)
