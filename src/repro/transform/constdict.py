"""Constant dictionary reduction — section 8.4.

    "Another source of inefficiency are local functions which are
    inferred to have an overloaded type but are used at only one
    overloading ...  If all of these variables are instantiated to the
    same concrete type the dictionary can be reduced to a constant."

At the core level this is a usage analysis: for each overloaded
top-level function, collect every reference.  If every reference is an
application to one and the same vector of constant dictionaries (and
the function never escapes bare), the function is rebuilt with those
dictionaries substituted in and its dictionary parameters dropped, and
all call sites shed the dictionary arguments.

The pass complements :mod:`repro.transform.specialize`: specialisation
*adds* clones at every constant call site; constant-dictionary
reduction *replaces* the original when a single overloading covers all
uses, so no code grows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Set

from repro.coreir.syntax import (
    CLam,
    CoreBinding,
    CoreExpr,
    CoreProgram,
    CVar,
    app_spine,
    capp,
    map_subexprs,
)
from repro.transform.specialize import Specializer, simplify, SIMPLIFY_FUEL
from repro.transform.subst import substitute


def reduce_constant_dictionaries(program: CoreProgram) -> CoreProgram:
    helper = Specializer(program)  # reuse const_dict_key machinery
    usage: Dict[str, Set[str]] = {}
    escaped: Set[str] = set()
    candidates = {b.name: b for b in program.bindings
                  if b.dict_arity > 0 and b.kind == "user"
                  and isinstance(b.expr, CLam)
                  and len(b.expr.params) >= b.dict_arity}

    def scan(expr: CoreExpr, within: str) -> None:
        head, args = app_spine(expr)
        if isinstance(head, CVar) and head.name in candidates:
            target = candidates[head.name]
            if within == head.name:
                # Recursive self-reference: ignore (its dictionary
                # arguments are the formal parameters, by construction).
                pass
            elif len(args) >= target.dict_arity:
                keys = [helper.const_dict_key(a)
                        for a in args[:target.dict_arity]]
                if all(k is not None for k in keys):
                    usage.setdefault(head.name, set()).add(
                        ",".join(keys))  # type: ignore[arg-type]
                else:
                    escaped.add(head.name)
            else:
                escaped.add(head.name)
            for a in args:
                scan(a, within)
            return
        if isinstance(expr, CVar) and expr.name in candidates \
                and expr.name != within:
            escaped.add(expr.name)
            return
        map_subexprs(expr, lambda e: (scan(e, within), e)[1])

    for b in program.bindings:
        scan(b.expr, b.name)

    reducible: Dict[str, str] = {}
    for name, keys in usage.items():
        if name in escaped or len(keys) != 1:
            continue
        reducible[name] = next(iter(keys))
    if not reducible:
        return program

    # Rebuild the reducible bindings with their dictionaries fixed, and
    # strip dictionary arguments at every call site.
    dict_args_of: Dict[str, List[CoreExpr]] = {}

    def strip_calls(expr: CoreExpr, within: str) -> CoreExpr:
        head, args = app_spine(expr)
        if isinstance(head, CVar) and head.name in reducible:
            target = candidates[head.name]
            k = target.dict_arity
            if within == head.name and all(
                    isinstance(a, CVar) and a.name == p
                    for a, p in zip(args[:k], target.expr.params[:k])):
                rest = [strip_calls(a, within) for a in args[k:]]
                return capp(CVar(head.name), *rest)
            if len(args) >= k:
                if head.name not in dict_args_of:
                    dict_args_of[head.name] = args[:k]
                rest = [strip_calls(a, within) for a in args[k:]]
                return capp(CVar(head.name), *rest)
        return map_subexprs(expr, lambda e: strip_calls(e, within))

    out: List[CoreBinding] = []
    for b in program.bindings:
        expr = strip_calls(b.expr, b.name)
        # Identity-preserving: a binding with no reducible call sites
        # passes through as the same object (the lint cache skips it).
        out.append(b if expr is b.expr else replace(b, expr=expr))

    by_name = {b.name: b for b in program.bindings}
    final: List[CoreBinding] = []
    for b in out:
        if b.name in reducible and b.name in dict_args_of:
            lam = b.expr
            assert isinstance(lam, CLam)
            k = b.dict_arity
            body: CoreExpr
            if len(lam.params) > k:
                body = CLam(lam.params[k:], lam.body,
                            lam.anns[k:] if lam.anns is not None else None)
            else:
                body = lam.body
            body = substitute(body, dict(zip(lam.params[:k],
                                             dict_args_of[b.name])))
            body = simplify(body, by_name, SIMPLIFY_FUEL)
            # The reduced function is no longer overloaded: its scheme
            # and dictionary-class annotations no longer apply.
            final.append(replace(b, expr=body, dict_arity=0,
                                 type_ann=None, dict_classes=None))
        else:
            final.append(b)
    return CoreProgram(final)
