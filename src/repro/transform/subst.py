"""Capture-avoiding substitution and renaming for core expressions.

Shared infrastructure for the specialisation passes: substituting a
(closed or open) expression for a variable must rename any binder that
would capture a free variable of the payload.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.coreir.fv import free_vars
from repro.coreir.syntax import (
    CAlt,
    CCase,
    CLam,
    CLet,
    CLitAlt,
    CoreExpr,
    CVar,
    map_subexprs,
)
from repro.util.names import NameSupply

_renamer = NameSupply()


def substitute(expr: CoreExpr, subst: Dict[str, CoreExpr]) -> CoreExpr:
    """``expr[x := subst[x]]`` for every key, capture-avoiding."""
    if not subst:
        return expr
    avoid: Set[str] = set()
    for payload in subst.values():
        avoid.update(free_vars(payload))
    return _subst(expr, dict(subst), avoid)


def _subst(expr: CoreExpr, subst: Dict[str, CoreExpr],
           avoid: Set[str]) -> CoreExpr:
    if isinstance(expr, CVar):
        return subst.get(expr.name, expr)
    if isinstance(expr, CLam):
        params, inner_subst, renames = _protect(expr.params, subst, avoid)
        body = expr.body if renames is None else _rename(expr.body, renames)
        # Renaming a binder keeps its position, so the annotation list
        # stays parallel as-is.
        if not inner_subst:
            return CLam(params, body, expr.anns)
        return CLam(params, _subst(body, inner_subst, avoid), expr.anns)
    if isinstance(expr, CLet):
        names = [n for n, _ in expr.binds]
        new_names, inner_subst, renames = _protect(names, subst, avoid)

        def fix_inner(e: CoreExpr) -> CoreExpr:
            if renames is not None:
                e = _rename(e, renames)
            return _subst(e, inner_subst, avoid) if inner_subst else e

        if expr.recursive:
            binds = [(new, fix_inner(rhs))
                     for new, (_old, rhs) in zip(new_names, expr.binds)]
        else:
            binds = [(new, _subst(rhs, subst, avoid))
                     for new, (_old, rhs) in zip(new_names, expr.binds)]
        return CLet(binds, fix_inner(expr.body), expr.recursive)
    if isinstance(expr, CCase):
        scrut = _subst(expr.scrutinee, subst, avoid)
        alts = []
        for alt in expr.alts:
            binders, inner_subst, renames = _protect(alt.binders, subst, avoid)
            body = alt.body if renames is None else _rename(alt.body, renames)
            if inner_subst:
                body = _subst(body, inner_subst, avoid)
            alts.append(CAlt(alt.con_name, binders, body, alt.anns))
        lit_alts = [CLitAlt(a.value, a.kind, _subst(a.body, subst, avoid))
                    for a in expr.lit_alts]
        default = (_subst(expr.default, subst, avoid)
                   if expr.default is not None else None)
        return CCase(scrut, alts, lit_alts, default)
    return map_subexprs(expr, lambda e: _subst(e, subst, avoid))


def _protect(binders, subst: Dict[str, CoreExpr], avoid: Set[str]):
    """Handle one binding group: drop shadowed substitutions and rename
    binders that would capture."""
    inner_subst = {k: v for k, v in subst.items() if k not in binders}
    renames: Dict[str, str] = {}
    new_binders = []
    for b in binders:
        if b in avoid and inner_subst:
            fresh = _renamer.fresh(b.split("$")[0] or "v")
            renames[b] = fresh
            new_binders.append(fresh)
        else:
            new_binders.append(b)
    return new_binders, inner_subst, (renames or None)


def _rename(expr: CoreExpr, renames: Dict[str, str]) -> CoreExpr:
    return substitute(expr, {old: CVar(new) for old, new in renames.items()})
