"""Process-safety primitives: depth budgets and recursion fences.

The compiler is hosted in long-lived processes (the compile server, the
REPL) where "a pathological input crashed the interpreter" is an outage,
not an inconvenience.  Two mechanisms keep every recursive engine inside
the :class:`~repro.errors.ReproError` family:

* **Depth budgets** (:class:`DepthGuard`): recursive traversals count
  their nesting depth and raise :class:`~repro.errors.ResourceLimitError`
  — with a source position when one is at hand — long before the Python
  stack is in danger.  Budgets are configurable per phase through
  :class:`~repro.options.Options` so batch workloads can raise them.

* **Recursion fences** (:func:`recursion_fence`): a catch-all at phase
  boundaries that converts an escaped ``RecursionError`` (raised by
  CPython *after* the offending frames have unwound, so handling it is
  safe) into a located ``ResourceLimitError``.  Budgets are the primary
  defence; the fence guarantees the invariant even for code paths a
  budget does not cover.

:func:`ensure_recursion_headroom` backs the budgets: it raises the
process-wide recursion limit just enough that a guarded traversal hits
its *budget* (a clean, deterministic error) rather than CPython's limit.
The headroom is deliberately modest — far below the 400k/1M settings
that are only safe on the dedicated big-stack threads spawned by
:func:`repro.coreir.eval.with_big_stack`.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import ResourceLimitError, SourcePos

# Default budgets; Options mirrors these so they are per-compilation
# configurable (repro run --set max_parse_depth=... etc.).
DEFAULT_PARSE_DEPTH = 300
DEFAULT_TYPE_DEPTH = 10_000
DEFAULT_TRANSFORM_DEPTH = 2_000
DEFAULT_EVAL_DEPTH = 200_000
#: CHR solver fuel: rule firings per solve call (one unit per goal the
#: engine pops).  Generous — static termination checks make runaway
#: derivations impossible for accepted programs; the fuel is the
#: crash-containment backstop, exhausted only by pathological inputs.
DEFAULT_SOLVER_FUEL = 200_000

#: Recursion-limit floor established at compile entry points.  Sized so
#: the deepest budgeted traversal (a transform at DEFAULT_TRANSFORM_DEPTH,
#: a handful of Python frames per level) exhausts its budget with room to
#: spare, while staying safe on a default 8 MB thread stack.
COMPILE_HEADROOM = 50_000


def ensure_recursion_headroom(frames: int = COMPILE_HEADROOM) -> None:
    """Raise the interpreter recursion limit to at least *frames*.

    Never lowers it — the big-stack worker pool pins a much higher limit
    for its lifetime and must keep it.
    """
    if sys.getrecursionlimit() < frames:
        sys.setrecursionlimit(frames)


class DepthGuard:
    """A nesting-depth budget shared by one recursive traversal.

    The traversal calls :meth:`enter` on the way down and :meth:`exit`
    on the way up (in a ``try``/``finally``); crossing ``max_depth``
    raises :class:`ResourceLimitError` naming the exhausted knob.  A
    ``max_depth`` of 0 disables the budget.
    """

    __slots__ = ("depth", "max_depth", "limit_name", "what")

    def __init__(self, max_depth: int, limit_name: str, what: str) -> None:
        self.depth = 0
        self.max_depth = max_depth
        self.limit_name = limit_name
        self.what = what

    def enter(self, pos: Optional[SourcePos] = None) -> None:
        self.depth += 1
        if self.max_depth and self.depth > self.max_depth:
            raise ResourceLimitError(
                f"{self.what} exceeded the maximum nesting depth "
                f"({self.max_depth}); raise {self.limit_name} for "
                f"deeply nested inputs",
                pos,
                limit=self.limit_name,
            )

    def exit(self) -> None:
        self.depth -= 1

    @contextmanager
    def guard(self, pos: Optional[SourcePos] = None) -> Iterator[None]:
        self.enter(pos)
        try:
            yield
        finally:
            self.exit()


@contextmanager
def recursion_fence(what: str,
                    pos: Optional[SourcePos] = None) -> Iterator[None]:
    """Convert an escaped ``RecursionError`` inside the block into a
    located :class:`ResourceLimitError` naming the phase *what*."""
    try:
        yield
    except RecursionError:
        raise ResourceLimitError(
            f"Python recursion limit exceeded during {what}; the input "
            f"nests more deeply than the process can handle",
            pos,
            limit="recursionlimit",
        ) from None
