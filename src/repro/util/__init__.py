"""Small self-contained utilities shared across the compiler.

Nothing in this package depends on any other part of :mod:`repro`; the
modules here provide generic infrastructure (graph algorithms, ordered
sets, fresh-name supplies) used by the front end and the type checker.
"""

from repro.util.graph import Digraph, strongly_connected_components, topological_order
from repro.util.names import NameSupply
from repro.util.orderedset import OrderedSet

__all__ = [
    "Digraph",
    "strongly_connected_components",
    "topological_order",
    "NameSupply",
    "OrderedSet",
]
