"""Fresh-name generation.

Dictionary conversion manufactures many new identifiers — dictionary
parameters (``d1``, ``d2`` ...), dictionary variables for instances
(``d$Eq$List``), selectors, specialized clones — and they must never
collide with user identifiers.  Generated names therefore contain a
``$`` character, which the lexer rejects in source programs, making the
generated namespace disjoint from the user namespace by construction.
"""

from __future__ import annotations

from typing import Dict


class NameSupply:
    """A supply of fresh identifiers, grouped by prefix.

    Each prefix has its own counter so that the names stay short and
    readable in dumped core (``d$1``, ``d$2`` rather than a single global
    counter interleaving every kind of name).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def fresh(self, prefix: str) -> str:
        """Return a fresh name ``<prefix>$<n>``."""
        n = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = n
        return f"{prefix}${n}"

    def reset(self) -> None:
        self._counters.clear()


def dict_var_name(class_name: str, tycon_name: str) -> str:
    """The dictionary variable for ``instance ... => C (T ...)`` (section 4).

    The paper writes these as ``d-Eq-List``; we use ``d$Eq$List`` so the
    name survives our lexer's identifier rules when pretty printed and
    re-parsed in tests.
    """
    return f"d${class_name}${_tidy(tycon_name)}"


def method_impl_name(class_name: str, tycon_name: str, method: str) -> str:
    """The per-instance implementation function for one method.

    When the overloading of a method is resolved at compile time, the
    checker calls this function directly instead of going through the
    dictionary ("the type specific version of the method is called
    directly", section 4).
    """
    return f"impl${class_name}${_tidy(tycon_name)}${_tidy(method)}"


def selector_name(class_name: str, method: str) -> str:
    """The selector extracting *method* from a dictionary for *class_name*."""
    return f"sel${class_name}${_tidy(method)}"


def superclass_selector_name(class_name: str, super_name: str) -> str:
    """The selector extracting the *super_name* dictionary embedded in a
    *class_name* dictionary (section 8.1)."""
    return f"sup${class_name}${super_name}"


def default_method_name(class_name: str, method: str) -> str:
    """The compiled default implementation of *method* (section 8.2)."""
    return f"dflt${class_name}${_tidy(method)}"


def specialized_name(function: str, signature: str) -> str:
    """The name of a type-specific clone (section 9)."""
    return f"{function}@{signature}"


def mp_head_key(patterns) -> str:
    """The head signature of a multi-parameter instance, one component
    per class parameter: the constructor's tidied name, or ``_`` for a
    bare-variable position (no tycon is literally named ``_``, so keys
    cannot collide with single-parameter instance names)."""
    return "$".join(_tidy(tycon) if tycon is not None else "_"
                    for tycon, _ in patterns)


def mp_dict_var_name(class_name: str, head_key: str) -> str:
    """The dictionary variable for a multi-parameter instance, e.g.
    ``d$Convert$Int$Float`` for ``instance Convert Int Float``."""
    return f"d${class_name}${head_key}"


def mp_method_impl_name(class_name: str, head_key: str, method: str) -> str:
    """The implementation function for one method of a multi-parameter
    instance (the analogue of :func:`method_impl_name`)."""
    return f"impl${class_name}${head_key}${_tidy(method)}"


_SYMBOL_NAMES = {
    "=": "eq",
    "<": "lt",
    ">": "gt",
    "+": "plus",
    "-": "minus",
    "*": "times",
    "/": "div",
    "&": "amp",
    "|": "bar",
    "!": "bang",
    ":": "colon",
    ".": "dot",
    "^": "caret",
    "%": "pct",
    "~": "tilde",
    "@": "at",
    "#": "hash",
    "?": "what",
}


def _tidy(name: str) -> str:
    """Make an operator or type name safe inside a generated identifier."""
    if name and (name[0].isalpha() or name[0] == "_" or name[0] == "$"):
        return name.replace("[]", "List")
    if name == "[]":
        return "List"
    if name == "->":
        return "Arrow"
    if name.startswith("(,"):
        return f"Tuple{name.count(',') + 1}"
    return "_".join(_SYMBOL_NAMES.get(ch, f"x{ord(ch):x}") for ch in name)
