"""An insertion-ordered set.

Contexts — the sets of class constraints attached to type variables
(section 5) — need set semantics for the union performed when two type
variables are unified, but the *order* of the context determines the
order of dictionary parameters at generalization (section 6.2), and the
paper requires that "the same ordering is used consistently".  A plain
``set`` would make dictionary order depend on hash seeds; an
insertion-ordered set makes the whole pipeline deterministic.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")


class OrderedSet(Generic[T]):
    """A set that iterates in insertion order."""

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._items: Dict[T, None] = {}
        if items is not None:
            for item in items:
                self._items[item] = None

    def add(self, item: T) -> None:
        self._items[item] = None

    def discard(self, item: T) -> None:
        self._items.pop(item, None)

    def update(self, items: Iterable[T]) -> None:
        for item in items:
            self._items[item] = None

    def union(self, items: Iterable[T]) -> "OrderedSet[T]":
        out = OrderedSet(self)
        out.update(items)
        return out

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OrderedSet):
            return set(self._items) == set(other._items)
        if isinstance(other, (set, frozenset)):
            return set(self._items) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"OrderedSet({list(self._items)!r})"

    def copy(self) -> "OrderedSet[T]":
        return OrderedSet(self)

    def replace_with(self, items: Iterable[T]) -> None:
        """Replace the contents *in place* (same object identity).

        Used by the type-variable mutation trail to restore a context
        snapshot: contexts can be aliased from several places, so the
        restore must mutate the existing set rather than rebind it.
        """
        self._items.clear()
        for item in items:
            self._items[item] = None
