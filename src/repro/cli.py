"""Command-line interface.

    python -m repro run program.mhs            # run main
    python -m repro run program.mhs -e 'f 3'   # evaluate an expression
    python -m repro check program.mhs          # types + warnings only
    python -m repro core program.mhs           # dump translated core
    python -m repro build src/ --run           # multi-module build + link
    python -m repro repl                       # interactive session
    python -m repro serve --port 7433          # long-lived compile server
    python -m repro batch a.mhs b.mhs -e main  # many files, shared cache

Every option of :class:`repro.options.CompilerOptions` is reachable via
``--set name=value`` so the paper's ablations can be driven from the
shell, e.g. ``--set hoist_dictionaries=false --set dict_layout=flat``.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional

from repro.driver import CompiledProgram, compile_source
from repro.errors import ReproError
from repro.options import CompilerOptions


def build_options(settings: List[str],
                  lint: bool = False,
                  solver: Optional[str] = None) -> CompilerOptions:
    options = CompilerOptions()
    if lint:
        options.lint = True
    if solver:
        options.solver = solver
    for setting in settings:
        if "=" not in setting:
            raise SystemExit(f"--set expects name=value, got {setting!r}")
        name, _, raw = setting.partition("=")
        name = name.strip()
        if not hasattr(options, name):
            valid = ", ".join(sorted(vars(options)))
            raise SystemExit(f"unknown option {name!r}; valid: {valid}")
        current = getattr(options, name)
        value: object
        if isinstance(current, bool):
            if raw.lower() in ("1", "true", "yes", "on"):
                value = True
            elif raw.lower() in ("0", "false", "no", "off"):
                value = False
            else:
                raise SystemExit(f"option {name} expects a boolean, "
                                 f"got {raw!r}")
        elif isinstance(current, int):
            try:
                value = int(raw)
            except ValueError:
                raise SystemExit(f"option {name} expects an integer, "
                                 f"got {raw!r}")
        elif isinstance(current, float):
            try:
                value = float(raw)
            except ValueError:
                raise SystemExit(f"option {name} expects a number, "
                                 f"got {raw!r}")
        else:
            value = raw
        setattr(options, name, value)
    return options


def load(path: str, options: CompilerOptions,
         observer=None, with_source: bool = False):
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        program = compile_source(source, options, filename=path,
                                 observer=observer)
    except ReproError as exc:
        print(exc.pretty(source), file=sys.stderr)
        raise SystemExit(1)
    return (program, source) if with_source else program


def print_stats(program: CompiledProgram) -> None:
    s = program.last_stats
    if s is None:
        return
    print(f"-- steps={s.steps} calls={s.fun_calls} "
          f"dicts={s.dict_constructions} selections={s.dict_selections}",
          file=sys.stderr)


def print_time_passes(program: CompiledProgram) -> None:
    trace = program.compile_stats.phases
    if trace is not None:
        print(trace.pretty(), file=sys.stderr)


def dump_after_observer(target: str):
    """An observer for ``--dump-after=<pass>``: pretty-print the
    program state right after the named pass runs.  After ``translate``
    that is the core IR; for front-end passes it is the (kernel) AST of
    each source unit processed so far."""
    from repro.pipeline import pass_names
    if target not in pass_names():
        raise SystemExit(f"--dump-after: unknown pass {target!r}; "
                         f"passes: {', '.join(pass_names())}")

    def observer(name, ctx) -> None:
        if name != target:
            return
        print(f"-- after {name}:")
        if ctx.core is not None:
            from repro.coreir.pretty import pp_program
            print(pp_program(ctx.core, annotations=True))
        else:
            from repro.lang.pretty import pp_program
            for unit in ctx.units:
                if unit.program is not None:
                    print(f"-- unit {unit.filename}")
                    print(pp_program(unit.program))
    return observer


def cmd_run(args: argparse.Namespace) -> int:
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    observer = dump_after_observer(args.dump_after) \
        if args.dump_after else None
    program, source = load(args.file, options, observer=observer,
                           with_source=True)
    if args.time_passes:
        print_time_passes(program)
    for warning in program.warnings:
        print(str(warning), file=sys.stderr)
    try:
        if args.expr:
            result = program.eval(args.expr)
        else:
            result = program.run(args.entry)
    except ReproError as exc:
        # Quote the offending line: the expression text for -e errors,
        # the file for everything else (run-time limits included).
        print(exc.pretty(args.expr if args.expr else source),
              file=sys.stderr)
        # The evaluator records its counters even on failure; --stats
        # reports the partial work so aborted runs are diagnosable.
        if args.stats:
            print_stats(program)
        return 1
    print(render(result))
    if args.stats:
        print_stats(program)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    import os
    module_mode = len(args.files) > 1 or args.out or args.stats_json \
        or any(os.path.isdir(path) for path in args.files)
    if module_mode:
        return _check_modules(args, options)
    program = load(args.files[0], options)
    for name, scheme in sorted(program.schemes.items()):
        if "$" in name or "@" in name:
            continue  # generated
        print(f"{name} :: {scheme}")
    for warning in program.warnings:
        print(str(warning), file=sys.stderr)
    return 0


def _check_modules(args: argparse.Namespace,
                   options: CompilerOptions) -> int:
    """``repro check`` over a module tree: type-check every module
    without linking or evaluating.  Tolerant — all independent errors
    are reported in one run, each with its multi-position rendering —
    and incremental through the same artifact cache as ``repro build``
    (a warm re-check after a body edit re-infers one module)."""
    from repro.modules.build import check_modules
    try:
        result = check_modules(args.files, options, out_dir=args.out)
    except ReproError as exc:
        print(_pretty_module_error(exc), file=sys.stderr)
        return 1
    for name in result.order:
        info = result.modules[name]
        status = info["status"]
        ms = f"{info['ms']:>9.1f} ms" if "ms" in info else ""
        print(f"{name:<24} {status:>8} {ms}", file=sys.stderr)
    for _name, exc in result.diagnostics:
        print(_pretty_module_error(exc), file=sys.stderr)
    stats = result.stats()
    print(f"-- {stats['n_modules']} modules: {stats['n_checked']} checked, "
          f"{stats['n_cached']} cached, {stats['n_errors']} errors, "
          f"{stats['n_skipped']} skipped; {stats['ms']:.1f} ms",
          file=sys.stderr)
    if args.stats_json:
        import json
        stats["diagnostics"] = [dict(exc.to_json(), module=name)
                                for name, exc in result.diagnostics]
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
    return 0 if result.ok else 1


def cmd_core(args: argparse.Namespace) -> int:
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    program = load(args.file, options)
    names = args.names or None
    print(program.dump_core(names))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    if not args.kinds and not args.names:
        raise SystemExit("repro info: give one or more names, --kinds, "
                         "or both")
    if args.file:
        program = load(args.file, options)
    else:
        # No file: the prelude alone is in scope.
        try:
            program = compile_source("", options, filename="<prelude>")
        except ReproError as exc:
            print(exc.pretty(""), file=sys.stderr)
            return 1
    if args.kinds:
        print(program.kinds_listing())
    for name in args.names:
        print(program.info(name))
    return 0


def cmd_repl(args: argparse.Namespace) -> int:
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    preamble = ""
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            preamble = handle.read()
    try:
        program = compile_source(preamble, options,
                                 filename=args.file or "<repl>")
    except ReproError as exc:
        print(exc.pretty(preamble), file=sys.stderr)
        return 1
    print("repro — Implementing Type Classes (PLDI 1993)")
    print("expression to evaluate; :t <expr> for its type; "
          ":i <name> for info; :q to quit")
    while True:
        try:
            line = input("tc> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        line = line.strip()
        if not line:
            continue
        if line in (":q", ":quit"):
            return 0
        try:
            if line.startswith(":t "):
                print(program.type_of(line[3:]))
            elif line.startswith(":i "):
                print(program.info(line[3:].strip()))
            else:
                print(render(program.eval(line)))
        except ReproError as exc:
            print(exc.pretty(line))


def cmd_build(args: argparse.Namespace) -> int:
    """Build a module tree: separate compilation, caching, linking."""
    from repro.modules import build_modules
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    pool = None
    shards = getattr(args, "distributed", 0) or 0
    if shards > 0:
        from repro.service.worker import WorkerPool
        pool = WorkerPool(options, shards=shards)
    try:
        result = build_modules(args.paths, options, jobs=args.jobs,
                               out_dir=args.out, pool=pool)
    except ReproError as exc:
        print(_pretty_module_error(exc), file=sys.stderr)
        return 1
    finally:
        if pool is not None:
            pool.stop()
    for name in result.order:
        info = result.modules[name]
        tag = "cached" if info["cached"] else "compiled"
        print(f"{name:<24} {tag:>8} {info['ms']:>9.1f} ms", file=sys.stderr)
    print(f"-- {len(result.order)} modules: {result.n_compiled} compiled, "
          f"{result.n_cached} cached; {result.seconds * 1e3:.1f} ms "
          f"(jobs={result.jobs})", file=sys.stderr)
    program = result.program
    for warning in program.warnings:
        print(str(warning), file=sys.stderr)
    if args.stats_json:
        import json
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(result.stats(), handle, indent=2, sort_keys=True)
    backend = getattr(args, "backend", "interp")
    emit_py = getattr(args, "emit_py", None)
    if backend == "py" and args.expr:
        print("repro build: --backend=py evaluates a compiled binding; "
              "use --run/--entry, not -e", file=sys.stderr)
        return 2
    try:
        if backend == "py" or emit_py:
            # The compiled backend: tree-shake the linked core to the
            # entry point and generate Python (repro.coreir.pygen).
            # --emit-py is a side effect — with the default interp
            # backend, --run/-e below still evaluate as requested.
            compiled = program.to_python([args.entry])
            if emit_py:
                with open(emit_py, "w", encoding="utf-8") as handle:
                    handle.write(compiled.source + "\n")
                print(f"-- wrote {emit_py}", file=sys.stderr)
        if backend == "py":
            if args.run:
                print(render(compiled.run(args.entry)))
                c = compiled.counters
                print(f"-- backend=py dicts={c.dict_constructions} "
                      f"selections={c.dict_selections}", file=sys.stderr)
        elif args.expr:
            print(render(program.eval(args.expr)))
        elif args.run:
            print(render(program.run(args.entry)))
    except ReproError as exc:
        print(_pretty_module_error(exc), file=sys.stderr)
        return 1
    return 0


def _pretty_module_error(exc: ReproError) -> str:
    """Quote the offending source line when the error's position names
    a readable file (module errors can point into any file of the
    tree, so the source must be re-read per error)."""
    pos = getattr(exc, "pos", None)
    filename = getattr(pos, "filename", None)
    if filename:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                return exc.pretty(handle.read())
        except OSError:
            pass
    return str(exc)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived compile/eval server (repro.service)."""
    import signal

    from repro.service.server import CompileServer
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    if args.host:
        options.server_host = args.host
    if args.port is not None:
        options.server_port = args.port
    if getattr(args, "shards", None) is not None:
        options.server_shards = max(0, args.shards)
    server = CompileServer(options=options)

    def on_sigterm(_signum, _frame):
        # Graceful drain: stop accepting, let in-flight requests
        # finish within server_drain_grace, then exit.
        print("repro serve: SIGTERM — draining", file=sys.stderr)
        threading.Thread(target=server.drain, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, on_sigterm)
    except (ValueError, OSError):
        pass  # not the main thread, or an exotic platform
    try:
        if args.stdio:
            server.serve_stdio()
        else:
            try:
                port = server.start()
            except OSError as exc:
                print(f"repro serve: cannot bind "
                      f"{options.server_host}:{options.server_port}: {exc}",
                      file=sys.stderr)
                return 1
            backend = (f"shards={options.server_shards}"
                       if options.server_shards > 0
                       else f"workers={options.server_workers}")
            print(f"repro serve: listening on {server.host}:{port} "
                  f"(cache={options.cache_size}, {backend})",
                  file=sys.stderr)
            server.wait()
    except KeyboardInterrupt:
        server.stop()
    if args.stats_json and server.service is not None:
        server.service.metrics.dump_json(
            args.stats_json,
            extra={"cache": server.service.cache.snapshot()})
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    """Compile many programs through one shared snapshot + cache."""
    from repro.service.server import CompileService
    options = build_options(args.set or [], lint=getattr(args, "lint", False),
                            solver=getattr(args, "solver", None))
    service = CompileService(options)
    failures = 0
    for _ in range(max(1, args.repeat)):
        for path in args.files:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                failures += 1
                print(f"{path}: error: {exc}", file=sys.stderr)
                continue
            try:
                with service.metrics.time("batch_file"):
                    _key, program, cached = service.compile(source,
                                                            filename=path)
                tag = "cached" if cached else "compiled"
                if args.expr:
                    result = program.eval(args.expr)
                    print(f"{path}: {render(result)} [{tag}]")
                elif args.entry:
                    result = program.run(args.entry)
                    print(f"{path}: {render(result)} [{tag}]")
                else:
                    print(f"{path}: ok, "
                          f"{len(program.core.bindings)} bindings [{tag}]")
            except ReproError as exc:
                failures += 1
                print(f"{path}: error: {exc}", file=sys.stderr)
    if args.stats_json:
        service.metrics.dump_json(args.stats_json,
                                  extra={"cache": service.cache.snapshot()})
    return 1 if failures else 0


def render(value: object) -> str:
    """Show a result the way a Haskell REPL would: strings without the
    Python quote style, tuples/lists via repr."""
    if isinstance(value, str):
        return value
    return repr(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mini-Haskell with type classes "
                    "(Peterson & Jones, PLDI 1993)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="override a CompilerOptions field")
        p.add_argument("--lint", action="store_true",
                       help="run the core lint after every pass "
                            "(equivalent to --set lint=true or "
                            "REPRO_LINT=1)")
        p.add_argument("--solver", choices=("reduce", "chr"),
                       help="constraint solver backend: 'reduce' (the "
                            "paper's context reduction) or 'chr' (the CHR "
                            "engine; required for multi-parameter classes). "
                            "Equivalent to --set solver=... or REPRO_SOLVER")

    p_run = sub.add_parser("run", help="compile and run a program")
    p_run.add_argument("file")
    p_run.add_argument("-e", "--expr", help="evaluate this expression "
                                            "instead of 'main'")
    p_run.add_argument("--entry", default="main",
                       help="top-level binding to evaluate (default main)")
    p_run.add_argument("--stats", action="store_true",
                       help="print evaluator operation counts")
    p_run.add_argument("--time-passes", action="store_true",
                       help="print per-pass compile times (stderr)")
    p_run.add_argument("--dump-after", metavar="PASS",
                       help="pretty-print the program after the named "
                            "pipeline pass (e.g. translate, selectors, "
                            "specialize)")
    add_common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_check = sub.add_parser(
        "check", help="type check; print schemes (single file) or "
                      "check a module tree without linking")
    p_check.add_argument("files", nargs="+",
                         help="a program file, or module files/"
                              "directories (module mode: no link, "
                              "tolerant per-module diagnostics)")
    p_check.add_argument("--out", metavar="DIR",
                         help="write .ri interface files here "
                              "(module mode)")
    p_check.add_argument("--stats-json", metavar="FILE",
                         help="write per-module check stats + "
                              "diagnostics to FILE (module mode)")
    add_common(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_core = sub.add_parser("core", help="dump dictionary-passing core")
    p_core.add_argument("file")
    p_core.add_argument("names", nargs="*",
                        help="only these bindings (default: all)")
    add_common(p_core)
    p_core.set_defaults(fn=cmd_core)

    p_info = sub.add_parser(
        "info", help="describe names (like the repl's :i) and/or list "
                     "inferred kinds of every tycon and class")
    p_info.add_argument("names", nargs="*",
                        help="classes, data types or bindings to describe")
    p_info.add_argument("-f", "--file",
                        help="program to load into scope first "
                             "(default: just the prelude)")
    p_info.add_argument("--kinds", action="store_true",
                        help="list the inferred kind of every type "
                             "constructor and class in scope")
    add_common(p_info)
    p_info.set_defaults(fn=cmd_info)

    p_repl = sub.add_parser("repl", help="interactive session")
    p_repl.add_argument("file", nargs="?",
                        help="program to load into scope first")
    add_common(p_repl)
    p_repl.set_defaults(fn=cmd_repl)

    p_build = sub.add_parser(
        "build", help="build a multi-module program (separate "
                      "compilation + caching + link)")
    p_build.add_argument("paths", nargs="+",
                         help="module files (*.mhs) or directories "
                              "searched recursively")
    p_build.add_argument("-j", "--jobs", type=int,
                         help="parallel module compiles "
                              "(default CompilerOptions.build_jobs)")
    p_build.add_argument("--distributed", type=int, metavar="N", default=0,
                         help="compile modules on N worker processes "
                              "(the compile-server worker pool) instead "
                              "of local threads")
    p_build.add_argument("--out", metavar="DIR",
                         help="write .ri interface files here")
    p_build.add_argument("--run", action="store_true",
                         help="evaluate the entry binding after linking")
    p_build.add_argument("--entry", default="main",
                         help="binding for --run (default main)")
    p_build.add_argument("-e", "--expr",
                         help="evaluate this expression after linking")
    p_build.add_argument("--backend", choices=("interp", "py"),
                         default="interp",
                         help="how --run evaluates: the core interpreter "
                              "(default) or compiled Python "
                              "(repro.coreir.pygen)")
    p_build.add_argument("--emit-py", metavar="FILE",
                         help="write the generated Python for the linked "
                              "program (tree-shaken to --entry) to FILE")
    p_build.add_argument("--stats-json", metavar="FILE",
                         help="write per-module build stats to FILE")
    add_common(p_build)
    p_build.set_defaults(fn=cmd_build)

    p_serve = sub.add_parser(
        "serve", help="long-lived compile/eval server (JSON protocol)")
    p_serve.add_argument("--host", help="bind address "
                                        "(default CompilerOptions.server_host)")
    p_serve.add_argument("--port", type=int,
                         help="TCP port (0 = ephemeral; prints the choice)")
    p_serve.add_argument("--stdio", action="store_true",
                         help="serve on stdin/stdout instead of TCP")
    p_serve.add_argument("--shards", type=int, metavar="N",
                         help="route requests by content hash to N worker "
                              "processes (default "
                              "CompilerOptions.server_shards; 0 = "
                              "in-process threads)")
    p_serve.add_argument("--stats-json", metavar="FILE",
                         help="write request metrics to FILE on shutdown")
    add_common(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_batch = sub.add_parser(
        "batch", help="compile many programs via one snapshot + cache")
    p_batch.add_argument("files", nargs="+")
    p_batch.add_argument("-e", "--expr",
                         help="evaluate this expression in every program")
    p_batch.add_argument("--entry", help="run this binding in every program")
    p_batch.add_argument("--repeat", type=int, default=1,
                         help="process the file list N times "
                              "(cache warm-up demos)")
    p_batch.add_argument("--stats-json", metavar="FILE",
                         help="write request metrics to FILE when done")
    add_common(p_batch)
    p_batch.set_defaults(fn=cmd_batch)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
