"""Command-line interface.

    python -m repro run program.mhs            # run main
    python -m repro run program.mhs -e 'f 3'   # evaluate an expression
    python -m repro check program.mhs          # types + warnings only
    python -m repro core program.mhs           # dump translated core
    python -m repro repl                       # interactive session

Every option of :class:`repro.options.CompilerOptions` is reachable via
``--set name=value`` so the paper's ablations can be driven from the
shell, e.g. ``--set hoist_dictionaries=false --set dict_layout=flat``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.driver import CompiledProgram, compile_source
from repro.errors import ReproError
from repro.options import CompilerOptions


def build_options(settings: List[str]) -> CompilerOptions:
    options = CompilerOptions()
    for setting in settings:
        if "=" not in setting:
            raise SystemExit(f"--set expects name=value, got {setting!r}")
        name, _, raw = setting.partition("=")
        name = name.strip()
        if not hasattr(options, name):
            valid = ", ".join(sorted(vars(options)))
            raise SystemExit(f"unknown option {name!r}; valid: {valid}")
        current = getattr(options, name)
        value: object
        if isinstance(current, bool):
            if raw.lower() in ("1", "true", "yes", "on"):
                value = True
            elif raw.lower() in ("0", "false", "no", "off"):
                value = False
            else:
                raise SystemExit(f"option {name} expects a boolean, "
                                 f"got {raw!r}")
        elif isinstance(current, int):
            value = int(raw)
        else:
            value = raw
        setattr(options, name, value)
    return options


def load(path: str, options: CompilerOptions) -> CompiledProgram:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        return compile_source(source, options, filename=path)
    except ReproError as exc:
        print(exc.pretty(source), file=sys.stderr)
        raise SystemExit(1)


def cmd_run(args: argparse.Namespace) -> int:
    options = build_options(args.set or [])
    program = load(args.file, options)
    for warning in program.warnings:
        print(str(warning), file=sys.stderr)
    try:
        if args.expr:
            result = program.eval(args.expr)
        else:
            result = program.run(args.entry)
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(render(result))
    if args.stats and program.last_stats is not None:
        s = program.last_stats
        print(f"-- steps={s.steps} calls={s.fun_calls} "
              f"dicts={s.dict_constructions} selections={s.dict_selections}",
              file=sys.stderr)
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    options = build_options(args.set or [])
    program = load(args.file, options)
    for name, scheme in sorted(program.schemes.items()):
        if "$" in name or "@" in name:
            continue  # generated
        print(f"{name} :: {scheme}")
    for warning in program.warnings:
        print(str(warning), file=sys.stderr)
    return 0


def cmd_core(args: argparse.Namespace) -> int:
    options = build_options(args.set or [])
    program = load(args.file, options)
    names = args.names or None
    print(program.dump_core(names))
    return 0


def cmd_repl(args: argparse.Namespace) -> int:
    options = build_options(args.set or [])
    preamble = ""
    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            preamble = handle.read()
    try:
        program = compile_source(preamble, options,
                                 filename=args.file or "<repl>")
    except ReproError as exc:
        print(exc.pretty(preamble), file=sys.stderr)
        return 1
    print("repro — Implementing Type Classes (PLDI 1993)")
    print("expression to evaluate; :t <expr> for its type; "
          ":i <name> for info; :q to quit")
    while True:
        try:
            line = input("tc> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        line = line.strip()
        if not line:
            continue
        if line in (":q", ":quit"):
            return 0
        try:
            if line.startswith(":t "):
                print(program.type_of(line[3:]))
            elif line.startswith(":i "):
                print(program.info(line[3:].strip()))
            else:
                print(render(program.eval(line)))
        except ReproError as exc:
            print(str(exc))


def render(value: object) -> str:
    """Show a result the way a Haskell REPL would: strings without the
    Python quote style, tuples/lists via repr."""
    if isinstance(value, str):
        return value
    return repr(value)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mini-Haskell with type classes "
                    "(Peterson & Jones, PLDI 1993)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--set", action="append", metavar="NAME=VALUE",
                       help="override a CompilerOptions field")

    p_run = sub.add_parser("run", help="compile and run a program")
    p_run.add_argument("file")
    p_run.add_argument("-e", "--expr", help="evaluate this expression "
                                            "instead of 'main'")
    p_run.add_argument("--entry", default="main",
                       help="top-level binding to evaluate (default main)")
    p_run.add_argument("--stats", action="store_true",
                       help="print evaluator operation counts")
    add_common(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_check = sub.add_parser("check", help="type check; print schemes")
    p_check.add_argument("file")
    add_common(p_check)
    p_check.set_defaults(fn=cmd_check)

    p_core = sub.add_parser("core", help="dump dictionary-passing core")
    p_core.add_argument("file")
    p_core.add_argument("names", nargs="*",
                        help="only these bindings (default: all)")
    add_common(p_core)
    p_core.set_defaults(fn=cmd_core)

    p_repl = sub.add_parser("repl", help="interactive session")
    p_repl.add_argument("file", nargs="?",
                        help="program to load into scope first")
    add_common(p_repl)
    p_repl.set_defaults(fn=cmd_repl)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
