"""Computing with lattices — the application area the paper cites.

The paper (section 1) points at M. P. Jones, "Computing with lattices:
An application of type classes" (JFP 1992) as evidence that classes
help "in more specific application areas where they can help to
produce clear and modular programs".  This example builds that style
of program: a Lattice class, instances for booleans, pairs, and
functions-as-tables, and a generic fixed-point computation over any
lattice — then uses it for a tiny dataflow ("sign") analysis.

Run:  python examples/lattices.py
"""

from repro import compile_source

SOURCE = """
class Eq a => Lattice a where
  bottom :: a
  join   :: a -> a -> a

-- The four-point sign lattice:   Top
--                               /   \\
--                             Neg   Pos
--                               \\   /
--                                Bot
data Sign = Bot | Neg | Pos | Top deriving (Eq, Ord, Text)

instance Lattice Sign where
  bottom = Bot
  join Bot s = s
  join s Bot = s
  join s t = if s == t then s else Top

instance Lattice Bool where
  bottom = False
  join = (||)

instance (Lattice a, Lattice b) => Lattice (a, b) where
  bottom = (bottom, bottom)
  join p q = (join (fst p) (fst q), join (snd p) (snd q))

-- Least fixed point of a monotone function, by Kleene iteration:
-- works over *any* lattice thanks to the class constraint.
lfp :: Lattice a => (a -> a) -> a
lfp f = let iter x = let y = f x
                     in if y == x then x else iter y
        in iter bottom

joins :: Lattice a => [a] -> a
joins = foldr join bottom

-- Abstract interpretation of a tiny loop:
--   x := 1; while ...: x := x * (-1)
-- The sign of x is the least fixed point of one loop step.
mulSign :: Sign -> Sign -> Sign
mulSign Bot s = Bot
mulSign s Bot = Bot
mulSign Pos s = s
mulSign s Pos = s
mulSign Neg Neg = Pos
mulSign s t = Top

step :: Sign -> Sign
step x = join Pos (mulSign x Neg)   -- entry value joined with x * (-1)

main = ( show (lfp step)                         -- sign of x: Top
       , show (joins [Neg, Neg])                 -- stays Neg
       , show (joins [Pos, Neg])                 -- conflicting: Top
       , lfp (\\p -> join p (True, False))        -- pair lattice
       , show (join (Bot, Pos) (Neg, Bot))       -- pointwise join
       )
"""


def main() -> None:
    program = compile_source(SOURCE)
    fixed, neg, mixed, pair, pointwise = program.run("main")
    print("sign of x after the loop (lfp step)  =", fixed)
    print("join of [Neg, Neg]                   =", neg)
    print("join of [Pos, Neg]                   =", mixed)
    print("lfp over the (Bool, Bool) lattice    =", pair)
    print("pointwise join on Sign pairs         =", pointwise)
    print()
    print("generic machinery, one definition each:")
    for name in ("lfp", "joins"):
        print(f"  {name} :: {program.schemes[name]}")


if __name__ == "__main__":
    main()
