"""A tour of the paper's optimisations, with measured effects.

Compiles one dictionary-heavy workload under the configurations of
sections 8.8 (hoisting), 6.3/7 (inner entry points), 8.1 (dictionary
layouts) and 9 (specialisation), and prints the operation counts the
evaluator collects — the same counters the benchmark suite feeds into
EXPERIMENTS.md.

Run:  python examples/optimization_tour.py
"""

from repro import CompilerOptions, compile_source

# A workload whose naive translation rebuilds a dictionary at every
# recursive step: 'process' needs Eq [a] given Eq a (section 8.8's
# doList shape).
SOURCE = """
process :: Eq a => [a] -> Int
process [] = 0
process (x:xs) = (if member [x] [[x], []] then 1 else 0) + process xs

main = process (enumFromTo 1 200)
"""

CONFIGS = [
    ("naive translation (section 6)",
     CompilerOptions(hoist_dictionaries=False, inner_entry_points=False)),
    ("+ hoisted dictionaries (8.8)",
     CompilerOptions(hoist_dictionaries=True, inner_entry_points=False)),
    ("+ inner entry points (7)",
     CompilerOptions(hoist_dictionaries=True, inner_entry_points=True)),
    ("+ specialisation (9)",
     CompilerOptions(hoist_dictionaries=True, inner_entry_points=True,
                     specialize=True)),
    ("flattened dictionaries (8.1)",
     CompilerOptions(dict_layout="flat")),
    ("call-by-name (no sharing)",
     CompilerOptions(hoist_dictionaries=False, inner_entry_points=False,
                     call_by_need=False)),
]


def main() -> None:
    print(f"{'configuration':<34} {'dicts':>7} {'selects':>8} "
          f"{'calls':>8} {'steps':>9}")
    print("-" * 70)
    reference = None
    for label, options in CONFIGS:
        program = compile_source(SOURCE, options)
        result = program.run("main")
        if reference is None:
            reference = result
        assert result == reference, "optimisations changed the answer!"
        s = program.last_stats
        print(f"{label:<34} {s.dict_constructions:>7} "
              f"{s.dict_selections:>8} {s.fun_calls:>8} {s.steps:>9}")
    print("-" * 70)
    print(f"every configuration computed main = {reference}")
    print()
    print("Reading the table against the paper:")
    print(" * naive: one dictionary construction per list element")
    print("   (section 8.8's repeated construction problem);")
    print(" * hoisting alone moves the construction out of the value")
    print("   lambda but recursion still re-enters the dictionary")
    print("   lambda — the inner entry point (7) is what caps it;")
    print(" * specialisation (9) eliminates dictionaries and method")
    print("   selections for this call site entirely;")
    print(" * call-by-name shows the cost the paper attributes to")
    print("   implementations that are not fully lazy.")


if __name__ == "__main__":
    main()
