"""Return-type overloading: why tags fail and dictionaries succeed.

Section 3 of the paper contrasts two overloading implementations:

* run-time *tags* on values (Standard ML of New Jersey's equality) —
  works for ``==`` but "it is not possible to implement functions
  where the overloading is defined by the returned type.  A simple
  example of this is the read function";
* *dictionary passing* — the result type's dictionary arrives as a
  hidden argument, so ``read`` is unproblematic.

This example runs the same three operations under both regimes.

Run:  python examples/return_type_overloading.py
"""

from repro import TagDispatchError, compile_source
from repro.baselines.tags import TagRuntime

PROGRAM = """
-- A tiny configuration-file reader: the *requested* type drives the
-- parse.  Impossible with argument tags; trivial with dictionaries.
parseEntry :: Text a => [Char] -> [Char] -> a
parseEntry key text =
  case lookup key (map splitLine (lines text)) of
    Just raw -> read raw
    Nothing  -> error ("missing key: " ++ key)

splitLine :: [Char] -> ([Char], [Char])
splitLine l = case span (\\c -> not (c == '=')) l of
                (k, rest) -> (k, tail rest)

config = "retries=3\\nratio=1.5\\nverbose=True\\nports=[80, 443]"

main = ( parseEntry "retries" config :: Int
       , parseEntry "ratio"   config :: Float
       , parseEntry "verbose" config :: Bool
       , parseEntry "ports"   config :: [Int]
       )
"""


def dictionaries() -> None:
    print("dictionary passing (this paper's approach)")
    print("-" * 50)
    program = compile_source(PROGRAM)
    retries, ratio, verbose, ports = program.run("main")
    print(f"  retries :: Int    = {retries}")
    print(f"  ratio   :: Float  = {ratio}")
    print(f"  verbose :: Bool   = {verbose}")
    print(f"  ports   :: [Int]  = {ports}")
    print(f"  (parseEntry :: {program.schemes['parseEntry']})")
    print()


def tags() -> None:
    print("run-time tags (section 3 baseline)")
    print("-" * 50)
    rt = TagRuntime()

    # Argument-driven overloading is fine: 'double' dispatches on the
    # tag its argument carries.
    print("  double 21   =", rt.double(rt.inject(21)).payload)
    print("  double 1.5  =", rt.double(rt.inject(1.5)).payload)

    # ... but read has no argument tag to dispatch on:
    try:
        rt.read(rt.inject("42"))
    except TagDispatchError as exc:
        print("  read \"42\"   -> TagDispatchError:")
        print("     ", str(exc).split(":", 1)[1].strip())


def main() -> None:
    dictionaries()
    tags()


if __name__ == "__main__":
    main()
