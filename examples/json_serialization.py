"""A class-based JSON serialization library, written in Mini-Haskell.

This is the kind of "clear and modular program" the paper's intro
promises type classes enable: one ``ToJSON``/``FromJSON`` class pair,
instances per type, and — crucially — ``decode`` is *return-type
overloaded* (section 3): the requested result type selects the
decoder, something no tag-based scheme could express.

Everything below the ``SOURCE`` line is Mini-Haskell compiled and run
by the reproduction's own pipeline: the JSON value type, a renderer, a
full recursive-descent parser built from the prelude's reads-style
combinators, and generic encode/decode.

Run:  python examples/json_serialization.py
"""

from repro import compile_source

SOURCE = r"""
data JSON = JNull
          | JBool Bool
          | JInt Int
          | JStr [Char]
          | JArr [JSON]
          | JObj [([Char], JSON)]
          deriving Eq

-- ----------------------------------------------------------------- render

renderJSON :: JSON -> [Char]
renderJSON JNull       = "null"
renderJSON (JBool b)   = if b then "true" else "false"
renderJSON (JInt n)    = show n
renderJSON (JStr s)    = "\"" ++ s ++ "\""
renderJSON (JArr xs)   = "[" ++ joinWith "," (map renderJSON xs) ++ "]"
renderJSON (JObj kvs)  =
  "{" ++ joinWith "," (map renderPair kvs) ++ "}"
  where renderPair kv = "\"" ++ fst kv ++ "\":" ++ renderJSON (snd kv)

joinWith :: [Char] -> [[Char]] -> [Char]
joinWith sep xs = concat (intersperse sep xs)

-- ------------------------------------------------------------------ parse
-- Reads-style parsers: String -> [(a, String)], empty list = failure.

pJSON :: [Char] -> [(JSON, [Char])]
pJSON s = pNull s ++ pBool s ++ pInt s ++ pString s ++ pArr s ++ pObj s

pNull :: [Char] -> [(JSON, [Char])]
pNull s = bindReads (readToken "null" s) (\u r -> [(JNull, r)])

pBool :: [Char] -> [(JSON, [Char])]
pBool s = bindReads (readToken "true" s)  (\u r -> [(JBool True, r)])
          ++ bindReads (readToken "false" s) (\u r -> [(JBool False, r)])

pInt :: [Char] -> [(JSON, [Char])]
pInt s = map (\p -> (JInt (fst p), snd p)) (readsInt s)

pString :: [Char] -> [(JSON, [Char])]
pString s = map (\p -> (JStr (fst p), snd p)) (pRawString s)

pRawString :: [Char] -> [([Char], [Char])]
pRawString s =
  case dropSpace s of
    ('"' : rest) -> case span (\c -> not (c == '"')) rest of
                      (body, more) -> case more of
                                        ('"' : r) -> [(body, r)]
                                        q         -> []
    q            -> []

pArr :: [Char] -> [(JSON, [Char])]
pArr s = bindReads (readToken "[" s) (\u r ->
           bindReads (readToken "]" r) (\v r2 -> [(JArr [], r2)])
           ++ bindReads (pItems r) (\xs r2 -> [(JArr xs, r2)]))

pItems :: [Char] -> [([JSON], [Char])]
pItems s = bindReads (pJSON s) (\x r ->
             bindReads (readToken "," r) (\u r2 ->
               bindReads (pItems r2) (\xs r3 -> [(x : xs, r3)]))
             ++ bindReads (readToken "]" r) (\u r2 -> [([x], r2)]))

pObj :: [Char] -> [(JSON, [Char])]
pObj s = bindReads (readToken "{" s) (\u r ->
           bindReads (readToken "}" r) (\v r2 -> [(JObj [], r2)])
           ++ bindReads (pPairs r) (\kvs r2 -> [(JObj kvs, r2)]))

pPairs :: [Char] -> [([([Char], JSON)], [Char])]
pPairs s = bindReads (pPair s) (\kv r ->
             bindReads (readToken "," r) (\u r2 ->
               bindReads (pPairs r2) (\kvs r3 -> [(kv : kvs, r3)]))
             ++ bindReads (readToken "}" r) (\u r2 -> [([kv], r2)]))

pPair :: [Char] -> [(([Char], JSON), [Char])]
pPair s = bindReads (pRawString s) (\k r ->
            bindReads (readToken ":" r) (\u r2 ->
              bindReads (pJSON r2) (\v r3 -> [((k, v), r3)])))

parseJSON :: [Char] -> Maybe JSON
parseJSON s = case filter (\p -> null (dropSpace (snd p))) (pJSON s) of
                ((v, r) : q) -> Just v
                []           -> Nothing

-- ----------------------------------------------------- the class interface

class ToJSON a where
  toJSON :: a -> JSON

class FromJSON a where
  fromJSON :: JSON -> Maybe a

instance ToJSON Int where
  toJSON = JInt
instance FromJSON Int where
  fromJSON (JInt n) = Just n
  fromJSON v        = Nothing

instance ToJSON Bool where
  toJSON = JBool
instance FromJSON Bool where
  fromJSON (JBool b) = Just b
  fromJSON v         = Nothing

instance ToJSON a => ToJSON [a] where
  toJSON xs = JArr (map toJSON xs)
instance FromJSON a => FromJSON [a] where
  fromJSON (JArr xs) =
    let decoded = map fromJSON xs
    in if all isJust decoded then Just (catMaybes decoded) else Nothing
  fromJSON v = Nothing

instance (ToJSON a, ToJSON b) => ToJSON (a, b) where
  toJSON p = JArr [toJSON (fst p), toJSON (snd p)]
instance (FromJSON a, FromJSON b) => FromJSON (a, b) where
  fromJSON (JArr [x, y]) =
    case (fromJSON x, fromJSON y) of
      (Just a, Just b) -> Just (a, b)
      q                -> Nothing
  fromJSON v = Nothing

instance ToJSON a => ToJSON (Maybe a) where
  toJSON Nothing  = JNull
  toJSON (Just x) = toJSON x
instance FromJSON a => FromJSON (Maybe a) where
  fromJSON JNull = Just Nothing
  fromJSON v     = case fromJSON v of
                     Just x  -> Just (Just x)
                     Nothing -> Nothing

encode :: ToJSON a => a -> [Char]
encode x = renderJSON (toJSON x)

-- decode's overloading is determined by the RESULT type (section 3):
decode :: FromJSON a => [Char] -> Maybe a
decode s = case parseJSON s of
             Just v  -> fromJSON v
             Nothing -> Nothing

-- ------------------------------------------------------------ a user type

data Point = Point Int Int deriving (Eq, Text)

instance ToJSON Point where
  toJSON (Point x y) = JObj [("x", JInt x), ("y", JInt y)]

instance FromJSON Point where
  fromJSON (JObj kvs) =
    case (lookup "x" kvs, lookup "y" kvs) of
      (Just (JInt x), Just (JInt y)) -> Just (Point x y)
      q                              -> Nothing
  fromJSON v = Nothing

roundtrip :: (ToJSON a, FromJSON a, Eq a) => a -> Bool
roundtrip x = decode (encode x) == Just x

main = ( encode [(1, True), (2, False)]
       , encode (Point 3 4)
       , (decode "[[1,2],[3,4]]" :: Maybe [(Int, Int)])
       , (decode "{\"x\":7,\"y\":8}" :: Maybe Point)
       , (decode "[1, true]" :: Maybe [Int])          -- ill-typed: Nothing
       , roundtrip (Point 1 2) && roundtrip [Just 1, Nothing]
       )
"""


def main() -> None:
    program = compile_source(SOURCE)
    (pairs, point, nested, decoded_point, bad, ok) = program.run("main")
    print("encode [(1,True),(2,False)] =", pairs)
    print("encode (Point 3 4)          =", point)
    print("decode \"[[1,2],[3,4]]\"      =", nested)
    print("decode point object         =", decoded_point)
    print("decode \"[1, true]\" :: [Int] =", bad)
    print("round trips hold            =", ok)
    print()
    print("the return-type-overloaded entry point:")
    print("  decode ::", program.schemes["decode"])
    print("  (the requested type picks the decoder — impossible with")
    print("   run-time tags, trivial with dictionary passing)")


if __name__ == "__main__":
    main()
