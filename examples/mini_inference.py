"""A Hindley-Milner type inferencer written in Mini-Haskell.

The reproduction's compiler is itself a type checker — so the natural
stress test is to make it compile *another* type checker.  The program
below implements algorithm-W-style inference (substitutions,
unification with occurs check, generalization, instantiation) for a
small lambda calculus, entirely in Mini-Haskell, leaning on the
classes the paper is about: derived ``Eq``/``Text`` for the type and
term representations, ``Maybe`` for failure, and overloaded equality
over association lists.

Run:  python examples/mini_inference.py
"""

from repro import compile_source

SOURCE = r"""
-- object language types and terms -------------------------------------

data Ty = TV Int
         | TInt
         | TBool
         | TFun Ty Ty
         deriving (Eq, Text)

data Term = Var [Char]
          | ILit Int
          | BLit Bool
          | App Term Term
          | Lam [Char] Term
          | LetIn [Char] Term Term
          | If Term Term Term

data Scheme = Forall [Int] Ty

-- substitutions --------------------------------------------------------

type Subst = [(Int, Ty)]

applyS :: Subst -> Ty -> Ty
applyS s (TV n)     = case lookup n s of
                        Just t  -> applyS s t
                        Nothing -> TV n
applyS s TInt       = TInt
applyS s TBool      = TBool
applyS s (TFun a b) = TFun (applyS s a) (applyS s b)

composeS :: Subst -> Subst -> Subst
composeS new old = new ++ old

ftv :: Ty -> [Int]
ftv (TV n)     = [n]
ftv TInt       = []
ftv TBool      = []
ftv (TFun a b) = ftv a ++ ftv b

occurs :: Int -> Ty -> Bool
occurs n t = member n (ftv t)

-- unification -----------------------------------------------------------

unify :: Ty -> Ty -> Maybe Subst
unify (TV n) t = bindVar n t
unify t (TV n) = bindVar n t
unify TInt TInt = Just []
unify TBool TBool = Just []
unify (TFun a1 b1) (TFun a2 b2) =
  case unify a1 a2 of
    Nothing -> Nothing
    Just s1 -> case unify (applyS s1 b1) (applyS s1 b2) of
                 Nothing -> Nothing
                 Just s2 -> Just (composeS s2 s1)
unify t1 t2 = Nothing

bindVar :: Int -> Ty -> Maybe Subst
bindVar n t = if t == TV n then Just []
              else if occurs n t then Nothing
              else Just [(n, t)]

-- environments and schemes ----------------------------------------------

type Env = [([Char], Scheme)]

applyEnv :: Subst -> Env -> Env
applyEnv s env = map (\p -> (fst p, applyScheme s (snd p))) env

applyScheme :: Subst -> Scheme -> Scheme
applyScheme s (Forall vs t) =
  Forall vs (applyS (filter (\p -> not (member (fst p) vs)) s) t)

ftvEnv :: Env -> [Int]
ftvEnv env = concatMap (\p -> ftvScheme (snd p)) env

ftvScheme :: Scheme -> [Int]
ftvScheme (Forall vs t) = filter (\n -> not (member n vs)) (ftv t)

generalize :: Env -> Ty -> Scheme
generalize env t =
  Forall (filter (\n -> not (member n (ftvEnv env))) (nub (ftv t))) t

instantiate :: Scheme -> Int -> (Ty, Int)
instantiate (Forall vs t) fresh =
  let pairs = zip vs (enumFromTo fresh (fresh + length vs - 1))
      sub = map (\p -> (fst p, TV (snd p))) pairs
  in (applyS sub t, fresh + length vs)

-- inference (algorithm W, counter threaded by hand) ----------------------

infer :: Env -> Term -> Int -> Maybe (Subst, Ty, Int)
infer env (Var x) fresh =
  case lookup x env of
    Nothing -> Nothing
    Just sc -> case instantiate sc fresh of
                 (t, fresh2) -> Just ([], t, fresh2)
infer env (ILit n) fresh = Just ([], TInt, fresh)
infer env (BLit b) fresh = Just ([], TBool, fresh)
infer env (Lam x body) fresh =
  let arg = TV fresh
  in case infer ((x, Forall [] arg) : env) body (fresh + 1) of
       Nothing -> Nothing
       Just (s, t, fresh2) -> Just (s, TFun (applyS s arg) t, fresh2)
infer env (App f a) fresh =
  case infer env f fresh of
    Nothing -> Nothing
    Just (s1, tf, f1) ->
      case infer (applyEnv s1 env) a f1 of
        Nothing -> Nothing
        Just (s2, ta, f2) ->
          let res = TV f2
          in case unify (applyS s2 tf) (TFun ta res) of
               Nothing -> Nothing
               Just s3 -> Just (composeS s3 (composeS s2 s1),
                                applyS s3 res, f2 + 1)
infer env (LetIn x rhs body) fresh =
  case infer env rhs fresh of
    Nothing -> Nothing
    Just (s1, t1, f1) ->
      let env2 = applyEnv s1 env
          sc = generalize env2 t1
      in case infer ((x, sc) : env2) body f1 of
           Nothing -> Nothing
           Just (s2, t2, f2) -> Just (composeS s2 s1, t2, f2)
infer env (If c t e) fresh =
  case infer env c fresh of
    Nothing -> Nothing
    Just (s1, tc, f1) ->
      case unify tc TBool of
        Nothing -> Nothing
        Just sb ->
          case infer (applyEnv (composeS sb s1) env) t f1 of
            Nothing -> Nothing
            Just (s2, tt, f2) ->
              case infer (applyEnv s2 env) e f2 of
                Nothing -> Nothing
                Just (s3, te, f3) ->
                  case unify (applyS s3 tt) te of
                    Nothing -> Nothing
                    Just s4 -> Just (composeS s4 (composeS s3 (composeS s2 (composeS sb s1))),
                                     applyS s4 te, f3)

typeOf :: Term -> Maybe Ty
typeOf term = case infer [] term 0 of
                Nothing -> Nothing
                Just (s, t, f) -> Just (applyS s t)

showTy :: Maybe Ty -> [Char]
showTy Nothing  = "ill-typed"
showTy (Just t) = show t

-- test terms --------------------------------------------------------------

identity = Lam "x" (Var "x")
constFn  = Lam "x" (Lam "y" (Var "x"))
applyTwice = Lam "f" (Lam "x" (App (Var "f") (App (Var "f") (Var "x"))))
letPoly  = LetIn "id" identity
             (If (App (Var "id") (BLit True))
                 (App (Var "id") (ILit 1))
                 (ILit 0))
selfApp  = Lam "x" (App (Var "x") (Var "x"))
badIf    = If (ILit 1) (ILit 2) (ILit 3)

main = map showTy
  [ typeOf identity
  , typeOf constFn
  , typeOf applyTwice
  , typeOf letPoly
  , typeOf selfApp
  , typeOf badIf
  ]
"""


def main() -> None:
    program = compile_source(SOURCE)
    labels = ["\\x -> x", "\\x y -> x", "\\f x -> f (f x)",
              "let id = \\x -> x in (if id True then id 1 else 0)",
              "\\x -> x x  (occurs check)",
              "if 1 then 2 else 3  (Bool mismatch)"]
    results = program.run("main", big_stack=True)
    print("a Hindley-Milner inferencer, itself compiled by the")
    print("reproduction's type-class compiler:\n")
    for label, result in zip(labels, results):
        print(f"  {label:<50} : {result}")


if __name__ == "__main__":
    main()
