"""Quickstart: compile and run Mini-Haskell with type classes.

Run:  python examples/quickstart.py
"""

from repro import compile_source

SOURCE = """
-- The paper's opening example: a single '==' that is polymorphic,
-- overloaded, and extensible (section 2).  Eq, its Int and list
-- instances and 'member' all come from the prelude; here we extend
-- equality to a brand-new data type just by deriving it.

data Color = Red | Green | Blue deriving (Eq, Ord, Text)

-- 'double' works at every Num type: the + is resolved at run time
-- through a dictionary when the type is not known statically.
double :: Num a => a -> a
double x = x + x

favourite :: [Color]
favourite = [Blue, Red]

main = ( member Green favourite          -- overloaded == on Color
       , member 2 [1, 2, 3]              -- ... on Int
       , member [1] [[2], [1]]           -- ... on [[Int]]
       , double 21                       -- Num at Int
       , double 1.5                      -- Num at Float
       , show (sort [Blue, Red, Green])  -- Ord + Text, both derived
       )
"""


def main() -> None:
    program = compile_source(SOURCE)

    print("inferred types:")
    for name in ("double", "favourite", "main"):
        print(f"  {name} :: {program.schemes[name]}")

    result = program.run("main")
    print("\nmain =", result)

    stats = program.last_stats
    print("\nrun-time statistics (the paper's cost model, section 9):")
    print(f"  dictionary constructions: {stats.dict_constructions}")
    print(f"  method selections:        {stats.dict_selections}")
    print(f"  function calls:           {stats.fun_calls}")

    # One-liners against the compiled program's scope:
    print("\nexpression evaluation:")
    print("  show (double 100)     =", program.eval("show (double 100)"))
    print('  read "[1,2]" :: [Int] =', program.eval('read "[1, 2]" :: [Int]'))
    print("  type of (\\x -> [x] == [x]):",
          program.type_of("\\x -> [x] == [x]"))


if __name__ == "__main__":
    main()
