"""Compile-cache tests: content addressing, LRU behaviour, counters,
and the optional disk tier."""

from __future__ import annotations

import os
import pickle

import pytest

from repro import CompilerOptions
from repro.service.cache import (
    CompileCache,
    cache_key,
    resolve_cache_dir,
    source_hash,
)
from repro.service.snapshot import prelude_fingerprint


OPTS = CompilerOptions()
FP = prelude_fingerprint(OPTS)


class TestKeys:
    def test_key_is_content_addressed(self):
        a = cache_key("main = 1", OPTS, FP)
        b = cache_key("main = 1", OPTS, FP)
        c = cache_key("main = 2", OPTS, FP)
        assert a == b
        assert a != c

    def test_key_tracks_options(self):
        other = CompilerOptions(hoist_dictionaries=False)
        assert cache_key("main = 1", OPTS, FP) \
            != cache_key("main = 1", other, FP)

    def test_service_options_do_not_invalidate(self):
        tuned = CompilerOptions(cache_size=3, server_workers=9,
                                request_timeout=1.5)
        assert cache_key("main = 1", OPTS, FP) \
            == cache_key("main = 1", tuned, FP)

    def test_key_tracks_prelude(self):
        assert cache_key("main = 1", OPTS, FP) \
            != cache_key("main = 1", OPTS, "different-prelude")

    def test_source_hash_is_sha256(self):
        digest = source_hash("main = 1")
        assert len(digest) == 64
        int(digest, 16)  # hex


class TestLRU:
    def test_hit_miss_counters(self):
        cache = CompileCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", "program")
        assert cache.get("k") == "program"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.inserts == 1

    def test_eviction_order_is_least_recent(self):
        cache = CompileCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1   # refresh a; b is now LRU
        cache.put("c", 3)            # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_capacity_bounds_size(self):
        cache = CompileCache(capacity=3)
        for i in range(10):
            cache.put(f"k{i}", i)
        assert len(cache) == 3
        assert cache.keys() == ["k7", "k8", "k9"]
        assert cache.stats.evictions == 7

    def test_reinsert_refreshes_not_duplicates(self):
        cache = CompileCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)           # refresh, not insert-evict
        assert len(cache) == 2
        assert cache.stats.evictions == 0
        assert cache.get("a") == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CompileCache(capacity=0)


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        d = str(tmp_path)
        one = CompileCache(capacity=4, disk_dir=d)
        one.put("key1", {"compiled": [1, 2, 3]})
        assert one.stats.disk_writes == 1
        # A fresh process sees the persisted entry.
        two = CompileCache(capacity=4, disk_dir=d)
        assert two.get("key1") == {"compiled": [1, 2, 3]}
        assert two.stats.disk_hits == 1
        # ... and promotes it to memory: second get is a memory hit.
        assert two.get("key1") == {"compiled": [1, 2, 3]}
        assert two.stats.disk_hits == 1
        assert two.stats.hits == 2

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        d = str(tmp_path)
        cache = CompileCache(capacity=4, disk_dir=d)
        path = os.path.join(d, "bad.pkl")
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get("bad") is None
        assert cache.stats.disk_errors == 1
        assert not os.path.exists(path)

    def test_disk_files_are_pickles_keyed_by_digest(self, tmp_path):
        d = str(tmp_path)
        cache = CompileCache(capacity=4, disk_dir=d)
        cache.put("abc123", ["payload"])
        path = os.path.join(d, "abc123.pkl")
        with open(path, "rb") as handle:
            assert pickle.load(handle) == ["payload"]

    def test_clear_disk(self, tmp_path):
        d = str(tmp_path)
        cache = CompileCache(capacity=4, disk_dir=d)
        cache.put("k", 1)
        cache.clear(disk=True)
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_memory_only_without_dir(self):
        cache = CompileCache(capacity=4)
        cache.put("k", 1)
        assert cache.stats.disk_writes == 0


class TestDiskBudget:
    """The bounded disk tier: a max-bytes budget enforced by an
    mtime-ordered GC after every write."""

    @staticmethod
    def _sizes(path):
        return {f: os.path.getsize(os.path.join(path, f))
                for f in os.listdir(path) if f.endswith(".pkl")}

    def test_budget_evicts_oldest_first(self, tmp_path):
        cache = CompileCache(capacity=8, disk_dir=str(tmp_path),
                             disk_budget=1)  # everything is oversized
        cache.put("k" * 64, {"payload": "x" * 100})
        # The newest entry always survives its own write ...
        assert len(self._sizes(str(tmp_path))) == 1
        cache.put("j" * 64, {"payload": "y" * 100})
        # ... and the previous one, now over budget, is collected.
        files = self._sizes(str(tmp_path))
        assert list(files) == ["j" * 64 + ".pkl"]
        assert cache.stats.disk_evictions == 1

    def test_budget_keeps_entries_that_fit(self, tmp_path):
        cache = CompileCache(capacity=8, disk_dir=str(tmp_path),
                             disk_budget=10_000_000)
        for i in range(5):
            cache.put(f"{i:064d}", {"payload": i})
        assert len(self._sizes(str(tmp_path))) == 5
        assert cache.stats.disk_evictions == 0

    def test_zero_budget_means_unbounded(self, tmp_path):
        cache = CompileCache(capacity=8, disk_dir=str(tmp_path),
                             disk_budget=0)
        for i in range(10):
            cache.put(f"{i:064d}", {"payload": "z" * 1000})
        assert len(self._sizes(str(tmp_path))) == 10
        assert cache.stats.disk_evictions == 0

    def test_hit_refreshes_mtime_so_gc_is_lru(self, tmp_path):
        cache = CompileCache(capacity=1, disk_dir=str(tmp_path),
                             disk_budget=10_000_000)
        cache.put("a" * 64, {"v": 1})
        cache.put("b" * 64, {"v": 2})
        os.utime(os.path.join(str(tmp_path), "a" * 64 + ".pkl"),
                 (1, 1))  # make 'a' ancient
        os.utime(os.path.join(str(tmp_path), "b" * 64 + ".pkl"),
                 (2, 2))
        # A disk hit on 'a' (capacity 1 keeps it out of memory)
        # refreshes its mtime, so the GC now sees 'b' as oldest.
        assert cache.get("a" * 64) == {"v": 1}
        assert cache.stats.disk_hits == 1
        cache.disk_budget = 1
        cache._disk_gc()
        survivors = set(self._sizes(str(tmp_path)))
        assert "a" * 64 + ".pkl" in survivors
        assert "b" * 64 + ".pkl" not in survivors

    def test_disk_evictions_in_snapshot(self, tmp_path):
        cache = CompileCache(capacity=8, disk_dir=str(tmp_path),
                             disk_budget=1)
        cache.put("c" * 64, {"v": 1})
        cache.put("d" * 64, {"v": 2})
        assert cache.snapshot()["disk_evictions"] == 1


class TestConcurrentGC:
    """The disk GC under multi-process contention: one collector at a
    time (advisory lock), and no entry deleted out from under a
    concurrent republish."""

    def test_contended_lock_skips_the_pass(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        d = str(tmp_path)
        cache = CompileCache(capacity=8, disk_dir=d, disk_budget=1)
        fd = os.open(os.path.join(d, ".gc.lock"),
                     os.O_CREAT | os.O_RDWR, 0o644)
        fcntl.flock(fd, fcntl.LOCK_EX)
        try:
            # "Another process" holds the directory: our write still
            # publishes, but the GC pass yields instead of racing.
            cache.put("e" * 64, {"v": 1})
            cache.put("f" * 64, {"v": 2})
            assert cache.stats.disk_gc_skipped == 2
            assert cache.stats.disk_evictions == 0
            assert len([f for f in os.listdir(d)
                        if f.endswith(".pkl")]) == 2
        finally:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        # Lock released: the next write's GC collects the backlog.
        cache.put("9" * 64, {"v": 3})
        assert cache.stats.disk_gc_skipped == 2
        assert cache.stats.disk_evictions >= 1

    def test_gc_skips_are_in_snapshot(self, tmp_path):
        cache = CompileCache(capacity=8, disk_dir=str(tmp_path))
        assert cache.snapshot()["disk_gc_skipped"] == 0

    def test_entry_republished_mid_pass_is_spared(self, tmp_path,
                                                  monkeypatch):
        # Simulate the cross-process race the re-stat guards against:
        # the walk records an old mtime, then the entry is freshened
        # (a disk hit or republish elsewhere) before the unlink.
        d = str(tmp_path)
        cache = CompileCache(capacity=8, disk_dir=d, disk_budget=1)
        old = os.path.join(d, "a" * 64 + ".pkl")
        new = os.path.join(d, "b" * 64 + ".pkl")
        for path, stamp in ((old, 100), (new, 200)):
            with open(path, "wb") as handle:
                handle.write(b"x" * 50)
            os.utime(path, (stamp, stamp))
        real_stat = os.stat
        calls = {"old": 0}

        def stat(path, *args, **kwargs):
            if path == old:
                calls["old"] += 1
                if calls["old"] == 2:  # the pre-unlink re-stat
                    os.utime(old, (300, 300))
            return real_stat(path, *args, **kwargs)

        monkeypatch.setattr(os, "stat", stat)
        cache._disk_gc()
        assert os.path.exists(old)  # spared, not deleted
        assert os.path.exists(new)
        assert cache.stats.disk_evictions == 0


class TestSnapshotAndResolve:
    def test_stats_snapshot_shape(self):
        cache = CompileCache(capacity=4)
        cache.put("k", 1)
        cache.get("k")
        cache.get("nope")
        snap = cache.snapshot()
        assert snap["hits"] == 1
        assert snap["misses"] == 1
        assert snap["size"] == 1
        assert snap["capacity"] == 4
        assert snap["hit_rate"] == 0.5
        assert snap["disk_dir"] is None

    def test_resolve_cache_dir(self, tmp_path):
        assert resolve_cache_dir(CompilerOptions(cache_dir="")) is None
        explicit = str(tmp_path / "x")
        assert resolve_cache_dir(
            CompilerOptions(cache_dir=explicit)) == explicit
        default = resolve_cache_dir(CompilerOptions(cache_dir="default"))
        assert default is not None and default.endswith(
            os.path.join(".cache", "repro"))
