"""Differential fuzzing: random well-typed expressions, generated from
a typed grammar, must (a) type check at their intended type, (b)
produce identical results under the interpreter and the compiled
backend, and (c) keep producing that result under the optimising
configurations.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import CompilerOptions, compile_source

#: Recursive deferred strategies discard many over-deep candidates on
#: some seeds; that is expected here, not a test smell.
FUZZ = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.filter_too_much,
                                       HealthCheck.too_slow])


# --------------------------------------------------------------------------
# Typed expression grammar.  Each strategy yields a source string of
# the named type; depth is bounded by hypothesis' recursion control.
# --------------------------------------------------------------------------

def int_atom():
    return st.integers(-20, 20).map(lambda n: f"({n})" if n < 0 else str(n))


def list_literal(elems):
    return st.lists(elems, min_size=1, max_size=4).map(
        lambda xs: "[" + ", ".join(xs) + "]")


def exprs():
    """(int_expr, bool_expr, list_expr) mutually recursive strategies."""
    int_expr = st.deferred(lambda: st.one_of(
        int_atom(),
        st.tuples(int_expr, int_expr).map(lambda p: f"({p[0]} + {p[1]})"),
        st.tuples(int_expr, int_expr).map(lambda p: f"({p[0]} * {p[1]})"),
        st.tuples(int_expr, int_expr).map(lambda p: f"({p[0]} - {p[1]})"),
        list_expr.map(lambda l: f"(length {l})"),
        list_expr.map(lambda l: f"(sum {l})"),
        # head is applied to a cons so the list is never empty
        st.tuples(int_expr, list_expr).map(
            lambda p: f"(head ({p[0]} : {p[1]}))"),
        st.tuples(bool_expr, int_expr, int_expr).map(
            lambda t: f"(if {t[0]} then {t[1]} else {t[2]})"),
        st.tuples(int_expr, int_expr).map(
            lambda p: f"(max {p[0]} {p[1]})"),
    ))
    bool_expr = st.deferred(lambda: st.one_of(
        st.sampled_from(["True", "False"]),
        st.tuples(int_expr, int_expr).map(lambda p: f"({p[0]} == {p[1]})"),
        st.tuples(int_expr, int_expr).map(lambda p: f"({p[0]} < {p[1]})"),
        st.tuples(bool_expr, bool_expr).map(lambda p: f"({p[0]} && {p[1]})"),
        st.tuples(bool_expr, bool_expr).map(lambda p: f"({p[0]} || {p[1]})"),
        bool_expr.map(lambda b: f"(not {b})"),
        int_expr.map(lambda e: f"(even {e})"),
        st.tuples(int_expr, list_expr).map(
            lambda p: f"(member {p[0]} {p[1]})"),
        list_expr.map(lambda l: f"(null (drop 1 {l}))"),
    ))
    list_expr = st.deferred(lambda: st.one_of(
        list_literal(int_atom()),
        st.tuples(int_expr, list_expr).map(
            lambda p: f"(map (\\z -> z + {p[0]}) {p[1]})"),
        list_expr.map(lambda l: f"(filter even {l})"),
        list_expr.map(lambda l: f"(reverse {l})"),
        list_expr.map(lambda l: f"(sort {l})"),
        st.tuples(list_expr, list_expr).map(
            lambda p: f"({p[0]} ++ {p[1]})"),
        st.tuples(int_expr, list_expr).map(
            lambda p: f"(take (mod {p[0]} 5) {p[1]})"),
        st.tuples(int_expr, list_expr).map(
            lambda p: f"({p[0]} : {p[1]})"),
    ))
    return int_expr, bool_expr, list_expr


INT_EXPR, BOOL_EXPR, LIST_EXPR = exprs()


def check(source_expr: str, expected_type: str) -> None:
    program = compile_source(f"main :: {expected_type}\nmain = {source_expr}")
    interp = program.run("main")
    compiled = program.to_python().run("main")
    assert interp == compiled
    optimised = compile_source(
        f"main :: {expected_type}\nmain = {source_expr}",
        CompilerOptions(specialize=True, constant_dict_reduction=True))
    assert optimised.run("main") == interp


class TestDifferentialFuzzing:
    @FUZZ
    @given(INT_EXPR)
    def test_int_expressions(self, expr):
        check(expr, "Int")

    @FUZZ
    @given(BOOL_EXPR)
    def test_bool_expressions(self, expr):
        check(expr, "Bool")

    @FUZZ
    @given(LIST_EXPR)
    def test_list_expressions(self, expr):
        check(expr, "[Int]")

    @FUZZ
    @given(LIST_EXPR)
    def test_show_of_random_lists(self, expr):
        # show goes through the full Text dictionary machinery.
        program = compile_source(f"main = show ({expr} :: [Int])")
        interp = program.run("main")
        assert interp == program.to_python().run("main")
        assert interp.startswith("[")
