"""Dead-code elimination tests."""


from repro import compile_source
from repro.transform.dce import reachable_bindings, shake


class TestReachability:
    def test_direct_reference(self):
        program = compile_source("a = (1 :: Int)\nb = a + 1\nmain = b")
        keep = reachable_bindings(program.core, ["main"])
        assert {"main", "b", "a"} <= keep

    def test_unreferenced_dropped(self):
        program = compile_source(
            "used = (1 :: Int)\nunused = (2 :: Int)\nmain = used")
        shaken = shake(program.core, ["main"])
        names = set(shaken.names())
        assert "used" in names
        assert "unused" not in names

    def test_dictionaries_kept_when_needed(self):
        program = compile_source(
            "poly :: Eq a => a -> Bool\npoly x = x == x\nmain = poly 'x'")
        shaken = shake(program.core, ["main"])
        names = set(shaken.names())
        assert "d$Eq$Char" in names

    def test_unused_instances_dropped(self):
        program = compile_source("main = (1 :: Int) + 1")
        shaken = shake(program.core, ["main"])
        names = set(shaken.names())
        # Float arithmetic is unreachable from this main.
        assert "d$Num$Float" not in names
        assert "impl$Text$Float$show" not in names

    def test_shaking_shrinks_substantially(self):
        program = compile_source("main = (1 :: Int) + 1")
        shaken = shake(program.core, ["main"])
        assert len(shaken.bindings) < len(program.core.bindings) // 2

    def test_missing_root_tolerated(self):
        program = compile_source("main = 1")
        shaken = shake(program.core, ["main", "ghost"])
        assert "main" in shaken.names()


class TestShakenPrograms:
    def test_shaken_program_still_runs(self):
        program = compile_source(
            "main = show (sort [3,1,2]) ++ show (member 1 [1])")
        expected = program.run("main")
        assert program.shake(["main"]).run("main") == expected

    def test_shaken_compiled_backend(self):
        program = compile_source("main = sum (map (\\x -> x * x) [1,2,3])")
        py = program.to_python(roots=["main"])
        assert py.run("main") == 14

    def test_shaking_respects_derived_instances(self):
        program = compile_source(
            "data C = A | B deriving (Eq, Text)\n"
            "main = show [A, B]")
        expected = program.run("main")
        assert program.shake(["main"]).run("main") == expected == "[A, B]"

    def test_shaking_with_specialization(self):
        from repro import CompilerOptions
        program = compile_source(
            "mem :: Eq a => a -> [a] -> Bool\n"
            "mem x [] = False\nmem x (y:ys) = x == y || mem x ys\n"
            "main = mem 2 [1,2]",
            CompilerOptions(specialize=True))
        assert program.shake(["main"]).run("main") is True
