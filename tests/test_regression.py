"""The kitchen-sink regression program (tests/data/regression.mhs),
checked binding by binding on both backends."""

import pathlib

import pytest

from repro import compile_source

SOURCE = (pathlib.Path(__file__).parent / "data" / "regression.mhs"
          ).read_text()

EXPECTED = {
    "rArea": 47,
    "rPerims": (14, 25),
    "rDescribe": "[7] area=4",
    "rSuits": "[Clubs, Hearts, Spades]",
    "rAllSuits": [False, True, True, False],
    "rBuckets": ["zero", "small", "medium", "large"],
    "rStutter": "aab",
    "rShapes": 16,
    "rLocal": ("1!", "'x'!"),
    "rFibs": [0, 1, 1, 2, 3, 5, 8, 13, 21, 34],
    "rRoundtrip": True,
    "rPairs": "(Pair 10 20)",
}


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, filename="regression.mhs")


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_interpreter(program, name):
    assert program.run(name) == EXPECTED[name]


@pytest.fixture(scope="module")
def compiled(program):
    return program.to_python()


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_compiled_backend(compiled, name):
    assert compiled.run(name) == EXPECTED[name]


def test_schemes(program):
    from repro.core.types import scheme_str
    assert scheme_str(program.schemes["<+>"]) == "Shape a => a -> a -> Int"
    assert scheme_str(program.schemes["sumShapes"]) == "Shape a => [a] -> Int"
    assert scheme_str(program.schemes["mapP"]) \
        == "(a -> b) -> Pair a -> Pair b"
    assert scheme_str(program.schemes["fibs"]) == "[Int]"


def test_regression_under_every_configuration():
    from repro import CompilerOptions
    for options in (
        CompilerOptions(hoist_dictionaries=False, inner_entry_points=False),
        CompilerOptions(specialize=True, constant_dict_reduction=True),
        CompilerOptions(dict_layout="flat", single_slot_opt=False),
    ):
        program = compile_source(SOURCE, options)
        for name, expected in EXPECTED.items():
            assert program.run(name) == expected, (name, options)
