"""Driver / public API tests: options handling, program objects,
compile statistics, incremental evaluation."""

import pytest

from repro import (
    NAIVE,
    OPTIMIZED,
    CompilerOptions,
    compile_and_run,
    compile_source,
)


class TestOptions:
    def test_defaults(self):
        opts = CompilerOptions()
        assert opts.monomorphism_restriction is True
        assert opts.defaulting is True
        assert opts.dict_layout == "nested"
        assert opts.hoist_dictionaries is True
        assert opts.specialize is False

    def test_with_copies(self):
        base = CompilerOptions()
        changed = base.with_(specialize=True)
        assert changed.specialize is True
        assert base.specialize is False  # original untouched

    def test_presets(self):
        assert NAIVE.hoist_dictionaries is False
        assert NAIVE.inner_entry_points is False
        assert OPTIMIZED.specialize is True
        assert OPTIMIZED.constant_dict_reduction is True

    def test_bad_layout_rejected_at_compile(self):
        with pytest.raises(ValueError):
            compile_source("main = 1", CompilerOptions(dict_layout="odd"))


class TestCompiledProgram:
    def test_compile_and_run_helper(self):
        assert compile_and_run("main = 6 * 7") == 42

    def test_run_named_binding(self):
        program = compile_source("a = (1 :: Int)\nb = a + 1")
        assert program.run("b") == 2

    def test_schemes_include_prelude(self):
        program = compile_source("")
        assert "member" in program.schemes
        assert str(program.schemes["map"]) == "(a -> b) -> [a] -> [b]"

    def test_compile_stats_populated(self):
        program = compile_source("f x = x == x")
        stats = program.compile_stats
        assert stats.unify_count > 0
        assert stats.bindings > 100  # prelude + generated code

    def test_without_prelude(self):
        program = compile_source(
            "f :: Int -> Int\nf x = primAddInt x 1\nmain = f 41",
            CompilerOptions(overload_literals=False),
            include_prelude=False)
        assert program.run("main") == 42

    def test_without_prelude_no_classes(self):
        program = compile_source(
            "main = primMulInt 6 7",
            CompilerOptions(overload_literals=False),
            include_prelude=False)
        assert program.run("main") == 42
        assert len(program.core.bindings) < 10

    def test_eval_sequence_is_stateless_enough(self):
        program = compile_source("k = (10 :: Int)")
        assert program.eval("k + 1") == 11
        assert program.eval("k + 2") == 12
        assert program.eval("show k") == "10"

    def test_eval_can_define_nothing(self):
        # Expressions only; definitions still come from compile time.
        program = compile_source("")
        with pytest.raises(Exception):
            program.eval("x = 1")

    def test_last_stats_updated_per_run(self):
        program = compile_source("main = 1 + 1\nbig = sum (enumFromTo 1 50)")
        program.run("main")
        small = program.last_stats.steps
        program.run("big")
        assert program.last_stats.steps > small

    def test_step_limit_option(self):
        from repro import EvalError
        program = compile_source(
            "loop n = loop (n + 1)\nmain = loop (0 :: Int)",
            CompilerOptions(eval_step_limit=5000))
        with pytest.raises(EvalError):
            program.run("main")

    def test_warnings_surface(self):
        program = compile_source(
            "f x = x == x && g\ng = null [f]",
            CompilerOptions(monomorphism_restriction=False))
        assert program.warnings


class TestInfo:
    def test_info_on_class(self):
        program = compile_source("")
        text = program.info("Ord")
        assert text.startswith("class Eq a => Ord a where")
        assert "compare ::" in text
        assert "instance Ord Int" in text

    def test_info_on_data_type(self):
        program = compile_source("data S = C Int | R Int Int deriving Eq")
        text = program.info("S")
        assert "C :: Int -> S" in text
        assert "R :: Int -> Int -> S" in text

    def test_info_on_binding_and_unknown(self):
        program = compile_source("")
        assert program.info("member") == "member :: Eq a => a -> [a] -> Bool"
        assert "not defined" in program.info("zorp")

    def test_info_on_user_class_with_superclass(self):
        program = compile_source(
            "class MyEq a where\n"
            "  myeq :: a -> a -> Bool\n"
            "class MyEq a => MyOrd a where\n"
            "  mylt :: a -> a -> Bool\n"
            "data Pt = Pt Int\n"
            "instance MyEq Pt where\n"
            "  myeq (Pt a) (Pt b) = a == b\n")
        text = program.info("MyOrd")
        assert text.startswith("class MyEq a => MyOrd a where")
        assert "mylt ::" in text
        # No instances of MyOrd: the listing stops at the methods.
        assert "instance" not in text
        eq_text = program.info("MyEq")
        assert eq_text.startswith("class MyEq a where")
        assert "instance MyEq Pt" in eq_text

    def test_info_on_class_with_two_superclasses(self):
        program = compile_source(
            "class A a where\n"
            "  fa :: a -> Int\n"
            "class B a where\n"
            "  fb :: a -> Int\n"
            "class (A a, B a) => C a where\n"
            "  fc :: a -> Int\n")
        header = program.info("C").splitlines()[0]
        assert header.startswith("class ")
        assert "A a" in header and "B a" in header
        assert "=> C a where" in header

    def test_info_instance_context_printed(self):
        # Prelude: instance Eq a => Eq [a] and the pair instance with
        # a two-constraint context; both contexts must print.
        program = compile_source("")
        lines = program.info("Eq").splitlines()
        assert "instance Eq a0 => Eq []" in lines
        assert "instance (Eq a0, Eq a1) => Eq (,)" in lines

    def test_info_on_user_data_type_reports_parameters(self):
        program = compile_source("data Wrap a = Wrap a")
        text = program.info("Wrap")
        assert "1 parameter" in text
        assert "Wrap :: a -> Wrap a" in text

    def test_info_on_plain_user_binding(self):
        program = compile_source("plain :: Int\nplain = 42")
        assert program.info("plain") == "plain :: Int"


class TestInterface:
    def test_interface_lists_user_bindings(self):
        program = compile_source(
            "f :: (Text b, Eq a) => a -> b -> [Char]\n"
            "f x y = if x == x then show y else []")
        text = program.interface()
        assert "f :: (Text b, Eq a) => a -> b -> [Char]" in text

    def test_interface_hides_generated_names(self):
        program = compile_source("g x = x")
        text = program.interface()
        assert "impl$" not in text and "@" not in text

    def test_interface_context_order_is_dictionary_order(self):
        # The declared order (Text before Eq) survives into the
        # interface, which is what separate compilation relies on.
        program = compile_source(
            "f :: (Text b, Eq a) => a -> b -> [Char]\n"
            "f x y = if x == x then show y else []")
        line = [l for l in program.interface().splitlines()
                if l.startswith("f ::")][0]
        assert line.index("Text") < line.index("Eq")

    def test_interface_is_sorted_and_one_line_per_binding(self):
        program = compile_source("zeta = (1 :: Int)\nalpha = (2 :: Int)")
        lines = program.interface().splitlines()
        assert lines == sorted(lines)
        assert "alpha :: Int" in lines
        assert "zeta :: Int" in lines
        assert all(" :: " in line for line in lines)

    def test_interface_lists_only_value_bindings(self):
        # Class methods and data constructors are reachable via
        # ``info``; the interface file proper is one line per
        # top-level value binding (the §8.6 signature listing).
        program = compile_source(
            "class MyEq a where\n"
            "  myeq :: a -> a -> Bool\n"
            "data Pt = Pt Int\n"
            "instance MyEq Pt where\n"
            "  myeq (Pt a) (Pt b) = a == b\n"
            "use :: Pt -> Bool\n"
            "use p = myeq p p\n")
        lines = program.interface().splitlines()
        assert "use :: Pt -> Bool" in lines
        assert not any(line.startswith("myeq ::") for line in lines)
        assert program.info("Pt").splitlines()[1] == "  Pt :: Int -> Pt"


class TestTupleInstances:
    def test_triple_ordering(self, evaluate):
        assert evaluate("compare (1, 'a', True) (1, 'a', False)") == ("GT",)
        assert evaluate("sort [(1, 'b', 2), (1, 'a', 9)]") \
            == [(1, "a", 9), (1, "b", 2)]

    def test_quadruple_equality(self, evaluate):
        assert evaluate("(1, 'a', True, [2]) == (1, 'a', True, [2])") is True
        assert evaluate("(1, 'a', True, [2]) == (1, 'a', True, [3])") is False

    def test_unlines(self, evaluate):
        assert evaluate('unlines ["a", "b"]') == "a\nb\n"
